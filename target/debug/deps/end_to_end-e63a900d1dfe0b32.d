/root/repo/target/debug/deps/end_to_end-e63a900d1dfe0b32.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e63a900d1dfe0b32: tests/end_to_end.rs

tests/end_to_end.rs:
