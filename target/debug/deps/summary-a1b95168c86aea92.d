/root/repo/target/debug/deps/summary-a1b95168c86aea92.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-a1b95168c86aea92: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
