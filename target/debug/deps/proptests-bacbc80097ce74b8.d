/root/repo/target/debug/deps/proptests-bacbc80097ce74b8.d: crates/numrep/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bacbc80097ce74b8.rmeta: crates/numrep/tests/proptests.rs Cargo.toml

crates/numrep/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
