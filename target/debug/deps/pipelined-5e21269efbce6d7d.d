/root/repo/target/debug/deps/pipelined-5e21269efbce6d7d.d: crates/vsim/tests/pipelined.rs Cargo.toml

/root/repo/target/debug/deps/libpipelined-5e21269efbce6d7d.rmeta: crates/vsim/tests/pipelined.rs Cargo.toml

crates/vsim/tests/pipelined.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
