/root/repo/target/debug/deps/mrpf-99624456d546a019.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-99624456d546a019.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
