/root/repo/target/debug/deps/optimize-bc8a154dceda1260.d: crates/bench/benches/optimize.rs Cargo.toml

/root/repo/target/debug/deps/liboptimize-bc8a154dceda1260.rmeta: crates/bench/benches/optimize.rs Cargo.toml

crates/bench/benches/optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
