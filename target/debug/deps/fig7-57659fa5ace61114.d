/root/repo/target/debug/deps/fig7-57659fa5ace61114.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-57659fa5ace61114: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
