/root/repo/target/debug/deps/optimize-f4d3ced6e0ebd736.d: crates/bench/benches/optimize.rs Cargo.toml

/root/repo/target/debug/deps/liboptimize-f4d3ced6e0ebd736.rmeta: crates/bench/benches/optimize.rs Cargo.toml

crates/bench/benches/optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
