/root/repo/target/debug/deps/equivalence-cacf2b054fc336fc.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-cacf2b054fc336fc: tests/equivalence.rs

tests/equivalence.rs:
