/root/repo/target/debug/deps/proptests-fe76e4cff3fd9272.d: crates/cse/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fe76e4cff3fd9272: crates/cse/tests/proptests.rs

crates/cse/tests/proptests.rs:
