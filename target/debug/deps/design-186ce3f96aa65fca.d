/root/repo/target/debug/deps/design-186ce3f96aa65fca.d: crates/bench/benches/design.rs Cargo.toml

/root/repo/target/debug/deps/libdesign-186ce3f96aa65fca.rmeta: crates/bench/benches/design.rs Cargo.toml

crates/bench/benches/design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
