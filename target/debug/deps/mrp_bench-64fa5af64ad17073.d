/root/repo/target/debug/deps/mrp_bench-64fa5af64ad17073.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/mrp_bench-64fa5af64ad17073: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
