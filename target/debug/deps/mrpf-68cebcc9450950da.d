/root/repo/target/debug/deps/mrpf-68cebcc9450950da.d: src/lib.rs

/root/repo/target/debug/deps/mrpf-68cebcc9450950da: src/lib.rs

src/lib.rs:
