/root/repo/target/debug/deps/mrp_bench-dc4f1f09b35b84b0.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_bench-dc4f1f09b35b84b0.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
