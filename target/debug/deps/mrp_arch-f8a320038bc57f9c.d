/root/repo/target/debug/deps/mrp_arch-f8a320038bc57f9c.d: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_arch-f8a320038bc57f9c.rmeta: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/dot.rs:
crates/arch/src/eval.rs:
crates/arch/src/filter_structure.rs:
crates/arch/src/iir.rs:
crates/arch/src/netlist.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/verilog.rs:
crates/arch/src/verilog_pipelined.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
