/root/repo/target/debug/deps/mrpf-6d27166bd6d1de90.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mrpf-6d27166bd6d1de90: crates/cli/src/main.rs

crates/cli/src/main.rs:
