/root/repo/target/debug/deps/baselines-b7a2e2d34f6b2c9f.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-b7a2e2d34f6b2c9f.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
