/root/repo/target/debug/deps/eval-24e3c98c10d9cf9f.d: crates/bench/benches/eval.rs Cargo.toml

/root/repo/target/debug/deps/libeval-24e3c98c10d9cf9f.rmeta: crates/bench/benches/eval.rs Cargo.toml

crates/bench/benches/eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
