/root/repo/target/debug/deps/ablation-d42b29f87cd3de91.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d42b29f87cd3de91: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
