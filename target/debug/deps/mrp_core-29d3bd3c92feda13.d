/root/repo/target/debug/deps/mrp_core-29d3bd3c92feda13.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/mrp_core-29d3bd3c92feda13: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/flat.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
