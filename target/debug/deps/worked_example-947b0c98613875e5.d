/root/repo/target/debug/deps/worked_example-947b0c98613875e5.d: tests/worked_example.rs

/root/repo/target/debug/deps/worked_example-947b0c98613875e5: tests/worked_example.rs

tests/worked_example.rs:
