/root/repo/target/debug/deps/mrp_cli-41920148fdcb49c9.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-41920148fdcb49c9.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-41920148fdcb49c9.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
