/root/repo/target/debug/deps/mrp_resilience-7e3f79ae997cfda2.d: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

/root/repo/target/debug/deps/libmrp_resilience-7e3f79ae997cfda2.rlib: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

/root/repo/target/debug/deps/libmrp_resilience-7e3f79ae997cfda2.rmeta: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

crates/resilience/src/lib.rs:
crates/resilience/src/budget.rs:
crates/resilience/src/driver.rs:
crates/resilience/src/error.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/ladder.rs:
