/root/repo/target/debug/deps/mrp_hwcost-ba92b24ad2399252.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_hwcost-ba92b24ad2399252.rmeta: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs Cargo.toml

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
