/root/repo/target/debug/deps/mrpf-d5bd4cb2afad33c9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-d5bd4cb2afad33c9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
