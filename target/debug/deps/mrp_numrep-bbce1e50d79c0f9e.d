/root/repo/target/debug/deps/mrp_numrep-bbce1e50d79c0f9e.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/debug/deps/mrp_numrep-bbce1e50d79c0f9e: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
