/root/repo/target/debug/deps/dynamic_verification-f0e3dd15cb621e68.d: crates/sim/tests/dynamic_verification.rs

/root/repo/target/debug/deps/dynamic_verification-f0e3dd15cb621e68: crates/sim/tests/dynamic_verification.rs

crates/sim/tests/dynamic_verification.rs:
