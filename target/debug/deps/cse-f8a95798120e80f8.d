/root/repo/target/debug/deps/cse-f8a95798120e80f8.d: crates/bench/benches/cse.rs Cargo.toml

/root/repo/target/debug/deps/libcse-f8a95798120e80f8.rmeta: crates/bench/benches/cse.rs Cargo.toml

crates/bench/benches/cse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
