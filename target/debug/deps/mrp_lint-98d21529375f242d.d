/root/repo/target/debug/deps/mrp_lint-98d21529375f242d.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_lint-98d21529375f242d.rmeta: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
