/root/repo/target/debug/deps/mrp_cli-67c6dc70188b4099.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mrp_cli-67c6dc70188b4099: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
