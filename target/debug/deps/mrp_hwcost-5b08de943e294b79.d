/root/repo/target/debug/deps/mrp_hwcost-5b08de943e294b79.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/debug/deps/libmrp_hwcost-5b08de943e294b79.rlib: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/debug/deps/libmrp_hwcost-5b08de943e294b79.rmeta: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
