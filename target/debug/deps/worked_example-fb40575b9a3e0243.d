/root/repo/target/debug/deps/worked_example-fb40575b9a3e0243.d: tests/worked_example.rs

/root/repo/target/debug/deps/worked_example-fb40575b9a3e0243: tests/worked_example.rs

tests/worked_example.rs:
