/root/repo/target/debug/deps/fig7-498469817519f970.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-498469817519f970: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
