/root/repo/target/debug/deps/mrp_cli-4ab51e6991408548.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-4ab51e6991408548.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-4ab51e6991408548.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
