/root/repo/target/debug/deps/mrpf-9381d8a7dd0b43b0.d: src/lib.rs

/root/repo/target/debug/deps/libmrpf-9381d8a7dd0b43b0.rlib: src/lib.rs

/root/repo/target/debug/deps/libmrpf-9381d8a7dd0b43b0.rmeta: src/lib.rs

src/lib.rs:
