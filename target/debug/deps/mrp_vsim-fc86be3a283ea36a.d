/root/repo/target/debug/deps/mrp_vsim-fc86be3a283ea36a.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_vsim-fc86be3a283ea36a.rmeta: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs Cargo.toml

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
