/root/repo/target/debug/deps/pathological-2eacb62285f77806.d: crates/resilience/tests/pathological.rs Cargo.toml

/root/repo/target/debug/deps/libpathological-2eacb62285f77806.rmeta: crates/resilience/tests/pathological.rs Cargo.toml

crates/resilience/tests/pathological.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
