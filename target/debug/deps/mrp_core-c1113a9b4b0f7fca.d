/root/repo/target/debug/deps/mrp_core-c1113a9b4b0f7fca.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libmrp_core-c1113a9b4b0f7fca.rlib: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libmrp_core-c1113a9b4b0f7fca.rmeta: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/flat.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
