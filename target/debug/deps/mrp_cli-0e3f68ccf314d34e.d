/root/repo/target/debug/deps/mrp_cli-0e3f68ccf314d34e.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mrp_cli-0e3f68ccf314d34e: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
