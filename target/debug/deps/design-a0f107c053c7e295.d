/root/repo/target/debug/deps/design-a0f107c053c7e295.d: crates/bench/benches/design.rs Cargo.toml

/root/repo/target/debug/deps/libdesign-a0f107c053c7e295.rmeta: crates/bench/benches/design.rs Cargo.toml

crates/bench/benches/design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
