/root/repo/target/debug/deps/worked_example-3436966f11810f68.d: tests/worked_example.rs Cargo.toml

/root/repo/target/debug/deps/libworked_example-3436966f11810f68.rmeta: tests/worked_example.rs Cargo.toml

tests/worked_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
