/root/repo/target/debug/deps/mrpf-da3d18e479a1432f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-da3d18e479a1432f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
