/root/repo/target/debug/deps/fig8-cf643ed5012a0d50.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-cf643ed5012a0d50: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
