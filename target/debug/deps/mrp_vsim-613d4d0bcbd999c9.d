/root/repo/target/debug/deps/mrp_vsim-613d4d0bcbd999c9.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/debug/deps/mrp_vsim-613d4d0bcbd999c9: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
