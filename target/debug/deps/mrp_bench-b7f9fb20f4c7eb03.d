/root/repo/target/debug/deps/mrp_bench-b7f9fb20f4c7eb03.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libmrp_bench-b7f9fb20f4c7eb03.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libmrp_bench-b7f9fb20f4c7eb03.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
