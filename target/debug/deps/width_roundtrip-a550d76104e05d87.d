/root/repo/target/debug/deps/width_roundtrip-a550d76104e05d87.d: crates/lint/tests/width_roundtrip.rs

/root/repo/target/debug/deps/width_roundtrip-a550d76104e05d87: crates/lint/tests/width_roundtrip.rs

crates/lint/tests/width_roundtrip.rs:
