/root/repo/target/debug/deps/cse-149a08f6dc5e5045.d: crates/bench/benches/cse.rs Cargo.toml

/root/repo/target/debug/deps/libcse-149a08f6dc5e5045.rmeta: crates/bench/benches/cse.rs Cargo.toml

crates/bench/benches/cse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
