/root/repo/target/debug/deps/mrpf-c987bc01f8abbdce.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-c987bc01f8abbdce.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
