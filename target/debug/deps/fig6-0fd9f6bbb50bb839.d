/root/repo/target/debug/deps/fig6-0fd9f6bbb50bb839.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-0fd9f6bbb50bb839: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
