/root/repo/target/debug/deps/summary-534681a54e83e4e0.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-534681a54e83e4e0: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
