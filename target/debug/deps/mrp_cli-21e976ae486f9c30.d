/root/repo/target/debug/deps/mrp_cli-21e976ae486f9c30.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_cli-21e976ae486f9c30.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
