/root/repo/target/debug/deps/mrp_bench-0e0bbbae13d85464.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_bench-0e0bbbae13d85464.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
