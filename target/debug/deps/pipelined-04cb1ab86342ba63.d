/root/repo/target/debug/deps/pipelined-04cb1ab86342ba63.d: crates/vsim/tests/pipelined.rs

/root/repo/target/debug/deps/pipelined-04cb1ab86342ba63: crates/vsim/tests/pipelined.rs

crates/vsim/tests/pipelined.rs:
