/root/repo/target/debug/deps/mrp_numrep-4d872806669ca41d.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_numrep-4d872806669ca41d.rmeta: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs Cargo.toml

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
