/root/repo/target/debug/deps/mrpf-3d2795134abcc855.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mrpf-3d2795134abcc855: crates/cli/src/main.rs

crates/cli/src/main.rs:
