/root/repo/target/debug/deps/mrp_cse-e5710e36e72687bb.d: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/debug/deps/libmrp_cse-e5710e36e72687bb.rlib: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/debug/deps/libmrp_cse-e5710e36e72687bb.rmeta: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

crates/cse/src/lib.rs:
crates/cse/src/differential.rs:
crates/cse/src/hartley.rs:
crates/cse/src/mcm.rs:
crates/cse/src/pattern.rs:
