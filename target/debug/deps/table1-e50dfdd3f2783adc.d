/root/repo/target/debug/deps/table1-e50dfdd3f2783adc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e50dfdd3f2783adc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
