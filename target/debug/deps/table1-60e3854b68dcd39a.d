/root/repo/target/debug/deps/table1-60e3854b68dcd39a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-60e3854b68dcd39a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
