/root/repo/target/debug/deps/mrpf-690e4e67ca1a7b92.d: src/lib.rs

/root/repo/target/debug/deps/mrpf-690e4e67ca1a7b92: src/lib.rs

src/lib.rs:
