/root/repo/target/debug/deps/fault_suite-9f850be28359a1dd.d: crates/resilience/tests/fault_suite.rs Cargo.toml

/root/repo/target/debug/deps/libfault_suite-9f850be28359a1dd.rmeta: crates/resilience/tests/fault_suite.rs Cargo.toml

crates/resilience/tests/fault_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
