/root/repo/target/debug/deps/mrp_bench-6481980a62eb78ff.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libmrp_bench-6481980a62eb78ff.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libmrp_bench-6481980a62eb78ff.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
