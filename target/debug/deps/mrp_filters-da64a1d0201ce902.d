/root/repo/target/debug/deps/mrp_filters-da64a1d0201ce902.d: crates/filters/src/lib.rs crates/filters/src/butterworth.rs crates/filters/src/examples.rs crates/filters/src/halfband.rs crates/filters/src/iir.rs crates/filters/src/kaiser.rs crates/filters/src/leastsq.rs crates/filters/src/linalg.rs crates/filters/src/remez.rs crates/filters/src/response.rs crates/filters/src/spec.rs crates/filters/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_filters-da64a1d0201ce902.rmeta: crates/filters/src/lib.rs crates/filters/src/butterworth.rs crates/filters/src/examples.rs crates/filters/src/halfband.rs crates/filters/src/iir.rs crates/filters/src/kaiser.rs crates/filters/src/leastsq.rs crates/filters/src/linalg.rs crates/filters/src/remez.rs crates/filters/src/response.rs crates/filters/src/spec.rs crates/filters/src/window.rs Cargo.toml

crates/filters/src/lib.rs:
crates/filters/src/butterworth.rs:
crates/filters/src/examples.rs:
crates/filters/src/halfband.rs:
crates/filters/src/iir.rs:
crates/filters/src/kaiser.rs:
crates/filters/src/leastsq.rs:
crates/filters/src/linalg.rs:
crates/filters/src/remez.rs:
crates/filters/src/response.rs:
crates/filters/src/spec.rs:
crates/filters/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
