/root/repo/target/debug/deps/mrp_cse-20f69aa2fd466cc5.d: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/debug/deps/mrp_cse-20f69aa2fd466cc5: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

crates/cse/src/lib.rs:
crates/cse/src/differential.rs:
crates/cse/src/hartley.rs:
crates/cse/src/mcm.rs:
crates/cse/src/pattern.rs:
