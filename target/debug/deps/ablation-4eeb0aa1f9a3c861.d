/root/repo/target/debug/deps/ablation-4eeb0aa1f9a3c861.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4eeb0aa1f9a3c861: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
