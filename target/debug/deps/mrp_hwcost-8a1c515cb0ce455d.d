/root/repo/target/debug/deps/mrp_hwcost-8a1c515cb0ce455d.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/debug/deps/mrp_hwcost-8a1c515cb0ce455d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
