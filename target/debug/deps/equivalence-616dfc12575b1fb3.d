/root/repo/target/debug/deps/equivalence-616dfc12575b1fb3.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-616dfc12575b1fb3: tests/equivalence.rs

tests/equivalence.rs:
