/root/repo/target/debug/deps/mrp_cli-ba4e6d98b203a6d4.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_cli-ba4e6d98b203a6d4.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
