/root/repo/target/debug/deps/pathological-c009f064ae91d454.d: crates/resilience/tests/pathological.rs

/root/repo/target/debug/deps/pathological-c009f064ae91d454: crates/resilience/tests/pathological.rs

crates/resilience/tests/pathological.rs:
