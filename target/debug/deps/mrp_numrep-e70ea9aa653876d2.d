/root/repo/target/debug/deps/mrp_numrep-e70ea9aa653876d2.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/debug/deps/libmrp_numrep-e70ea9aa653876d2.rlib: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/debug/deps/libmrp_numrep-e70ea9aa653876d2.rmeta: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
