/root/repo/target/debug/deps/cross_crate-8163bced29d75498.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-8163bced29d75498: tests/cross_crate.rs

tests/cross_crate.rs:
