/root/repo/target/debug/deps/mrp_arch-39866e6a26b042c1.d: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

/root/repo/target/debug/deps/libmrp_arch-39866e6a26b042c1.rlib: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

/root/repo/target/debug/deps/libmrp_arch-39866e6a26b042c1.rmeta: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

crates/arch/src/lib.rs:
crates/arch/src/dot.rs:
crates/arch/src/eval.rs:
crates/arch/src/filter_structure.rs:
crates/arch/src/iir.rs:
crates/arch/src/netlist.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/verilog.rs:
crates/arch/src/verilog_pipelined.rs:
