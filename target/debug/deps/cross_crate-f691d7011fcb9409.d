/root/repo/target/debug/deps/cross_crate-f691d7011fcb9409.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-f691d7011fcb9409.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
