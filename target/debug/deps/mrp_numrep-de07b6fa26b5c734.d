/root/repo/target/debug/deps/mrp_numrep-de07b6fa26b5c734.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_numrep-de07b6fa26b5c734.rmeta: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs Cargo.toml

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
