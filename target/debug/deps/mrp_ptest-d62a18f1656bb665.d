/root/repo/target/debug/deps/mrp_ptest-d62a18f1656bb665.d: crates/ptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_ptest-d62a18f1656bb665.rmeta: crates/ptest/src/lib.rs Cargo.toml

crates/ptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
