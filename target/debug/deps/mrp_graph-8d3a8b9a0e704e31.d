/root/repo/target/debug/deps/mrp_graph-8d3a8b9a0e704e31.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/libmrp_graph-8d3a8b9a0e704e31.rlib: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/libmrp_graph-8d3a8b9a0e704e31.rmeta: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/components.rs:
crates/graph/src/mst.rs:
crates/graph/src/setcover.rs:
crates/graph/src/unionfind.rs:
