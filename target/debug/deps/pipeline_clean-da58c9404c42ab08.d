/root/repo/target/debug/deps/pipeline_clean-da58c9404c42ab08.d: crates/lint/tests/pipeline_clean.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_clean-da58c9404c42ab08.rmeta: crates/lint/tests/pipeline_clean.rs Cargo.toml

crates/lint/tests/pipeline_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
