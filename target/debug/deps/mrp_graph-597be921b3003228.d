/root/repo/target/debug/deps/mrp_graph-597be921b3003228.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/mrp_graph-597be921b3003228: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/components.rs:
crates/graph/src/mst.rs:
crates/graph/src/setcover.rs:
crates/graph/src/unionfind.rs:
