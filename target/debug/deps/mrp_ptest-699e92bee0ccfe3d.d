/root/repo/target/debug/deps/mrp_ptest-699e92bee0ccfe3d.d: crates/ptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_ptest-699e92bee0ccfe3d.rmeta: crates/ptest/src/lib.rs Cargo.toml

crates/ptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
