/root/repo/target/debug/deps/fig6-b7c3c2a0d071c610.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b7c3c2a0d071c610: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
