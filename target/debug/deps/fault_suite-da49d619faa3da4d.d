/root/repo/target/debug/deps/fault_suite-da49d619faa3da4d.d: crates/resilience/tests/fault_suite.rs

/root/repo/target/debug/deps/fault_suite-da49d619faa3da4d: crates/resilience/tests/fault_suite.rs

crates/resilience/tests/fault_suite.rs:
