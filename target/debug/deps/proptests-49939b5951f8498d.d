/root/repo/target/debug/deps/proptests-49939b5951f8498d.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-49939b5951f8498d: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
