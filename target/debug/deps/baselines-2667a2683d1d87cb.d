/root/repo/target/debug/deps/baselines-2667a2683d1d87cb.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-2667a2683d1d87cb: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
