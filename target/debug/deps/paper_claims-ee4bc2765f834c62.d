/root/repo/target/debug/deps/paper_claims-ee4bc2765f834c62.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ee4bc2765f834c62: tests/paper_claims.rs

tests/paper_claims.rs:
