/root/repo/target/debug/deps/mrp_sim-cd9d2fc1ff10fb7c.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/debug/deps/mrp_sim-cd9d2fc1ff10fb7c: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
