/root/repo/target/debug/deps/equivalence-abb7eda5f4124d4a.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-abb7eda5f4124d4a.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
