/root/repo/target/debug/deps/proptests-fc49a93f4d689120.d: crates/cse/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fc49a93f4d689120.rmeta: crates/cse/tests/proptests.rs Cargo.toml

crates/cse/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
