/root/repo/target/debug/deps/mrp_cli-ec0b3cbf58456306.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-ec0b3cbf58456306.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmrp_cli-ec0b3cbf58456306.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
