/root/repo/target/debug/deps/greedy_quality-26c0389f3d3658eb.d: crates/core/tests/greedy_quality.rs

/root/repo/target/debug/deps/greedy_quality-26c0389f3d3658eb: crates/core/tests/greedy_quality.rs

crates/core/tests/greedy_quality.rs:
