/root/repo/target/debug/deps/mrp_bench-59f3f28dcc9df928.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/mrp_bench-59f3f28dcc9df928: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
