/root/repo/target/debug/deps/proptests-03ed6a904f021f8b.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-03ed6a904f021f8b: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
