/root/repo/target/debug/deps/eval-8f2de5d6f6725ef8.d: crates/bench/benches/eval.rs Cargo.toml

/root/repo/target/debug/deps/libeval-8f2de5d6f6725ef8.rmeta: crates/bench/benches/eval.rs Cargo.toml

crates/bench/benches/eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
