/root/repo/target/debug/deps/proptests-2de6622d2789bd56.d: crates/numrep/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2de6622d2789bd56: crates/numrep/tests/proptests.rs

crates/numrep/tests/proptests.rs:
