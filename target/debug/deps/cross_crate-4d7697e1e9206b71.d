/root/repo/target/debug/deps/cross_crate-4d7697e1e9206b71.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-4d7697e1e9206b71: tests/cross_crate.rs

tests/cross_crate.rs:
