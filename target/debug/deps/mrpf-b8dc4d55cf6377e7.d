/root/repo/target/debug/deps/mrpf-b8dc4d55cf6377e7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-b8dc4d55cf6377e7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
