/root/repo/target/debug/deps/roundtrip-8c2258c66aad28cd.d: crates/vsim/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-8c2258c66aad28cd: crates/vsim/tests/roundtrip.rs

crates/vsim/tests/roundtrip.rs:
