/root/repo/target/debug/deps/mrp_hwcost-c2661cfe3c0e010b.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_hwcost-c2661cfe3c0e010b.rmeta: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs Cargo.toml

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
