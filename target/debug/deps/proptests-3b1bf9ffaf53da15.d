/root/repo/target/debug/deps/proptests-3b1bf9ffaf53da15.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3b1bf9ffaf53da15.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
