/root/repo/target/debug/deps/mrpf-1e9ca1d35ff0af11.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mrpf-1e9ca1d35ff0af11: crates/cli/src/main.rs

crates/cli/src/main.rs:
