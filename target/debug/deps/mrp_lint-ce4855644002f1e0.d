/root/repo/target/debug/deps/mrp_lint-ce4855644002f1e0.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/debug/deps/libmrp_lint-ce4855644002f1e0.rlib: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/debug/deps/libmrp_lint-ce4855644002f1e0.rmeta: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
