/root/repo/target/debug/deps/width_roundtrip-48cb1739d327ea3b.d: crates/lint/tests/width_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libwidth_roundtrip-48cb1739d327ea3b.rmeta: crates/lint/tests/width_roundtrip.rs Cargo.toml

crates/lint/tests/width_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
