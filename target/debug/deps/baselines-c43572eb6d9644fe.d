/root/repo/target/debug/deps/baselines-c43572eb6d9644fe.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-c43572eb6d9644fe.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
