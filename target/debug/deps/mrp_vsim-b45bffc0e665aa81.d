/root/repo/target/debug/deps/mrp_vsim-b45bffc0e665aa81.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_vsim-b45bffc0e665aa81.rmeta: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs Cargo.toml

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
