/root/repo/target/debug/deps/mrp_core-b71168b2b2ac151d.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_core-b71168b2b2ac151d.rmeta: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/flat.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
