/root/repo/target/debug/deps/mrp_lint-1e2c17233f0bb387.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/debug/deps/mrp_lint-1e2c17233f0bb387: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
