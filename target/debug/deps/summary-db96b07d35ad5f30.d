/root/repo/target/debug/deps/summary-db96b07d35ad5f30.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-db96b07d35ad5f30.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
