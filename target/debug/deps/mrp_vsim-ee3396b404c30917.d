/root/repo/target/debug/deps/mrp_vsim-ee3396b404c30917.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/debug/deps/libmrp_vsim-ee3396b404c30917.rlib: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/debug/deps/libmrp_vsim-ee3396b404c30917.rmeta: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
