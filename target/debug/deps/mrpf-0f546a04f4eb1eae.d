/root/repo/target/debug/deps/mrpf-0f546a04f4eb1eae.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-0f546a04f4eb1eae.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
