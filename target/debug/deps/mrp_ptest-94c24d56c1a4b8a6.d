/root/repo/target/debug/deps/mrp_ptest-94c24d56c1a4b8a6.d: crates/ptest/src/lib.rs

/root/repo/target/debug/deps/libmrp_ptest-94c24d56c1a4b8a6.rlib: crates/ptest/src/lib.rs

/root/repo/target/debug/deps/libmrp_ptest-94c24d56c1a4b8a6.rmeta: crates/ptest/src/lib.rs

crates/ptest/src/lib.rs:
