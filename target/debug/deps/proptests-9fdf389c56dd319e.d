/root/repo/target/debug/deps/proptests-9fdf389c56dd319e.d: crates/arch/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9fdf389c56dd319e: crates/arch/tests/proptests.rs

crates/arch/tests/proptests.rs:
