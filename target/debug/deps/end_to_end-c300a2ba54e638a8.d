/root/repo/target/debug/deps/end_to_end-c300a2ba54e638a8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c300a2ba54e638a8: tests/end_to_end.rs

tests/end_to_end.rs:
