/root/repo/target/debug/deps/fig8-84bd4e701223cf57.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-84bd4e701223cf57: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
