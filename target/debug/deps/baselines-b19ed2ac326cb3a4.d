/root/repo/target/debug/deps/baselines-b19ed2ac326cb3a4.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-b19ed2ac326cb3a4.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
