/root/repo/target/debug/deps/proptests-92ddcde9e3517f7f.d: crates/arch/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-92ddcde9e3517f7f.rmeta: crates/arch/tests/proptests.rs Cargo.toml

crates/arch/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
