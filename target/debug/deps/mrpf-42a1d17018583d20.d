/root/repo/target/debug/deps/mrpf-42a1d17018583d20.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mrpf-42a1d17018583d20: crates/cli/src/main.rs

crates/cli/src/main.rs:
