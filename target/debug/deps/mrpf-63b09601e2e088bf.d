/root/repo/target/debug/deps/mrpf-63b09601e2e088bf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-63b09601e2e088bf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
