/root/repo/target/debug/deps/proptests-5690c6e197b24de5.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5690c6e197b24de5.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
