/root/repo/target/debug/deps/mrp_ptest-f5012196c3693fd1.d: crates/ptest/src/lib.rs

/root/repo/target/debug/deps/mrp_ptest-f5012196c3693fd1: crates/ptest/src/lib.rs

crates/ptest/src/lib.rs:
