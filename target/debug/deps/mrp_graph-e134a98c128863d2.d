/root/repo/target/debug/deps/mrp_graph-e134a98c128863d2.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_graph-e134a98c128863d2.rmeta: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/components.rs:
crates/graph/src/mst.rs:
crates/graph/src/setcover.rs:
crates/graph/src/unionfind.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
