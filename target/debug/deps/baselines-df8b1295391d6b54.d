/root/repo/target/debug/deps/baselines-df8b1295391d6b54.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-df8b1295391d6b54: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
