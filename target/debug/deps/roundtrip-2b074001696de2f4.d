/root/repo/target/debug/deps/roundtrip-2b074001696de2f4.d: crates/vsim/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-2b074001696de2f4.rmeta: crates/vsim/tests/roundtrip.rs Cargo.toml

crates/vsim/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
