/root/repo/target/debug/deps/mrpf-79d49aeba8f50d55.d: src/lib.rs

/root/repo/target/debug/deps/libmrpf-79d49aeba8f50d55.rlib: src/lib.rs

/root/repo/target/debug/deps/libmrpf-79d49aeba8f50d55.rmeta: src/lib.rs

src/lib.rs:
