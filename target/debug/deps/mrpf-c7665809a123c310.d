/root/repo/target/debug/deps/mrpf-c7665809a123c310.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmrpf-c7665809a123c310.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
