/root/repo/target/debug/deps/mrp_sim-8e5889af7868127c.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_sim-8e5889af7868127c.rmeta: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
