/root/repo/target/debug/deps/mrp_resilience-c099a1a61b23f366.d: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_resilience-c099a1a61b23f366.rmeta: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs Cargo.toml

crates/resilience/src/lib.rs:
crates/resilience/src/budget.rs:
crates/resilience/src/driver.rs:
crates/resilience/src/error.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
