/root/repo/target/debug/deps/mrp_cli-3728962e98bb9dad.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mrp_cli-3728962e98bb9dad: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
