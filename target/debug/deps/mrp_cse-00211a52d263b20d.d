/root/repo/target/debug/deps/mrp_cse-00211a52d263b20d.d: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libmrp_cse-00211a52d263b20d.rmeta: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs Cargo.toml

crates/cse/src/lib.rs:
crates/cse/src/differential.rs:
crates/cse/src/hartley.rs:
crates/cse/src/mcm.rs:
crates/cse/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
