/root/repo/target/debug/deps/paper_claims-db9adf157146504f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-db9adf157146504f: tests/paper_claims.rs

tests/paper_claims.rs:
