/root/repo/target/debug/deps/summary-38173d7e1e245dbf.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-38173d7e1e245dbf.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
