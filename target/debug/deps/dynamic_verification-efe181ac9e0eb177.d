/root/repo/target/debug/deps/dynamic_verification-efe181ac9e0eb177.d: crates/sim/tests/dynamic_verification.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_verification-efe181ac9e0eb177.rmeta: crates/sim/tests/dynamic_verification.rs Cargo.toml

crates/sim/tests/dynamic_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
