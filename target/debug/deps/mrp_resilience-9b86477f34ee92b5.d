/root/repo/target/debug/deps/mrp_resilience-9b86477f34ee92b5.d: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

/root/repo/target/debug/deps/mrp_resilience-9b86477f34ee92b5: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

crates/resilience/src/lib.rs:
crates/resilience/src/budget.rs:
crates/resilience/src/driver.rs:
crates/resilience/src/error.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/ladder.rs:
