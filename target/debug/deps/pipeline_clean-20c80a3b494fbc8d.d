/root/repo/target/debug/deps/pipeline_clean-20c80a3b494fbc8d.d: crates/lint/tests/pipeline_clean.rs

/root/repo/target/debug/deps/pipeline_clean-20c80a3b494fbc8d: crates/lint/tests/pipeline_clean.rs

crates/lint/tests/pipeline_clean.rs:
