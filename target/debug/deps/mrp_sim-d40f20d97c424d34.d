/root/repo/target/debug/deps/mrp_sim-d40f20d97c424d34.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/debug/deps/libmrp_sim-d40f20d97c424d34.rlib: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/debug/deps/libmrp_sim-d40f20d97c424d34.rmeta: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
