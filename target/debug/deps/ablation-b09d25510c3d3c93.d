/root/repo/target/debug/deps/ablation-b09d25510c3d3c93.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-b09d25510c3d3c93.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
