/root/repo/target/debug/deps/greedy_quality-a9d857921c8a5817.d: crates/core/tests/greedy_quality.rs Cargo.toml

/root/repo/target/debug/deps/libgreedy_quality-a9d857921c8a5817.rmeta: crates/core/tests/greedy_quality.rs Cargo.toml

crates/core/tests/greedy_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
