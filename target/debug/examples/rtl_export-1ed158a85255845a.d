/root/repo/target/debug/examples/rtl_export-1ed158a85255845a.d: examples/rtl_export.rs

/root/repo/target/debug/examples/rtl_export-1ed158a85255845a: examples/rtl_export.rs

examples/rtl_export.rs:
