/root/repo/target/debug/examples/rtl_export-dbd4d024325fc13a.d: examples/rtl_export.rs Cargo.toml

/root/repo/target/debug/examples/librtl_export-dbd4d024325fc13a.rmeta: examples/rtl_export.rs Cargo.toml

examples/rtl_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
