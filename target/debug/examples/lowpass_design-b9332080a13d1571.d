/root/repo/target/debug/examples/lowpass_design-b9332080a13d1571.d: examples/lowpass_design.rs

/root/repo/target/debug/examples/lowpass_design-b9332080a13d1571: examples/lowpass_design.rs

examples/lowpass_design.rs:
