/root/repo/target/debug/examples/filter_bank-02893c30c139cee6.d: examples/filter_bank.rs Cargo.toml

/root/repo/target/debug/examples/libfilter_bank-02893c30c139cee6.rmeta: examples/filter_bank.rs Cargo.toml

examples/filter_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
