/root/repo/target/debug/examples/debug_lint-3889e60556bb25c2.d: examples/debug_lint.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_lint-3889e60556bb25c2.rmeta: examples/debug_lint.rs Cargo.toml

examples/debug_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
