/root/repo/target/debug/examples/iir_lowpass-c72c333f203794a5.d: examples/iir_lowpass.rs Cargo.toml

/root/repo/target/debug/examples/libiir_lowpass-c72c333f203794a5.rmeta: examples/iir_lowpass.rs Cargo.toml

examples/iir_lowpass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
