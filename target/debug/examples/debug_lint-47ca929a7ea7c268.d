/root/repo/target/debug/examples/debug_lint-47ca929a7ea7c268.d: examples/debug_lint.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_lint-47ca929a7ea7c268.rmeta: examples/debug_lint.rs Cargo.toml

examples/debug_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
