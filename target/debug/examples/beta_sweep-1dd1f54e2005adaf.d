/root/repo/target/debug/examples/beta_sweep-1dd1f54e2005adaf.d: examples/beta_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libbeta_sweep-1dd1f54e2005adaf.rmeta: examples/beta_sweep.rs Cargo.toml

examples/beta_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
