/root/repo/target/debug/examples/quickstart-18ce8ace70c212fe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-18ce8ace70c212fe: examples/quickstart.rs

examples/quickstart.rs:
