/root/repo/target/debug/examples/debug_lint-9abcdf44bb74bd03.d: examples/debug_lint.rs

/root/repo/target/debug/examples/debug_lint-9abcdf44bb74bd03: examples/debug_lint.rs

examples/debug_lint.rs:
