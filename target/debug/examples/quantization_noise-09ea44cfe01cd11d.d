/root/repo/target/debug/examples/quantization_noise-09ea44cfe01cd11d.d: examples/quantization_noise.rs Cargo.toml

/root/repo/target/debug/examples/libquantization_noise-09ea44cfe01cd11d.rmeta: examples/quantization_noise.rs Cargo.toml

examples/quantization_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
