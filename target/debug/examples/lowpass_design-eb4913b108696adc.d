/root/repo/target/debug/examples/lowpass_design-eb4913b108696adc.d: examples/lowpass_design.rs Cargo.toml

/root/repo/target/debug/examples/liblowpass_design-eb4913b108696adc.rmeta: examples/lowpass_design.rs Cargo.toml

examples/lowpass_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
