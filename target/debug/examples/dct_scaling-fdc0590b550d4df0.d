/root/repo/target/debug/examples/dct_scaling-fdc0590b550d4df0.d: examples/dct_scaling.rs

/root/repo/target/debug/examples/dct_scaling-fdc0590b550d4df0: examples/dct_scaling.rs

examples/dct_scaling.rs:
