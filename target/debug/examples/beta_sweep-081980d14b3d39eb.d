/root/repo/target/debug/examples/beta_sweep-081980d14b3d39eb.d: examples/beta_sweep.rs

/root/repo/target/debug/examples/beta_sweep-081980d14b3d39eb: examples/beta_sweep.rs

examples/beta_sweep.rs:
