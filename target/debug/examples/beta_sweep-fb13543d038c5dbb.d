/root/repo/target/debug/examples/beta_sweep-fb13543d038c5dbb.d: examples/beta_sweep.rs

/root/repo/target/debug/examples/beta_sweep-fb13543d038c5dbb: examples/beta_sweep.rs

examples/beta_sweep.rs:
