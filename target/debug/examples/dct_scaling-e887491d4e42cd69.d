/root/repo/target/debug/examples/dct_scaling-e887491d4e42cd69.d: examples/dct_scaling.rs

/root/repo/target/debug/examples/dct_scaling-e887491d4e42cd69: examples/dct_scaling.rs

examples/dct_scaling.rs:
