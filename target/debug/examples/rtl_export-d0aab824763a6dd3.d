/root/repo/target/debug/examples/rtl_export-d0aab824763a6dd3.d: examples/rtl_export.rs Cargo.toml

/root/repo/target/debug/examples/librtl_export-d0aab824763a6dd3.rmeta: examples/rtl_export.rs Cargo.toml

examples/rtl_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
