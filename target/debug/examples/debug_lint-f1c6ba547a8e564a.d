/root/repo/target/debug/examples/debug_lint-f1c6ba547a8e564a.d: examples/debug_lint.rs

/root/repo/target/debug/examples/debug_lint-f1c6ba547a8e564a: examples/debug_lint.rs

examples/debug_lint.rs:
