/root/repo/target/debug/examples/quickstart-a91e85616036ae79.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a91e85616036ae79: examples/quickstart.rs

examples/quickstart.rs:
