/root/repo/target/debug/examples/iir_lowpass-df971b53e9ff05fc.d: examples/iir_lowpass.rs

/root/repo/target/debug/examples/iir_lowpass-df971b53e9ff05fc: examples/iir_lowpass.rs

examples/iir_lowpass.rs:
