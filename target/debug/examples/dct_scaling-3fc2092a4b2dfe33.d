/root/repo/target/debug/examples/dct_scaling-3fc2092a4b2dfe33.d: examples/dct_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libdct_scaling-3fc2092a4b2dfe33.rmeta: examples/dct_scaling.rs Cargo.toml

examples/dct_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
