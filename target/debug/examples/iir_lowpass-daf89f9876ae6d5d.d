/root/repo/target/debug/examples/iir_lowpass-daf89f9876ae6d5d.d: examples/iir_lowpass.rs Cargo.toml

/root/repo/target/debug/examples/libiir_lowpass-daf89f9876ae6d5d.rmeta: examples/iir_lowpass.rs Cargo.toml

examples/iir_lowpass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
