/root/repo/target/debug/examples/quantization_noise-b9b6e551767fd804.d: examples/quantization_noise.rs

/root/repo/target/debug/examples/quantization_noise-b9b6e551767fd804: examples/quantization_noise.rs

examples/quantization_noise.rs:
