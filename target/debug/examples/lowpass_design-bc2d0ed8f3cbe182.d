/root/repo/target/debug/examples/lowpass_design-bc2d0ed8f3cbe182.d: examples/lowpass_design.rs

/root/repo/target/debug/examples/lowpass_design-bc2d0ed8f3cbe182: examples/lowpass_design.rs

examples/lowpass_design.rs:
