/root/repo/target/debug/examples/iir_lowpass-6e6638561d8002f3.d: examples/iir_lowpass.rs

/root/repo/target/debug/examples/iir_lowpass-6e6638561d8002f3: examples/iir_lowpass.rs

examples/iir_lowpass.rs:
