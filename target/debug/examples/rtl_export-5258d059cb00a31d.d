/root/repo/target/debug/examples/rtl_export-5258d059cb00a31d.d: examples/rtl_export.rs

/root/repo/target/debug/examples/rtl_export-5258d059cb00a31d: examples/rtl_export.rs

examples/rtl_export.rs:
