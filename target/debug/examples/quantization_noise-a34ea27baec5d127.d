/root/repo/target/debug/examples/quantization_noise-a34ea27baec5d127.d: examples/quantization_noise.rs Cargo.toml

/root/repo/target/debug/examples/libquantization_noise-a34ea27baec5d127.rmeta: examples/quantization_noise.rs Cargo.toml

examples/quantization_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
