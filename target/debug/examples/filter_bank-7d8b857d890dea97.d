/root/repo/target/debug/examples/filter_bank-7d8b857d890dea97.d: examples/filter_bank.rs

/root/repo/target/debug/examples/filter_bank-7d8b857d890dea97: examples/filter_bank.rs

examples/filter_bank.rs:
