/root/repo/target/debug/examples/filter_bank-3fb0dff20f960ca0.d: examples/filter_bank.rs

/root/repo/target/debug/examples/filter_bank-3fb0dff20f960ca0: examples/filter_bank.rs

examples/filter_bank.rs:
