/root/repo/target/debug/examples/quantization_noise-7b6dc4cc56bd6ea9.d: examples/quantization_noise.rs

/root/repo/target/debug/examples/quantization_noise-7b6dc4cc56bd6ea9: examples/quantization_noise.rs

examples/quantization_noise.rs:
