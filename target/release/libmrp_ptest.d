/root/repo/target/release/libmrp_ptest.rlib: /root/repo/crates/ptest/src/lib.rs
