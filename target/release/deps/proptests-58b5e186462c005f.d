/root/repo/target/release/deps/proptests-58b5e186462c005f.d: crates/numrep/tests/proptests.rs

/root/repo/target/release/deps/proptests-58b5e186462c005f: crates/numrep/tests/proptests.rs

crates/numrep/tests/proptests.rs:
