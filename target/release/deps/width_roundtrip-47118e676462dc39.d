/root/repo/target/release/deps/width_roundtrip-47118e676462dc39.d: crates/lint/tests/width_roundtrip.rs

/root/repo/target/release/deps/width_roundtrip-47118e676462dc39: crates/lint/tests/width_roundtrip.rs

crates/lint/tests/width_roundtrip.rs:
