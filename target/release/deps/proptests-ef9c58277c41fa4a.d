/root/repo/target/release/deps/proptests-ef9c58277c41fa4a.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-ef9c58277c41fa4a: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
