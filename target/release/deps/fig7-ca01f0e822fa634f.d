/root/repo/target/release/deps/fig7-ca01f0e822fa634f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-ca01f0e822fa634f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
