/root/repo/target/release/deps/baselines-d74d87dd9f1819ef.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-d74d87dd9f1819ef: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
