/root/repo/target/release/deps/paper_claims-6199711dd60dc5df.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-6199711dd60dc5df: tests/paper_claims.rs

tests/paper_claims.rs:
