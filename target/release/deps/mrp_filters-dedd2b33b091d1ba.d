/root/repo/target/release/deps/mrp_filters-dedd2b33b091d1ba.d: crates/filters/src/lib.rs crates/filters/src/butterworth.rs crates/filters/src/examples.rs crates/filters/src/halfband.rs crates/filters/src/iir.rs crates/filters/src/kaiser.rs crates/filters/src/leastsq.rs crates/filters/src/linalg.rs crates/filters/src/remez.rs crates/filters/src/response.rs crates/filters/src/spec.rs crates/filters/src/window.rs

/root/repo/target/release/deps/mrp_filters-dedd2b33b091d1ba: crates/filters/src/lib.rs crates/filters/src/butterworth.rs crates/filters/src/examples.rs crates/filters/src/halfband.rs crates/filters/src/iir.rs crates/filters/src/kaiser.rs crates/filters/src/leastsq.rs crates/filters/src/linalg.rs crates/filters/src/remez.rs crates/filters/src/response.rs crates/filters/src/spec.rs crates/filters/src/window.rs

crates/filters/src/lib.rs:
crates/filters/src/butterworth.rs:
crates/filters/src/examples.rs:
crates/filters/src/halfband.rs:
crates/filters/src/iir.rs:
crates/filters/src/kaiser.rs:
crates/filters/src/leastsq.rs:
crates/filters/src/linalg.rs:
crates/filters/src/remez.rs:
crates/filters/src/response.rs:
crates/filters/src/spec.rs:
crates/filters/src/window.rs:
