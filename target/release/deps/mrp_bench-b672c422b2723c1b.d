/root/repo/target/release/deps/mrp_bench-b672c422b2723c1b.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/mrp_bench-b672c422b2723c1b: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
