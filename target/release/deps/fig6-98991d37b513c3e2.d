/root/repo/target/release/deps/fig6-98991d37b513c3e2.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-98991d37b513c3e2: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
