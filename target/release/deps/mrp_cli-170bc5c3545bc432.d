/root/repo/target/release/deps/mrp_cli-170bc5c3545bc432.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/mrp_cli-170bc5c3545bc432: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
