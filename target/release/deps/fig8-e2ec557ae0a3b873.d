/root/repo/target/release/deps/fig8-e2ec557ae0a3b873.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-e2ec557ae0a3b873: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
