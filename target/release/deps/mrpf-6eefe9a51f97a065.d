/root/repo/target/release/deps/mrpf-6eefe9a51f97a065.d: src/lib.rs

/root/repo/target/release/deps/mrpf-6eefe9a51f97a065: src/lib.rs

src/lib.rs:
