/root/repo/target/release/deps/fig7-55a45c6341cc62dd.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-55a45c6341cc62dd: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
