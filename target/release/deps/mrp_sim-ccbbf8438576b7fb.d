/root/repo/target/release/deps/mrp_sim-ccbbf8438576b7fb.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/release/deps/mrp_sim-ccbbf8438576b7fb: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
