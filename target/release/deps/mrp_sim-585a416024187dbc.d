/root/repo/target/release/deps/mrp_sim-585a416024187dbc.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/release/deps/libmrp_sim-585a416024187dbc.rlib: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/release/deps/libmrp_sim-585a416024187dbc.rmeta: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
