/root/repo/target/release/deps/mrpf-22b81cc08e3c3ec5.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mrpf-22b81cc08e3c3ec5: crates/cli/src/main.rs

crates/cli/src/main.rs:
