/root/repo/target/release/deps/pipelined-f848efeddc00cfe4.d: crates/vsim/tests/pipelined.rs

/root/repo/target/release/deps/pipelined-f848efeddc00cfe4: crates/vsim/tests/pipelined.rs

crates/vsim/tests/pipelined.rs:
