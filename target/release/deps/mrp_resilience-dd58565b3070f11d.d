/root/repo/target/release/deps/mrp_resilience-dd58565b3070f11d.d: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

/root/repo/target/release/deps/libmrp_resilience-dd58565b3070f11d.rlib: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

/root/repo/target/release/deps/libmrp_resilience-dd58565b3070f11d.rmeta: crates/resilience/src/lib.rs crates/resilience/src/budget.rs crates/resilience/src/driver.rs crates/resilience/src/error.rs crates/resilience/src/fault.rs crates/resilience/src/ladder.rs

crates/resilience/src/lib.rs:
crates/resilience/src/budget.rs:
crates/resilience/src/driver.rs:
crates/resilience/src/error.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/ladder.rs:
