/root/repo/target/release/deps/mrp_cli-fff08cdef1206f34.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-fff08cdef1206f34.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-fff08cdef1206f34.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
