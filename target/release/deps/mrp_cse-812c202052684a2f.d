/root/repo/target/release/deps/mrp_cse-812c202052684a2f.d: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/release/deps/mrp_cse-812c202052684a2f: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

crates/cse/src/lib.rs:
crates/cse/src/differential.rs:
crates/cse/src/hartley.rs:
crates/cse/src/mcm.rs:
crates/cse/src/pattern.rs:
