/root/repo/target/release/deps/pipelined-58bfa00480b2084f.d: crates/vsim/tests/pipelined.rs

/root/repo/target/release/deps/pipelined-58bfa00480b2084f: crates/vsim/tests/pipelined.rs

crates/vsim/tests/pipelined.rs:
