/root/repo/target/release/deps/greedy_quality-0def641a617fba23.d: crates/core/tests/greedy_quality.rs

/root/repo/target/release/deps/greedy_quality-0def641a617fba23: crates/core/tests/greedy_quality.rs

crates/core/tests/greedy_quality.rs:
