/root/repo/target/release/deps/dynamic_verification-38e8dda37c2684ec.d: crates/sim/tests/dynamic_verification.rs

/root/repo/target/release/deps/dynamic_verification-38e8dda37c2684ec: crates/sim/tests/dynamic_verification.rs

crates/sim/tests/dynamic_verification.rs:
