/root/repo/target/release/deps/mrp_bench-c211a10447952c0d.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-c211a10447952c0d.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-c211a10447952c0d.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
