/root/repo/target/release/deps/mrp_ptest-105bc57b1aca0ff1.d: crates/ptest/src/lib.rs

/root/repo/target/release/deps/libmrp_ptest-105bc57b1aca0ff1.rlib: crates/ptest/src/lib.rs

/root/repo/target/release/deps/libmrp_ptest-105bc57b1aca0ff1.rmeta: crates/ptest/src/lib.rs

crates/ptest/src/lib.rs:
