/root/repo/target/release/deps/mrp_cli-47f77b8759f6d08d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/mrp_cli-47f77b8759f6d08d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
