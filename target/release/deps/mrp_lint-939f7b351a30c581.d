/root/repo/target/release/deps/mrp_lint-939f7b351a30c581.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/release/deps/mrp_lint-939f7b351a30c581: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
