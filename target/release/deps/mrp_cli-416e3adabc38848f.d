/root/repo/target/release/deps/mrp_cli-416e3adabc38848f.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-416e3adabc38848f.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-416e3adabc38848f.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
