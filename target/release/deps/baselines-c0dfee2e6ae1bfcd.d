/root/repo/target/release/deps/baselines-c0dfee2e6ae1bfcd.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-c0dfee2e6ae1bfcd: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
