/root/repo/target/release/deps/table1-8d515a00d06b58e9.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-8d515a00d06b58e9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
