/root/repo/target/release/deps/mrp_sim-357fbe3e523031fb.d: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

/root/repo/target/release/deps/mrp_sim-357fbe3e523031fb: crates/sim/src/lib.rs crates/sim/src/goertzel.rs crates/sim/src/signal.rs crates/sim/src/snr.rs crates/sim/src/stream.rs

crates/sim/src/lib.rs:
crates/sim/src/goertzel.rs:
crates/sim/src/signal.rs:
crates/sim/src/snr.rs:
crates/sim/src/stream.rs:
