/root/repo/target/release/deps/greedy_quality-f8c2da83d1d4bb1d.d: crates/core/tests/greedy_quality.rs

/root/repo/target/release/deps/greedy_quality-f8c2da83d1d4bb1d: crates/core/tests/greedy_quality.rs

crates/core/tests/greedy_quality.rs:
