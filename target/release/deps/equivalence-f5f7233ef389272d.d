/root/repo/target/release/deps/equivalence-f5f7233ef389272d.d: tests/equivalence.rs

/root/repo/target/release/deps/equivalence-f5f7233ef389272d: tests/equivalence.rs

tests/equivalence.rs:
