/root/repo/target/release/deps/proptests-19cb19d1856a499b.d: crates/cse/tests/proptests.rs

/root/repo/target/release/deps/proptests-19cb19d1856a499b: crates/cse/tests/proptests.rs

crates/cse/tests/proptests.rs:
