/root/repo/target/release/deps/mrp_bench-22319c86081c588a.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/mrp_bench-22319c86081c588a: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
