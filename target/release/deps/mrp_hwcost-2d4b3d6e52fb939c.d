/root/repo/target/release/deps/mrp_hwcost-2d4b3d6e52fb939c.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/release/deps/libmrp_hwcost-2d4b3d6e52fb939c.rlib: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/release/deps/libmrp_hwcost-2d4b3d6e52fb939c.rmeta: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
