/root/repo/target/release/deps/table1-49506fa185ae4517.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-49506fa185ae4517: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
