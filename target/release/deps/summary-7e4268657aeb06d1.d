/root/repo/target/release/deps/summary-7e4268657aeb06d1.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-7e4268657aeb06d1: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
