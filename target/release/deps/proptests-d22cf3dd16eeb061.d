/root/repo/target/release/deps/proptests-d22cf3dd16eeb061.d: crates/graph/tests/proptests.rs

/root/repo/target/release/deps/proptests-d22cf3dd16eeb061: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
