/root/repo/target/release/deps/proptests-00364804d00d7f2d.d: crates/arch/tests/proptests.rs

/root/repo/target/release/deps/proptests-00364804d00d7f2d: crates/arch/tests/proptests.rs

crates/arch/tests/proptests.rs:
