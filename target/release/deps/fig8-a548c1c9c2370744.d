/root/repo/target/release/deps/fig8-a548c1c9c2370744.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-a548c1c9c2370744: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
