/root/repo/target/release/deps/baselines-2d58c496a7c1a607.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-2d58c496a7c1a607: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
