/root/repo/target/release/deps/fig7-9340ff9e976f15bc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-9340ff9e976f15bc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
