/root/repo/target/release/deps/mrp_core-c3f9781a249cd08a.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libmrp_core-c3f9781a249cd08a.rlib: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libmrp_core-c3f9781a249cd08a.rmeta: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/flat.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/flat.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
