/root/repo/target/release/deps/fig6-37a2fed7bcef8e2a.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-37a2fed7bcef8e2a: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
