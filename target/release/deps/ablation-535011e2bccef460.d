/root/repo/target/release/deps/ablation-535011e2bccef460.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-535011e2bccef460: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
