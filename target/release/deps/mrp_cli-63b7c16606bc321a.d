/root/repo/target/release/deps/mrp_cli-63b7c16606bc321a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-63b7c16606bc321a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-63b7c16606bc321a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
