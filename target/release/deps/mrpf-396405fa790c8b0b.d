/root/repo/target/release/deps/mrpf-396405fa790c8b0b.d: src/lib.rs

/root/repo/target/release/deps/libmrpf-396405fa790c8b0b.rlib: src/lib.rs

/root/repo/target/release/deps/libmrpf-396405fa790c8b0b.rmeta: src/lib.rs

src/lib.rs:
