/root/repo/target/release/deps/mrp_cli-1f696e4f5d469bb6.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/mrp_cli-1f696e4f5d469bb6: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
