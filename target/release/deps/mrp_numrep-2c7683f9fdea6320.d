/root/repo/target/release/deps/mrp_numrep-2c7683f9fdea6320.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/release/deps/libmrp_numrep-2c7683f9fdea6320.rlib: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/release/deps/libmrp_numrep-2c7683f9fdea6320.rmeta: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
