/root/repo/target/release/deps/summary-3ddefe949db825a0.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-3ddefe949db825a0: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
