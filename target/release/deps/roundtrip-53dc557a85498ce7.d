/root/repo/target/release/deps/roundtrip-53dc557a85498ce7.d: crates/vsim/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-53dc557a85498ce7: crates/vsim/tests/roundtrip.rs

crates/vsim/tests/roundtrip.rs:
