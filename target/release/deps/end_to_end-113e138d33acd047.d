/root/repo/target/release/deps/end_to_end-113e138d33acd047.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-113e138d33acd047: tests/end_to_end.rs

tests/end_to_end.rs:
