/root/repo/target/release/deps/fig8-960dcb70ac0d67dc.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-960dcb70ac0d67dc: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
