/root/repo/target/release/deps/mrp_lint-b14341c482bc4844.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/release/deps/libmrp_lint-b14341c482bc4844.rlib: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/release/deps/libmrp_lint-b14341c482bc4844.rmeta: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
