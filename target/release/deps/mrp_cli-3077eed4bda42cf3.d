/root/repo/target/release/deps/mrp_cli-3077eed4bda42cf3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-3077eed4bda42cf3.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmrp_cli-3077eed4bda42cf3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
