/root/repo/target/release/deps/mrp_vsim-455104a73d942f6d.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/release/deps/mrp_vsim-455104a73d942f6d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
