/root/repo/target/release/deps/cross_crate-2377996515734e70.d: tests/cross_crate.rs

/root/repo/target/release/deps/cross_crate-2377996515734e70: tests/cross_crate.rs

tests/cross_crate.rs:
