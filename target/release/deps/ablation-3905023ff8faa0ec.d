/root/repo/target/release/deps/ablation-3905023ff8faa0ec.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-3905023ff8faa0ec: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
