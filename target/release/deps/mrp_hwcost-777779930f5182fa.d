/root/repo/target/release/deps/mrp_hwcost-777779930f5182fa.d: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

/root/repo/target/release/deps/mrp_hwcost-777779930f5182fa: crates/hwcost/src/lib.rs crates/hwcost/src/adder.rs crates/hwcost/src/interconnect.rs crates/hwcost/src/power.rs crates/hwcost/src/report.rs crates/hwcost/src/tech.rs

crates/hwcost/src/lib.rs:
crates/hwcost/src/adder.rs:
crates/hwcost/src/interconnect.rs:
crates/hwcost/src/power.rs:
crates/hwcost/src/report.rs:
crates/hwcost/src/tech.rs:
