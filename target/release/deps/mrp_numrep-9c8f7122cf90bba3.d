/root/repo/target/release/deps/mrp_numrep-9c8f7122cf90bba3.d: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

/root/repo/target/release/deps/mrp_numrep-9c8f7122cf90bba3: crates/numrep/src/lib.rs crates/numrep/src/digits.rs crates/numrep/src/fixed.rs crates/numrep/src/oddpart.rs crates/numrep/src/scaling.rs crates/numrep/src/scm.rs crates/numrep/src/sptq.rs

crates/numrep/src/lib.rs:
crates/numrep/src/digits.rs:
crates/numrep/src/fixed.rs:
crates/numrep/src/oddpart.rs:
crates/numrep/src/scaling.rs:
crates/numrep/src/scm.rs:
crates/numrep/src/sptq.rs:
