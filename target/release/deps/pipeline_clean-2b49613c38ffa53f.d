/root/repo/target/release/deps/pipeline_clean-2b49613c38ffa53f.d: crates/lint/tests/pipeline_clean.rs

/root/repo/target/release/deps/pipeline_clean-2b49613c38ffa53f: crates/lint/tests/pipeline_clean.rs

crates/lint/tests/pipeline_clean.rs:
