/root/repo/target/release/deps/mrpf-241e7fed25d74dab.d: src/lib.rs

/root/repo/target/release/deps/libmrpf-241e7fed25d74dab.rlib: src/lib.rs

/root/repo/target/release/deps/libmrpf-241e7fed25d74dab.rmeta: src/lib.rs

src/lib.rs:
