/root/repo/target/release/deps/mrp_cse-bad991a44d13a4c7.d: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/release/deps/libmrp_cse-bad991a44d13a4c7.rlib: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

/root/repo/target/release/deps/libmrp_cse-bad991a44d13a4c7.rmeta: crates/cse/src/lib.rs crates/cse/src/differential.rs crates/cse/src/hartley.rs crates/cse/src/mcm.rs crates/cse/src/pattern.rs

crates/cse/src/lib.rs:
crates/cse/src/differential.rs:
crates/cse/src/hartley.rs:
crates/cse/src/mcm.rs:
crates/cse/src/pattern.rs:
