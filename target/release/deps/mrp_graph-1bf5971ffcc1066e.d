/root/repo/target/release/deps/mrp_graph-1bf5971ffcc1066e.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/release/deps/libmrp_graph-1bf5971ffcc1066e.rlib: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/release/deps/libmrp_graph-1bf5971ffcc1066e.rmeta: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/components.rs:
crates/graph/src/mst.rs:
crates/graph/src/setcover.rs:
crates/graph/src/unionfind.rs:
