/root/repo/target/release/deps/mrpf-3c07c97341723809.d: src/lib.rs

/root/repo/target/release/deps/libmrpf-3c07c97341723809.rlib: src/lib.rs

/root/repo/target/release/deps/libmrpf-3c07c97341723809.rmeta: src/lib.rs

src/lib.rs:
