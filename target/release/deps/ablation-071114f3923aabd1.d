/root/repo/target/release/deps/ablation-071114f3923aabd1.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-071114f3923aabd1: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
