/root/repo/target/release/deps/fig6-d0c846a8776d482b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-d0c846a8776d482b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
