/root/repo/target/release/deps/mrpf-3f55d53dce535979.d: src/lib.rs

/root/repo/target/release/deps/mrpf-3f55d53dce535979: src/lib.rs

src/lib.rs:
