/root/repo/target/release/deps/paper_claims-4b06b4bba6dda388.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-4b06b4bba6dda388: tests/paper_claims.rs

tests/paper_claims.rs:
