/root/repo/target/release/deps/mrp_graph-653c1d9ee59a7dbb.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

/root/repo/target/release/deps/mrp_graph-653c1d9ee59a7dbb: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/components.rs crates/graph/src/mst.rs crates/graph/src/setcover.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/components.rs:
crates/graph/src/mst.rs:
crates/graph/src/setcover.rs:
crates/graph/src/unionfind.rs:
