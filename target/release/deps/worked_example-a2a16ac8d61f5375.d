/root/repo/target/release/deps/worked_example-a2a16ac8d61f5375.d: tests/worked_example.rs

/root/repo/target/release/deps/worked_example-a2a16ac8d61f5375: tests/worked_example.rs

tests/worked_example.rs:
