/root/repo/target/release/deps/mrp_lint-61d5033275fe8303.d: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

/root/repo/target/release/deps/mrp_lint-61d5033275fe8303: crates/lint/src/lib.rs crates/lint/src/depth.rs crates/lint/src/diag.rs crates/lint/src/equiv.rs crates/lint/src/rtl.rs crates/lint/src/structure.rs crates/lint/src/width.rs

crates/lint/src/lib.rs:
crates/lint/src/depth.rs:
crates/lint/src/diag.rs:
crates/lint/src/equiv.rs:
crates/lint/src/rtl.rs:
crates/lint/src/structure.rs:
crates/lint/src/width.rs:
