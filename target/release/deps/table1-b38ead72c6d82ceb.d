/root/repo/target/release/deps/table1-b38ead72c6d82ceb.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b38ead72c6d82ceb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
