/root/repo/target/release/deps/dynamic_verification-fca01b99693097e9.d: crates/sim/tests/dynamic_verification.rs

/root/repo/target/release/deps/dynamic_verification-fca01b99693097e9: crates/sim/tests/dynamic_verification.rs

crates/sim/tests/dynamic_verification.rs:
