/root/repo/target/release/deps/mrp_bench-8d2db942ae10a175.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-8d2db942ae10a175.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-8d2db942ae10a175.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
