/root/repo/target/release/deps/mrp_vsim-4820a0507d06e964.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/release/deps/libmrp_vsim-4820a0507d06e964.rlib: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/release/deps/libmrp_vsim-4820a0507d06e964.rmeta: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
