/root/repo/target/release/deps/baselines-0e845d4ef5267580.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-0e845d4ef5267580: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
