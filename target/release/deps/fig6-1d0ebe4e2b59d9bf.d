/root/repo/target/release/deps/fig6-1d0ebe4e2b59d9bf.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1d0ebe4e2b59d9bf: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
