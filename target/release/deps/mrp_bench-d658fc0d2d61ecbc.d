/root/repo/target/release/deps/mrp_bench-d658fc0d2d61ecbc.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-d658fc0d2d61ecbc.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libmrp_bench-d658fc0d2d61ecbc.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
