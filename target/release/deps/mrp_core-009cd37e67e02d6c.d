/root/repo/target/release/deps/mrp_core-009cd37e67e02d6c.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/release/deps/mrp_core-009cd37e67e02d6c: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
