/root/repo/target/release/deps/summary-1aa564a486cb6132.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-1aa564a486cb6132: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
