/root/repo/target/release/deps/pipeline_clean-294f5f9ae54dd71f.d: crates/lint/tests/pipeline_clean.rs

/root/repo/target/release/deps/pipeline_clean-294f5f9ae54dd71f: crates/lint/tests/pipeline_clean.rs

crates/lint/tests/pipeline_clean.rs:
