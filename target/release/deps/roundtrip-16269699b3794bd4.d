/root/repo/target/release/deps/roundtrip-16269699b3794bd4.d: crates/vsim/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-16269699b3794bd4: crates/vsim/tests/roundtrip.rs

crates/vsim/tests/roundtrip.rs:
