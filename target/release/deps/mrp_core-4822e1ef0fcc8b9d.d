/root/repo/target/release/deps/mrp_core-4822e1ef0fcc8b9d.d: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libmrp_core-4822e1ef0fcc8b9d.rlib: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libmrp_core-4822e1ef0fcc8b9d.rmeta: crates/core/src/lib.rs crates/core/src/coeff.rs crates/core/src/color.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/mst_diff.rs crates/core/src/optimizer.rs crates/core/src/report.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coeff.rs:
crates/core/src/color.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/mst_diff.rs:
crates/core/src/optimizer.rs:
crates/core/src/report.rs:
crates/core/src/tree.rs:
