/root/repo/target/release/deps/mrpf-a58294bd411070b3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mrpf-a58294bd411070b3: crates/cli/src/main.rs

crates/cli/src/main.rs:
