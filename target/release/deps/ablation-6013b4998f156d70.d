/root/repo/target/release/deps/ablation-6013b4998f156d70.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-6013b4998f156d70: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
