/root/repo/target/release/deps/mrp_arch-f53872e9611ae349.d: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

/root/repo/target/release/deps/libmrp_arch-f53872e9611ae349.rlib: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

/root/repo/target/release/deps/libmrp_arch-f53872e9611ae349.rmeta: crates/arch/src/lib.rs crates/arch/src/dot.rs crates/arch/src/eval.rs crates/arch/src/filter_structure.rs crates/arch/src/iir.rs crates/arch/src/netlist.rs crates/arch/src/pipeline.rs crates/arch/src/verilog.rs crates/arch/src/verilog_pipelined.rs

crates/arch/src/lib.rs:
crates/arch/src/dot.rs:
crates/arch/src/eval.rs:
crates/arch/src/filter_structure.rs:
crates/arch/src/iir.rs:
crates/arch/src/netlist.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/verilog.rs:
crates/arch/src/verilog_pipelined.rs:
