/root/repo/target/release/deps/optimize-6d44e4a3aa58ac2d.d: crates/bench/benches/optimize.rs

/root/repo/target/release/deps/optimize-6d44e4a3aa58ac2d: crates/bench/benches/optimize.rs

crates/bench/benches/optimize.rs:
