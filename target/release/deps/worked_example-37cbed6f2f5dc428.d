/root/repo/target/release/deps/worked_example-37cbed6f2f5dc428.d: tests/worked_example.rs

/root/repo/target/release/deps/worked_example-37cbed6f2f5dc428: tests/worked_example.rs

tests/worked_example.rs:
