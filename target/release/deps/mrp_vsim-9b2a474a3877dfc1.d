/root/repo/target/release/deps/mrp_vsim-9b2a474a3877dfc1.d: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

/root/repo/target/release/deps/mrp_vsim-9b2a474a3877dfc1: crates/vsim/src/lib.rs crates/vsim/src/expr.rs crates/vsim/src/lexer.rs crates/vsim/src/module.rs

crates/vsim/src/lib.rs:
crates/vsim/src/expr.rs:
crates/vsim/src/lexer.rs:
crates/vsim/src/module.rs:
