/root/repo/target/release/deps/mrp_ptest-e6ad24c2907505e0.d: crates/ptest/src/lib.rs

/root/repo/target/release/deps/mrp_ptest-e6ad24c2907505e0: crates/ptest/src/lib.rs

crates/ptest/src/lib.rs:
