/root/repo/target/release/deps/fig7-8e9dd00f7db4f4b5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8e9dd00f7db4f4b5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
