/root/repo/target/release/deps/end_to_end-774eeb49a15bd3b3.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-774eeb49a15bd3b3: tests/end_to_end.rs

tests/end_to_end.rs:
