/root/repo/target/release/deps/summary-f5df7bebeb5dc2b6.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-f5df7bebeb5dc2b6: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
