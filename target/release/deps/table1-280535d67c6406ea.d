/root/repo/target/release/deps/table1-280535d67c6406ea.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-280535d67c6406ea: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
