/root/repo/target/release/deps/fig8-a84990a4df5528ae.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-a84990a4df5528ae: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
