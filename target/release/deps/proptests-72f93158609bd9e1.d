/root/repo/target/release/deps/proptests-72f93158609bd9e1.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-72f93158609bd9e1: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
