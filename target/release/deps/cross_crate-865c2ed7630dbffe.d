/root/repo/target/release/deps/cross_crate-865c2ed7630dbffe.d: tests/cross_crate.rs

/root/repo/target/release/deps/cross_crate-865c2ed7630dbffe: tests/cross_crate.rs

tests/cross_crate.rs:
