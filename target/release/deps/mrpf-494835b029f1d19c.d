/root/repo/target/release/deps/mrpf-494835b029f1d19c.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mrpf-494835b029f1d19c: crates/cli/src/main.rs

crates/cli/src/main.rs:
