/root/repo/target/release/deps/equivalence-b13781996bbaf284.d: tests/equivalence.rs

/root/repo/target/release/deps/equivalence-b13781996bbaf284: tests/equivalence.rs

tests/equivalence.rs:
