/root/repo/target/release/deps/mrpf-53721a91a3b8e3e2.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mrpf-53721a91a3b8e3e2: crates/cli/src/main.rs

crates/cli/src/main.rs:
