/root/repo/target/release/libmrp_vsim.rlib: /root/repo/crates/vsim/src/expr.rs /root/repo/crates/vsim/src/lexer.rs /root/repo/crates/vsim/src/lib.rs /root/repo/crates/vsim/src/module.rs
