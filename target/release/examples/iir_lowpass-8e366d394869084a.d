/root/repo/target/release/examples/iir_lowpass-8e366d394869084a.d: examples/iir_lowpass.rs

/root/repo/target/release/examples/iir_lowpass-8e366d394869084a: examples/iir_lowpass.rs

examples/iir_lowpass.rs:
