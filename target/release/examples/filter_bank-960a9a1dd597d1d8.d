/root/repo/target/release/examples/filter_bank-960a9a1dd597d1d8.d: examples/filter_bank.rs

/root/repo/target/release/examples/filter_bank-960a9a1dd597d1d8: examples/filter_bank.rs

examples/filter_bank.rs:
