/root/repo/target/release/examples/quantization_noise-cf2cb2939a7be93e.d: examples/quantization_noise.rs

/root/repo/target/release/examples/quantization_noise-cf2cb2939a7be93e: examples/quantization_noise.rs

examples/quantization_noise.rs:
