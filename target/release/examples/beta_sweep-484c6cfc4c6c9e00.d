/root/repo/target/release/examples/beta_sweep-484c6cfc4c6c9e00.d: examples/beta_sweep.rs

/root/repo/target/release/examples/beta_sweep-484c6cfc4c6c9e00: examples/beta_sweep.rs

examples/beta_sweep.rs:
