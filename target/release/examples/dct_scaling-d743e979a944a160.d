/root/repo/target/release/examples/dct_scaling-d743e979a944a160.d: examples/dct_scaling.rs

/root/repo/target/release/examples/dct_scaling-d743e979a944a160: examples/dct_scaling.rs

examples/dct_scaling.rs:
