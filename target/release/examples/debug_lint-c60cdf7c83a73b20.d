/root/repo/target/release/examples/debug_lint-c60cdf7c83a73b20.d: examples/debug_lint.rs

/root/repo/target/release/examples/debug_lint-c60cdf7c83a73b20: examples/debug_lint.rs

examples/debug_lint.rs:
