/root/repo/target/release/examples/quickstart-8759ff749c3f2a6e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8759ff749c3f2a6e: examples/quickstart.rs

examples/quickstart.rs:
