/root/repo/target/release/examples/quickstart-6fdaa60ff7ab0cb7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6fdaa60ff7ab0cb7: examples/quickstart.rs

examples/quickstart.rs:
