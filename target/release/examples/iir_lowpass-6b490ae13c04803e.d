/root/repo/target/release/examples/iir_lowpass-6b490ae13c04803e.d: examples/iir_lowpass.rs

/root/repo/target/release/examples/iir_lowpass-6b490ae13c04803e: examples/iir_lowpass.rs

examples/iir_lowpass.rs:
