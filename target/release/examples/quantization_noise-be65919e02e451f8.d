/root/repo/target/release/examples/quantization_noise-be65919e02e451f8.d: examples/quantization_noise.rs

/root/repo/target/release/examples/quantization_noise-be65919e02e451f8: examples/quantization_noise.rs

examples/quantization_noise.rs:
