/root/repo/target/release/examples/lowpass_design-c7bf1a33f53f56dc.d: examples/lowpass_design.rs

/root/repo/target/release/examples/lowpass_design-c7bf1a33f53f56dc: examples/lowpass_design.rs

examples/lowpass_design.rs:
