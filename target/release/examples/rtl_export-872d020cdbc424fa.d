/root/repo/target/release/examples/rtl_export-872d020cdbc424fa.d: examples/rtl_export.rs

/root/repo/target/release/examples/rtl_export-872d020cdbc424fa: examples/rtl_export.rs

examples/rtl_export.rs:
