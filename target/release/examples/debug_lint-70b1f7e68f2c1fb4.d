/root/repo/target/release/examples/debug_lint-70b1f7e68f2c1fb4.d: examples/debug_lint.rs

/root/repo/target/release/examples/debug_lint-70b1f7e68f2c1fb4: examples/debug_lint.rs

examples/debug_lint.rs:
