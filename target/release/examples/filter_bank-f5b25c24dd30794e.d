/root/repo/target/release/examples/filter_bank-f5b25c24dd30794e.d: examples/filter_bank.rs

/root/repo/target/release/examples/filter_bank-f5b25c24dd30794e: examples/filter_bank.rs

examples/filter_bank.rs:
