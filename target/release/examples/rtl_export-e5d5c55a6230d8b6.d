/root/repo/target/release/examples/rtl_export-e5d5c55a6230d8b6.d: examples/rtl_export.rs

/root/repo/target/release/examples/rtl_export-e5d5c55a6230d8b6: examples/rtl_export.rs

examples/rtl_export.rs:
