/root/repo/target/release/examples/beta_sweep-d6b8135a7d93216d.d: examples/beta_sweep.rs

/root/repo/target/release/examples/beta_sweep-d6b8135a7d93216d: examples/beta_sweep.rs

examples/beta_sweep.rs:
