/root/repo/target/release/examples/lowpass_design-3f05ec0e4abda7ee.d: examples/lowpass_design.rs

/root/repo/target/release/examples/lowpass_design-3f05ec0e4abda7ee: examples/lowpass_design.rs

examples/lowpass_design.rs:
