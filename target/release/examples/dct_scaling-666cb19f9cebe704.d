/root/repo/target/release/examples/dct_scaling-666cb19f9cebe704.d: examples/dct_scaling.rs

/root/repo/target/release/examples/dct_scaling-666cb19f9cebe704: examples/dct_scaling.rs

examples/dct_scaling.rs:
