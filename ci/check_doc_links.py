#!/usr/bin/env python3
"""Check every relative link and anchor in the repo's markdown docs.

Usage:
    python3 ci/check_doc_links.py [FILE.md ...]

With no arguments, checks README.md and docs/**/*.md (the documented
set, including generated subdirectories such as docs/results/).
For each markdown link or image `[text](target)`:

  * absolute URLs (http/https/mailto) are skipped — CI must not depend
    on the network;
  * a relative path must exist on disk (resolved from the linking file);
  * a `#fragment` must match a GitHub-style heading slug in the target
    file (or in the linking file for bare `#fragment` links).

Exit status is the number of broken links.
"""

from __future__ import annotations

import glob
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code spans."""
    lines, out, fenced = text.splitlines(), [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            out.append(re.sub(r"`[^`]*`", "``", line))
    return "\n".join(out)


def github_slugs(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in `path`."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in strip_code(path.read_text(encoding="utf-8")).splitlines():
        m = re.match(r"^(#{1,6})\s+(.*?)\s*#*\s*$", line)
        if not m:
            continue
        title = re.sub(r"[*_`]", "", m.group(2))
        # Markdown links in headings contribute their text only.
        title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
        slug = re.sub(r"[^\w\- ]", "", title.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def rel(path: Path, repo: Path) -> str:
    try:
        return str(path.relative_to(repo))
    except ValueError:
        return str(path)


def check_file(path: Path, repo: Path) -> list[str]:
    errors: list[str] = []
    text = strip_code(path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            dest = (path.parent / raw_path).resolve()
            if not dest.exists():
                errors.append(f"{rel(path, repo)}: broken link `{target}` "
                              f"(no such file {raw_path})")
                continue
        else:
            dest = path.resolve()
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                errors.append(f"{rel(path, repo)}: anchor on non-markdown "
                              f"target `{target}`")
            elif fragment not in github_slugs(dest):
                errors.append(f"{rel(path, repo)}: broken anchor `{target}` "
                              f"(no heading slug `{fragment}` in "
                              f"{rel(dest, repo)})")
    return errors


def main(argv: list[str]) -> int:
    repo = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = [repo / "README.md"] + sorted(
            Path(p).resolve()
            for p in glob.glob(str(repo / "docs" / "**" / "*.md"), recursive=True)
        )
    errors: list[str] = []
    checked = 0
    for f in files:
        if not f.exists():
            errors.append(f"{f}: file not found")
            continue
        checked += 1
        errors.extend(check_file(f, repo))
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"doc-links: {checked} file(s) checked, {len(errors)} broken link(s)")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
