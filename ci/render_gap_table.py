#!/usr/bin/env python3
"""Render docs/results/optimality-gap.md from BENCH_summary.json.

The bench summary binary (``cargo run --release -p mrp-bench --bin
summary``) measures, for each of the 12 example filters, the greedy
MRP+CSE adder count against the branch-and-bound exact MCM solver
(``mrp-exact``) under a fixed node cap, and records the result in the
``optimality_gap`` array of ``BENCH_summary.json``. This script turns
that array into the committed markdown table so the docs never drift
from the measured numbers by hand-editing.

CI regenerates the table and diffs it against the committed file; to
refresh after a bench change, run the summary bench and then:

    python3 ci/render_gap_table.py

Usage: render_gap_table.py [<BENCH_summary.json> [<output.md>]]
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def render(summary: dict) -> str:
    rows = summary.get("optimality_gap", [])
    stats = summary.get("gap", {})
    if not rows or not stats:
        raise SystemExit(
            "BENCH_summary.json has no optimality_gap/gap sections — "
            "regenerate it with: cargo run --release -p mrp-bench --bin summary"
        )

    wordlength = int(stats.get("wordlength", 0))
    node_cap = int(stats.get("node_cap", 0))

    lines = [
        "# Results: optimality gap of the greedy ladder",
        "",
        "> Part of the mrpf docs: [architecture](../architecture.md) ·"
        " [analysis](../analysis.md) · [lint](../lint.md) ·"
        " [robustness](../robustness.md) ·"
        " [observability](../observability.md) · [batch](../batch.md) ·"
        " [serve](../serve.md) · [store](../store.md) · [sim](../sim.md) ·"
        " [optimal](../optimal.md)",
        "",
        "**Generated file — do not edit by hand.** Regenerate with"
        " `cargo run --release -p mrp-bench --bin summary` followed by"
        " `python3 ci/render_gap_table.py`; CI diffs this file against a"
        " fresh render.",
        "",
        f"Per-filter adder counts at W = {wordlength} uniform quantization:"
        " `greedy` is the mrp+cse ladder rung, `exact` is the"
        " branch-and-bound MCM solver from"
        " [mrp-exact](../optimal.md) seeded with the greedy incumbent and"
        f" capped at {node_cap} search nodes. `gap` ="
        " 100 · (greedy − exact) / greedy. `lower` is the admissible lower"
        " bound at the root; `proven optimal` means the search closed the"
        " gap to that bound before exhausting its budget.",
        "",
        "| example | filter | taps | greedy adders | exact adders |"
        " lower bound | gap % | nodes | status |",
        "|--:|---|--:|--:|--:|--:|--:|--:|---|",
    ]
    for r in rows:
        status = "proven optimal" if r["proven_optimal"] else (
            "budget exhausted" if r["budget_exhausted"] else "bounded"
        )
        lines.append(
            f"| {r['example']} | {r['label']} | {r['taps']} |"
            f" {r['greedy_adders']} | {r['exact_adders']} |"
            f" {r['lower_bound']} | {r['gap_pct']:.1f} | {r['nodes']} |"
            f" {status} |"
        )
    lines += [
        "",
        f"Mean gap **{stats['mean_gap_pct']:.2f} %**, max gap"
        f" **{stats['max_gap_pct']:.2f} %**,"
        f" {int(stats['proven_optimal_filters'])}/{int(stats['filters'])}"
        " filters proven optimal.",
        "",
        "The `gap` section of [ci/bench_baseline.json](../../ci/bench_baseline.json)"
        " holds the hand-maintained ceilings"
        " (mean/max gap, proven-optimal floor) that"
        " [ci/check_bench_regression.py](../../ci/check_bench_regression.py)"
        " enforces on every bench run, and it independently rejects any"
        " report where `exact` exceeds `greedy` on any filter.",
        "",
    ]
    return "\n".join(lines)


def main(argv):
    summary_path = Path(argv[1]) if len(argv) > 1 else REPO / "BENCH_summary.json"
    out_path = (
        Path(argv[2]) if len(argv) > 2 else REPO / "docs" / "results" / "optimality-gap.md"
    )
    with open(summary_path) as f:
        summary = json.load(f)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render(summary), encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
