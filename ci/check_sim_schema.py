#!/usr/bin/env python3
"""Schema validation for ``BENCH_sim.json`` (the ``bench_sim`` report).

Structural checks only — no performance judgment (that is
``check_bench_regression.py``'s job). Fails (exit 1) when:

* a required top-level key is missing or has the wrong type,
* a throughput entry (``samples_per_sec`` scheme or ``compiled_by_lanes``
  lane) is missing, non-numeric, or non-positive,
* the lane axis is not exactly ``lanes_8/16/32/64``, or the headline
  ``compiled`` rate is not the best lane rate,
* a reported speedup disagrees with the rates it is derived from by more
  than 1 % relative,
* the report claims zero equivalence cross-checks — a rate published
  without a bit-exactness check behind it is worthless.

Usage: check_sim_schema.py <BENCH_sim.json>
"""

import json
import sys

TOP_LEVEL = {
    "bench": str,
    "filters": int,
    "wordlength": int,
    "tree_samples": int,
    "vsim_samples": int,
    "compiled_samples": int,
    "program_insts_total": int,
    "samples_per_sec": dict,
    "compiled_by_lanes": dict,
    "speedup_compiled_vs_tree": (int, float),
    "speedup_compiled_vs_vsim": (int, float),
    "equivalence_checks": int,
    "elapsed_ms": int,
}

SCHEMES = ["tree_walk", "vsim", "compiled"]
LANES = ["lanes_8", "lanes_16", "lanes_32", "lanes_64"]
SPEEDUP_TOLERANCE = 0.01  # relative disagreement with the quoted rates


def fail(message):
    print(f"SCHEMA ERROR: {message}")
    sys.exit(1)


def positive(mapping, name, key):
    value = mapping.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0.0:
        fail(f"{name}.{key} is {value!r}, wanted a positive number")
    return value


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        report = json.load(f)

    for key, kind in TOP_LEVEL.items():
        if key not in report:
            fail(f"missing top-level key `{key}`")
        if not isinstance(report[key], kind) or isinstance(report[key], bool):
            fail(f"`{key}` is {type(report[key]).__name__}, wanted {kind}")
    if report["bench"] != "sim":
        fail(f"bench is {report['bench']!r}, wanted 'sim'")
    for key in ("filters", "tree_samples", "vsim_samples", "compiled_samples",
                "program_insts_total", "equivalence_checks"):
        if report[key] <= 0:
            fail(f"`{key}` is {report[key]}, wanted positive")

    rates = report["samples_per_sec"]
    if sorted(rates) != sorted(SCHEMES):
        fail(f"samples_per_sec schemes are {sorted(rates)}, wanted {sorted(SCHEMES)}")
    for scheme in SCHEMES:
        positive(rates, "samples_per_sec", scheme)

    lanes = report["compiled_by_lanes"]
    if sorted(lanes) != sorted(LANES):
        fail(f"compiled_by_lanes axis is {sorted(lanes)}, wanted {sorted(LANES)}")
    best = max(positive(lanes, "compiled_by_lanes", lane) for lane in LANES)
    if abs(rates["compiled"] - best) > SPEEDUP_TOLERANCE * best:
        fail(
            f"samples_per_sec.compiled {rates['compiled']:.0f} is not the best "
            f"lane rate {best:.0f}"
        )

    for speedup_key, denom_key in [
        ("speedup_compiled_vs_tree", "tree_walk"),
        ("speedup_compiled_vs_vsim", "vsim"),
    ]:
        quoted = report[speedup_key]
        derived = rates["compiled"] / rates[denom_key]
        if quoted <= 0.0 or abs(quoted - derived) > SPEEDUP_TOLERANCE * derived:
            fail(
                f"{speedup_key} {quoted:.3f} disagrees with "
                f"compiled/{denom_key} = {derived:.3f}"
            )
        print(f"  {speedup_key}: {quoted:.2f}x (consistent with quoted rates)")

    print(
        f"schema OK: {report['filters']} filters, "
        f"{report['equivalence_checks']} equivalence check(s), "
        f"compiled {rates['compiled']:.0f} samples/sec"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
