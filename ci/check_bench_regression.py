#!/usr/bin/env python3
"""Perf-regression gate over the bench trajectory.

Dispatches on the fresh report's ``bench`` field.

``bench == "summary"`` (the default) compares a freshly generated
``BENCH_summary.json`` against the committed baseline
``ci/bench_baseline.json`` and fails (exit 1) when the synthesis quality
regressed:

* any ``reduction_pct`` entry DROPS by more than 0.5 percentage points
  (these are "how much smaller than the reference" numbers — bigger is
  better), or
* ``adders_per_tap_w16`` RISES by more than 2 % relative (smaller is
  better).

Wall-clock fields (``jobs``, ``elapsed_ms``) are ignored: the gate guards
quality, not machine speed.

``bench == "serve"`` gates a fresh ``BENCH_serve.json`` (from ``mrpf
load``) against the baseline's ``serve`` section — absolute latency
ceilings and a throughput floor, generous enough for noisy CI runners:

* every exercised route's p50/p99/p999 stays under its ceiling,
* achieved throughput is at least ``min_throughput_fraction`` of the
  target arrival rate,
* errors and missing ``X-Request-Id`` counts stay at their bounds
  (normally zero), and the report says ``passed``.

``bench == "sim"`` gates a fresh ``BENCH_sim.json`` (from ``bench_sim``)
against the baseline's ``sim`` section:

* ``speedup_compiled_vs_tree`` stays at or above
  ``min_speedup_compiled_vs_tree`` (a floor well under the committed
  number, to absorb CI-runner noise),
* ``speedup_compiled_vs_vsim`` stays at or above
  ``min_speedup_compiled_vs_vsim``, and
* at least ``min_equivalence_checks`` bit-exactness cross-checks backed
  the published rates.

To accept an intentional quality change, refresh the summary metrics in
the baseline in the same commit and say why; the ``serve`` and ``sim``
sections are hand-maintained ceilings/floors, so carry them over rather
than plain-``cp``-ing:

    python3 -c "
    import json
    with open('ci/bench_baseline.json') as f: old = json.load(f)
    with open('BENCH_summary.json') as f: new = json.load(f)
    new['serve'] = old['serve']
    new['sim'] = old['sim']
    with open('ci/bench_baseline.json', 'w') as f: json.dump(new, f)
    "

Usage: check_bench_regression.py <fresh.json> [<baseline.json>]
"""

import json
import sys

REDUCTION_DROP_PP = 0.5     # max tolerated drop, percentage points
ADDERS_PER_TAP_RISE = 0.02  # max tolerated relative rise


def load(path):
    with open(path) as f:
        return json.load(f)


def check_serve(fresh, baseline):
    """Gates a BENCH_serve.json against baseline["serve"] ceilings."""
    limits = baseline.get("serve")
    if not limits:
        print("baseline has no `serve` section — cannot gate a serve report")
        return 1

    failures = []
    checked = 0

    for route, stats in sorted(fresh.get("routes", {}).items()):
        if stats.get("requests", 0) == 0:
            print(f"  route {route}: not exercised, skipped")
            continue
        lat = stats.get("latency_ms", {})
        for q in ("p50", "p99", "p999"):
            ceiling = limits[f"max_route_{q}_ms"]
            value = lat.get(q)
            checked += 1
            status = "ok"
            if value is None or value <= 0.0 or value > ceiling:
                status = "REGRESSED"
                failures.append(
                    f"routes.{route}.latency_ms.{q}: {value} "
                    f"(must be in (0, {ceiling}] ms)"
                )
            print(f"  {route}.{q:<5} {value!s:>12} ms  (ceiling {ceiling}) {status}")

    floor = limits["min_throughput_fraction"] * fresh.get("rate_rps", 0.0)
    achieved = fresh.get("throughput_rps", 0.0)
    checked += 1
    status = "ok"
    if achieved < floor:
        status = "REGRESSED"
        failures.append(f"throughput_rps: {achieved:.2f} (floor {floor:.2f})")
    print(f"  throughput_rps {achieved:10.2f}     (floor {floor:.2f}) {status}")

    for field, bound_key in [
        ("errors", "max_errors"),
        ("missing_request_id", "max_missing_request_id"),
    ]:
        value = fresh.get(field, 1)
        bound = limits[bound_key]
        checked += 1
        status = "ok"
        if value > bound:
            status = "REGRESSED"
            failures.append(f"{field}: {value} (bound {bound})")
        print(f"  {field:<20} {value:>6}     (bound {bound}) {status}")

    if not fresh.get("passed", False):
        failures.append("report's own verdict is passed=false")

    if checked <= 1:
        print("serve gate checked no route latencies — report is malformed")
        return 1
    if failures:
        print(f"\nSERVE PERF GATE FAILED — {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nserve perf gate passed: {checked} metric(s) within ceilings")
    return 0


def check_sim(fresh, baseline):
    """Gates a BENCH_sim.json against baseline["sim"] speedup floors."""
    limits = baseline.get("sim")
    if not limits:
        print("baseline has no `sim` section — cannot gate a sim report")
        return 1

    failures = []
    checked = 0

    for field, floor_key in [
        ("speedup_compiled_vs_tree", "min_speedup_compiled_vs_tree"),
        ("speedup_compiled_vs_vsim", "min_speedup_compiled_vs_vsim"),
        ("equivalence_checks", "min_equivalence_checks"),
    ]:
        floor = limits[floor_key]
        value = fresh.get(field, 0)
        checked += 1
        status = "ok"
        if not isinstance(value, (int, float)) or value < floor:
            status = "REGRESSED"
            failures.append(f"{field}: {value} (floor {floor})")
        print(f"  {field:<28} {value:>12} (floor {floor}) {status}")

    if checked == 0:
        print("sim gate checked nothing — baseline or fresh report is malformed")
        return 1
    if failures:
        print(f"\nSIM PERF GATE FAILED — {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nsim perf gate passed: {checked} metric(s) above floors")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else "ci/bench_baseline.json"
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    if fresh.get("bench") == "serve":
        return check_serve(fresh, baseline)
    if fresh.get("bench") == "sim":
        return check_sim(fresh, baseline)

    failures = []
    checked = 0

    base_red = baseline.get("reduction_pct", {})
    fresh_red = fresh.get("reduction_pct", {})
    missing = sorted(set(base_red) - set(fresh_red))
    if missing:
        failures.append(f"reduction_pct keys vanished from the fresh report: {missing}")
    for key in sorted(set(base_red) & set(fresh_red)):
        old, new = base_red[key], fresh_red[key]
        checked += 1
        delta = new - old
        status = "ok"
        if delta < -REDUCTION_DROP_PP:
            status = "REGRESSED"
            failures.append(
                f"reduction_pct.{key}: {old:.3f} -> {new:.3f} "
                f"({delta:+.3f} pp, tolerance -{REDUCTION_DROP_PP} pp)"
            )
        print(f"  reduction_pct.{key:<28} {old:9.3f} -> {new:9.3f}  ({delta:+.3f} pp) {status}")

    if "adders_per_tap_w16" in baseline:
        old = baseline["adders_per_tap_w16"]
        new = fresh.get("adders_per_tap_w16")
        checked += 1
        if new is None:
            failures.append("adders_per_tap_w16 vanished from the fresh report")
        else:
            rise = (new - old) / old if old else 0.0
            status = "ok"
            if rise > ADDERS_PER_TAP_RISE:
                status = "REGRESSED"
                failures.append(
                    f"adders_per_tap_w16: {old:.6f} -> {new:.6f} "
                    f"({rise:+.2%}, tolerance +{ADDERS_PER_TAP_RISE:.0%})"
                )
            print(f"  adders_per_tap_w16{'':>13} {old:9.6f} -> {new:9.6f}  ({rise:+.2%}) {status}")

    if checked == 0:
        print("gate checked nothing — baseline or fresh report is malformed")
        return 1
    if failures:
        print(f"\nPERF GATE FAILED — {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        print(
            "\nIf this change is intentional, refresh the baseline in the same commit:\n"
            "    cp BENCH_summary.json ci/bench_baseline.json"
        )
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
