#!/usr/bin/env python3
"""Perf-regression gate over the bench trajectory.

Compares a freshly generated ``BENCH_summary.json`` against the committed
baseline ``ci/bench_baseline.json`` and fails (exit 1) when the synthesis
quality regressed:

* any ``reduction_pct`` entry DROPS by more than 0.5 percentage points
  (these are "how much smaller than the reference" numbers — bigger is
  better), or
* ``adders_per_tap_w16`` RISES by more than 2 % relative (smaller is
  better).

Wall-clock fields (``jobs``, ``elapsed_ms``) are ignored: the gate guards
quality, not machine speed.

To accept an intentional quality change, refresh the baseline in the same
commit and say why:

    cp BENCH_summary.json ci/bench_baseline.json

Usage: check_bench_regression.py <fresh.json> [<baseline.json>]
"""

import json
import sys

REDUCTION_DROP_PP = 0.5     # max tolerated drop, percentage points
ADDERS_PER_TAP_RISE = 0.02  # max tolerated relative rise


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else "ci/bench_baseline.json"
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    failures = []
    checked = 0

    base_red = baseline.get("reduction_pct", {})
    fresh_red = fresh.get("reduction_pct", {})
    missing = sorted(set(base_red) - set(fresh_red))
    if missing:
        failures.append(f"reduction_pct keys vanished from the fresh report: {missing}")
    for key in sorted(set(base_red) & set(fresh_red)):
        old, new = base_red[key], fresh_red[key]
        checked += 1
        delta = new - old
        status = "ok"
        if delta < -REDUCTION_DROP_PP:
            status = "REGRESSED"
            failures.append(
                f"reduction_pct.{key}: {old:.3f} -> {new:.3f} "
                f"({delta:+.3f} pp, tolerance -{REDUCTION_DROP_PP} pp)"
            )
        print(f"  reduction_pct.{key:<28} {old:9.3f} -> {new:9.3f}  ({delta:+.3f} pp) {status}")

    if "adders_per_tap_w16" in baseline:
        old = baseline["adders_per_tap_w16"]
        new = fresh.get("adders_per_tap_w16")
        checked += 1
        if new is None:
            failures.append("adders_per_tap_w16 vanished from the fresh report")
        else:
            rise = (new - old) / old if old else 0.0
            status = "ok"
            if rise > ADDERS_PER_TAP_RISE:
                status = "REGRESSED"
                failures.append(
                    f"adders_per_tap_w16: {old:.6f} -> {new:.6f} "
                    f"({rise:+.2%}, tolerance +{ADDERS_PER_TAP_RISE:.0%})"
                )
            print(f"  adders_per_tap_w16{'':>13} {old:9.6f} -> {new:9.6f}  ({rise:+.2%}) {status}")

    if checked == 0:
        print("gate checked nothing — baseline or fresh report is malformed")
        return 1
    if failures:
        print(f"\nPERF GATE FAILED — {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        print(
            "\nIf this change is intentional, refresh the baseline in the same commit:\n"
            "    cp BENCH_summary.json ci/bench_baseline.json"
        )
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
