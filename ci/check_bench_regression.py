#!/usr/bin/env python3
"""Perf-regression gate over the bench trajectory.

Dispatches on the fresh report's ``bench`` field.

``bench == "summary"`` (the default) compares a freshly generated
``BENCH_summary.json`` against the committed baseline
``ci/bench_baseline.json`` and fails (exit 1) when the synthesis quality
regressed:

* any ``reduction_pct`` entry DROPS by more than 0.5 percentage points
  (these are "how much smaller than the reference" numbers — bigger is
  better), or
* ``adders_per_tap_w16`` RISES by more than 2 % relative (smaller is
  better).

Wall-clock fields (``jobs``, ``elapsed_ms``) are ignored: the gate guards
quality, not machine speed.

``bench == "serve"`` gates a fresh ``BENCH_serve.json`` (from ``mrpf
load``) against the baseline's ``serve`` section — absolute latency
ceilings and a throughput floor, generous enough for noisy CI runners:

* every exercised route's p50/p99/p999 stays under its ceiling,
* achieved throughput is at least ``min_throughput_fraction`` of the
  target arrival rate,
* errors and missing ``X-Request-Id`` counts stay at their bounds
  (normally zero), and the report says ``passed``.

``bench == "sim"`` gates a fresh ``BENCH_sim.json`` (from ``bench_sim``)
against the baseline's ``sim`` section:

* ``speedup_compiled_vs_tree`` stays at or above
  ``min_speedup_compiled_vs_tree`` (a floor well under the committed
  number, to absorb CI-runner noise),
* ``speedup_compiled_vs_vsim`` stays at or above
  ``min_speedup_compiled_vs_vsim``, and
* at least ``min_equivalence_checks`` bit-exactness cross-checks backed
  the published rates.

The summary path additionally gates the exact-solver optimality-gap
sweep against the baseline's ``gap`` section (hand-maintained limits):

* every ``optimality_gap`` row satisfies ``exact_adders <=
  greedy_adders`` (the branch-and-bound search is seeded with the
  greedy incumbent, so exact can never be worse — a violation means the
  solver or its realization is broken),
* ``gap.mean_gap_pct`` stays at or below ``max_mean_gap_pct`` and
  ``gap.max_gap_pct`` at or below ``max_max_gap_pct``,
* at least ``min_proven_optimal`` filters report ``proven_optimal``,
  over at least ``min_filters`` filters.

To accept an intentional quality change, refresh the summary metrics in
the baseline in the same commit and say why; the ``serve``, ``sim`` and
``gap`` sections are hand-maintained ceilings/floors, so carry them over
rather than plain-``cp``-ing:

    python3 -c "
    import json
    with open('ci/bench_baseline.json') as f: old = json.load(f)
    with open('BENCH_summary.json') as f: new = json.load(f)
    new['serve'] = old['serve']
    new['sim'] = old['sim']
    new['gap'] = old['gap']
    with open('ci/bench_baseline.json', 'w') as f: json.dump(new, f)
    "

Usage: check_bench_regression.py <fresh.json> [<baseline.json>]
"""

import json
import sys

REDUCTION_DROP_PP = 0.5     # max tolerated drop, percentage points
ADDERS_PER_TAP_RISE = 0.02  # max tolerated relative rise


def load(path):
    with open(path) as f:
        return json.load(f)


def check_serve(fresh, baseline):
    """Gates a BENCH_serve.json against baseline["serve"] ceilings."""
    limits = baseline.get("serve")
    if not limits:
        print("baseline has no `serve` section — cannot gate a serve report")
        return 1

    failures = []
    checked = 0

    for route, stats in sorted(fresh.get("routes", {}).items()):
        if stats.get("requests", 0) == 0:
            print(f"  route {route}: not exercised, skipped")
            continue
        lat = stats.get("latency_ms", {})
        for q in ("p50", "p99", "p999"):
            ceiling = limits[f"max_route_{q}_ms"]
            value = lat.get(q)
            checked += 1
            status = "ok"
            if value is None or value <= 0.0 or value > ceiling:
                status = "REGRESSED"
                failures.append(
                    f"routes.{route}.latency_ms.{q}: {value} "
                    f"(must be in (0, {ceiling}] ms)"
                )
            print(f"  {route}.{q:<5} {value!s:>12} ms  (ceiling {ceiling}) {status}")

    floor = limits["min_throughput_fraction"] * fresh.get("rate_rps", 0.0)
    achieved = fresh.get("throughput_rps", 0.0)
    checked += 1
    status = "ok"
    if achieved < floor:
        status = "REGRESSED"
        failures.append(f"throughput_rps: {achieved:.2f} (floor {floor:.2f})")
    print(f"  throughput_rps {achieved:10.2f}     (floor {floor:.2f}) {status}")

    for field, bound_key in [
        ("errors", "max_errors"),
        ("missing_request_id", "max_missing_request_id"),
    ]:
        value = fresh.get(field, 1)
        bound = limits[bound_key]
        checked += 1
        status = "ok"
        if value > bound:
            status = "REGRESSED"
            failures.append(f"{field}: {value} (bound {bound})")
        print(f"  {field:<20} {value:>6}     (bound {bound}) {status}")

    if not fresh.get("passed", False):
        failures.append("report's own verdict is passed=false")

    if checked <= 1:
        print("serve gate checked no route latencies — report is malformed")
        return 1
    if failures:
        print(f"\nSERVE PERF GATE FAILED — {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nserve perf gate passed: {checked} metric(s) within ceilings")
    return 0


def check_sim(fresh, baseline):
    """Gates a BENCH_sim.json against baseline["sim"] speedup floors."""
    limits = baseline.get("sim")
    if not limits:
        print("baseline has no `sim` section — cannot gate a sim report")
        return 1

    failures = []
    checked = 0

    for field, floor_key in [
        ("speedup_compiled_vs_tree", "min_speedup_compiled_vs_tree"),
        ("speedup_compiled_vs_vsim", "min_speedup_compiled_vs_vsim"),
        ("equivalence_checks", "min_equivalence_checks"),
    ]:
        floor = limits[floor_key]
        value = fresh.get(field, 0)
        checked += 1
        status = "ok"
        if not isinstance(value, (int, float)) or value < floor:
            status = "REGRESSED"
            failures.append(f"{field}: {value} (floor {floor})")
        print(f"  {field:<28} {value:>12} (floor {floor}) {status}")

    if checked == 0:
        print("sim gate checked nothing — baseline or fresh report is malformed")
        return 1
    if failures:
        print(f"\nSIM PERF GATE FAILED — {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nsim perf gate passed: {checked} metric(s) above floors")
    return 0


def check_gap(fresh, baseline, failures):
    """Gates the optimality-gap sweep against baseline["gap"] limits.

    Returns the number of checks performed (0 when the baseline has no
    ``gap`` section, which keeps pre-gap baselines working).
    """
    limits = baseline.get("gap")
    if not limits:
        return 0

    checked = 0
    rows = fresh.get("optimality_gap", [])
    stats = fresh.get("gap", {})

    checked += 1
    if len(rows) < limits["min_filters"]:
        failures.append(
            f"optimality_gap covers {len(rows)} filter(s), "
            f"floor {limits['min_filters']}"
        )
    print(f"  gap.filters{'':>24} {len(rows):>6}  (floor {limits['min_filters']})")

    for row in rows:
        checked += 1
        greedy, exact = row.get("greedy_adders"), row.get("exact_adders")
        status = "ok"
        if not isinstance(exact, int) or not isinstance(greedy, int) or exact > greedy:
            status = "REGRESSED"
            failures.append(
                f"optimality_gap example {row.get('example')}: exact_adders "
                f"{exact} exceeds greedy_adders {greedy} — the search is "
                f"seeded with the greedy incumbent, so this cannot happen "
                f"in a correct solver"
            )
        print(
            f"  gap.example {row.get('example'):>2}  greedy {greedy:>3} "
            f"exact {exact!s:>4}  {status}"
        )

    for field, limit_key, cmp in [
        ("mean_gap_pct", "max_mean_gap_pct", "<="),
        ("max_gap_pct", "max_max_gap_pct", "<="),
        ("proven_optimal_filters", "min_proven_optimal", ">="),
    ]:
        bound = limits[limit_key]
        value = stats.get(field)
        checked += 1
        ok = isinstance(value, (int, float)) and (
            value <= bound if cmp == "<=" else value >= bound
        )
        status = "ok" if ok else "REGRESSED"
        if not ok:
            failures.append(f"gap.{field}: {value} ({cmp} {bound} required)")
        print(f"  gap.{field:<30} {value!s:>8}  ({cmp} {bound}) {status}")

    return checked


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else "ci/bench_baseline.json"
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    if fresh.get("bench") == "serve":
        return check_serve(fresh, baseline)
    if fresh.get("bench") == "sim":
        return check_sim(fresh, baseline)

    failures = []
    checked = 0

    base_red = baseline.get("reduction_pct", {})
    fresh_red = fresh.get("reduction_pct", {})
    missing = sorted(set(base_red) - set(fresh_red))
    if missing:
        failures.append(f"reduction_pct keys vanished from the fresh report: {missing}")
    for key in sorted(set(base_red) & set(fresh_red)):
        old, new = base_red[key], fresh_red[key]
        checked += 1
        delta = new - old
        status = "ok"
        if delta < -REDUCTION_DROP_PP:
            status = "REGRESSED"
            failures.append(
                f"reduction_pct.{key}: {old:.3f} -> {new:.3f} "
                f"({delta:+.3f} pp, tolerance -{REDUCTION_DROP_PP} pp)"
            )
        print(f"  reduction_pct.{key:<28} {old:9.3f} -> {new:9.3f}  ({delta:+.3f} pp) {status}")

    if "adders_per_tap_w16" in baseline:
        old = baseline["adders_per_tap_w16"]
        new = fresh.get("adders_per_tap_w16")
        checked += 1
        if new is None:
            failures.append("adders_per_tap_w16 vanished from the fresh report")
        else:
            rise = (new - old) / old if old else 0.0
            status = "ok"
            if rise > ADDERS_PER_TAP_RISE:
                status = "REGRESSED"
                failures.append(
                    f"adders_per_tap_w16: {old:.6f} -> {new:.6f} "
                    f"({rise:+.2%}, tolerance +{ADDERS_PER_TAP_RISE:.0%})"
                )
            print(f"  adders_per_tap_w16{'':>13} {old:9.6f} -> {new:9.6f}  ({rise:+.2%}) {status}")

    checked += check_gap(fresh, baseline, failures)

    if checked == 0:
        print("gate checked nothing — baseline or fresh report is malformed")
        return 1
    if failures:
        print(f"\nPERF GATE FAILED — {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        print(
            "\nIf this change is intentional, refresh the baseline in the same\n"
            "commit, carrying over the hand-maintained serve/sim/gap sections\n"
            "(see the module docstring for the recipe)."
        )
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
