#!/usr/bin/env python3
"""Schema validation for ``BENCH_serve.json`` (the ``mrpf load`` report).

Structural checks only — no performance judgment (that is
``check_bench_regression.py``'s job). Fails (exit 1) when:

* a required top-level or per-route key is missing or has the wrong type,
* the per-route counts do not add up (``ok + rejected + errors ==
  requests``, route requests sum to ``completed``),
* an exercised route's latency histogram is empty, has a non-positive
  quantile, or its quantiles are not monotone (p50 <= p90 <= p99 <= p999
  and min <= p50, p999 <= max).

Usage: check_serve_schema.py <BENCH_serve.json>
"""

import json
import sys

TOP_LEVEL = {
    "bench": str,
    "jobs": int,
    "rate_rps": (int, float),
    "duration_ms": int,
    "sent": int,
    "completed": int,
    "throughput_rps": (int, float),
    "rejected": int,
    "errors": int,
    "missing_request_id": int,
    "passed": bool,
    "routes": dict,
}

ROUTE = {"requests": int, "ok": int, "rejected": int, "errors": int, "latency_ms": dict}

LATENCY = ["count", "min", "max", "mean", "p50", "p90", "p99", "p999"]


def fail(message):
    print(f"SCHEMA ERROR: {message}")
    sys.exit(1)


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        report = json.load(f)

    for key, kind in TOP_LEVEL.items():
        if key not in report:
            fail(f"missing top-level key `{key}`")
        if not isinstance(report[key], kind) or isinstance(report[key], bool) != (kind is bool):
            fail(f"`{key}` is {type(report[key]).__name__}, wanted {kind}")
    if report["bench"] != "serve":
        fail(f"bench is {report['bench']!r}, wanted 'serve'")
    if set(report["routes"]) != {"synth", "batch"}:
        fail(f"routes are {sorted(report['routes'])}, wanted ['batch', 'synth']")

    completed = 0
    for name, stats in sorted(report["routes"].items()):
        for key, kind in ROUTE.items():
            if key not in stats:
                fail(f"route {name}: missing `{key}`")
            if not isinstance(stats[key], kind):
                fail(f"route {name}: `{key}` is {type(stats[key]).__name__}")
        if stats["ok"] + stats["rejected"] + stats["errors"] != stats["requests"]:
            fail(f"route {name}: outcome counts do not sum to requests: {stats}")
        completed += stats["requests"]

        lat = stats["latency_ms"]
        for key in LATENCY:
            if key not in lat:
                fail(f"route {name}: latency_ms missing `{key}`")
        if stats["requests"] == 0:
            print(f"  route {name}: not exercised")
            continue
        if lat["count"] != stats["requests"]:
            fail(f"route {name}: histogram count {lat['count']} != requests")
        quantiles = [lat[q] for q in ("p50", "p90", "p99", "p999")]
        if any(not isinstance(q, (int, float)) or q <= 0.0 for q in quantiles):
            fail(f"route {name}: non-positive quantile in {lat}")
        ordered = [lat["min"]] + quantiles + [lat["max"]]
        if any(a > b for a, b in zip(ordered, ordered[1:])):
            fail(f"route {name}: quantiles not monotone: {ordered}")
        print(
            f"  route {name}: {stats['requests']} req, "
            f"p50 {lat['p50']:.3f} ms .. p999 {lat['p999']:.3f} ms"
        )

    if completed != report["completed"]:
        fail(f"route requests sum to {completed}, report says {report['completed']}")
    if report["sent"] < report["completed"]:
        fail(f"sent {report['sent']} < completed {report['completed']}")

    print(f"schema OK: {report['completed']} completed request(s) across 2 routes")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
