#!/usr/bin/env python3
"""Exact-rung gate: `mrpf synth --exact` over the whole 12-filter suite.

For each paper example filter (``suite:1`` .. ``suite:12``) this script
runs the supervised driver twice through the real CLI:

* a default run (greedy ladder, starts at ``mrp+cse``), and
* an exact run (``--exact --exact-node-cap N``), which seeds the
  branch-and-bound MCM solver with the greedy incumbent.

and asserts, from the ``--json`` output:

* the exact run lands on the ``exact`` rung with no degradations — a
  budget-exhausted search falls back to its greedy incumbent *inside*
  the rung, so exhaustion must never show up as a ladder failure;
* the accepted exact attempt carries the search fields (``nodes`` > 0,
  ``budget_exhausted``, ``proven_optimal``, ``lower_bound``);
* ``adders`` of the exact run is **at or below** the default run's —
  the incumbent-seeded search can never deliver a worse graph.

A small node cap keeps the job fast while still exercising the
exhaustion path on the harder filters.

Usage: check_exact_gate.py <path-to-mrpf> [<node-cap>]
"""

import json
import subprocess
import sys

SUITE = range(1, 13)
DEFAULT_NODE_CAP = 2000


def synth(mrpf, spec, extra):
    cmd = [mrpf, "synth", spec, "--json", *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    mrpf = argv[1]
    node_cap = int(argv[2]) if len(argv) > 2 else DEFAULT_NODE_CAP

    failures = []
    exhausted = 0
    for n in SUITE:
        spec = f"suite:{n}"
        base = synth(mrpf, spec, [])
        exact = synth(
            mrpf, spec, ["--exact", "--exact-node-cap", str(node_cap)]
        )

        if exact["rung"] != "exact":
            failures.append(f"{spec}: exact run landed on rung {exact['rung']}")
        if exact["degradations"]:
            failures.append(f"{spec}: exact run degraded: {exact['degradations']}")

        attempt = next(
            (a for a in exact["attempts"] if a["rung"] == "exact" and a["accepted"]),
            None,
        )
        if attempt is None:
            failures.append(f"{spec}: no accepted exact attempt in {exact['attempts']}")
            continue
        for field in ("nodes", "budget_exhausted", "proven_optimal", "lower_bound"):
            if field not in attempt:
                failures.append(f"{spec}: exact attempt lacks `{field}`")
        if attempt.get("nodes", 0) <= 0:
            failures.append(f"{spec}: exact attempt expanded no nodes")
        if attempt.get("budget_exhausted"):
            exhausted += 1

        if exact["adders"] > base["adders"]:
            failures.append(
                f"{spec}: exact rung used {exact['adders']} adders, "
                f"worse than the default run's {base['adders']}"
            )
        print(
            f"  {spec:<9} default {base['adders']:>3} adders "
            f"({base['rung']}) | exact {exact['adders']:>3} adders, "
            f"{attempt.get('nodes')} nodes"
            f"{', budget exhausted' if attempt.get('budget_exhausted') else ''}"
            f"{', proven optimal' if attempt.get('proven_optimal') else ''}"
        )

    if failures:
        print(f"\nEXACT GATE FAILED — {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"\nexact gate passed: {len(list(SUITE))} filters, node cap {node_cap}, "
        f"{exhausted} budget-exhausted run(s) all fell back to their incumbent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
