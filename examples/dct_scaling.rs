//! MRP beyond filters: §1 of the paper notes the transformation applies to
//! "any applications which can be expressed as a vector scaling operation".
//! An 8-point DCT-II computes eight inner products whose constants — the
//! sampled cosines — all multiply each incoming sample in a
//! transposed-stream realization, so the 24 distinct quantized cosine
//! constants form one multiple-constant-multiplication problem.
//!
//! Run with `cargo run --release --example dct_scaling`.

use mrpf::core::{adder_report, MrpConfig, MrpOptimizer, SeedOptimizer};

fn dct8_constants(bits: u32) -> Vec<i64> {
    // DCT-II basis: C[k][n] = cos(pi (2n+1) k / 16), k,n in 0..8.
    let scale = (1i64 << (bits - 1)) as f64;
    let mut v = Vec::new();
    for k in 0..8 {
        for n in 0..8 {
            let c = (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 16.0).cos();
            v.push((c * scale).round() as i64);
        }
    }
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 14;
    let constants = dct8_constants(bits);
    let distinct: std::collections::BTreeSet<i64> = constants
        .iter()
        .map(|&c| c.abs())
        .filter(|&c| c > 1)
        .collect();
    println!(
        "8-point DCT-II: {} matrix entries, {} distinct nontrivial magnitudes at {bits} bits",
        constants.len(),
        distinct.len()
    );

    let rep = adder_report(&constants, &MrpConfig::default())?;
    println!("\nadders to realize every DCT constant from one input:");
    println!("  simple (per-entry multiplier): {}", rep.simple);
    println!("  CSE:                           {}", rep.cse);
    println!("  MRPF:                          {}", rep.mrp);
    println!("  MRPF+CSE:                      {}", rep.mrp_cse);

    // Verify bit-exactness of the MRPF block over the DCT constants.
    let cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        ..MrpConfig::default()
    };
    let r = MrpOptimizer::new(cfg).optimize(&constants)?;
    for x in [-5i64, 1, 127] {
        for (i, &c) in constants.iter().enumerate() {
            if c != 0 {
                assert_eq!(r.graph.evaluate_term(r.outputs[i], x).unwrap(), c * x);
            }
        }
    }
    println!("\nMRPF+CSE block verified bit-exact over all 64 constants.");
    println!(
        "SEED (roots, colors) = {:?}, {} adders total",
        r.seed_size(),
        r.total_adders()
    );
    Ok(())
}
