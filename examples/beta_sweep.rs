//! Ablation of the benefit-function weight β (Eq. 1): sweep β from
//! cost-averse (interconnect-dominated technology) to coverage-greedy and
//! watch the adder count, SEED size, and color fanout move — the paper's
//! §3.3 discussion made quantitative.
//!
//! Run with `cargo run --example beta_sweep`.

use mrpf::core::{MrpConfig, MrpOptimizer};
use mrpf::filters::example_filters;
use mrpf::hwcost::{beta_for_technology, Technology};
use mrpf::numrep::{quantize, Scaling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ex = &example_filters()[7]; // 72nd-order PM low-pass
    let taps = ex.design()?;
    let coeffs = quantize(&taps, 16, Scaling::Uniform)?.values;
    println!(
        "filter: example {} ({}), {} taps",
        ex.index,
        ex.label(),
        coeffs.len()
    );
    println!();
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>12}",
        "beta", "adders", "roots", "colors", "tree height"
    );
    for i in 0..=10 {
        let beta = i as f64 / 10.0;
        let cfg = MrpConfig {
            beta,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs)?;
        let (roots, colors) = r.seed_size();
        println!(
            "{beta:>5.1} {:>8} {roots:>8} {colors:>8} {:>12}",
            r.total_adders(),
            r.stats.tree_height
        );
    }
    println!();
    for tech in [Technology::cmos025(), Technology::cmos013()] {
        println!(
            "suggested beta for {}: {:.3}",
            tech.name,
            beta_for_technology(&tech)
        );
    }
    Ok(())
}
