//! Multi-filter scenario: a three-band analysis filter bank (low / band /
//! high) whose three multiplier blocks are each synthesized with every
//! scheme, comparing total adder budgets — the "custom digital front-end"
//! use case the paper's introduction motivates.
//!
//! Run with `cargo run --example filter_bank`.

use mrpf::core::{adder_report, MrpConfig};
use mrpf::filters::{remez, FilterSpec};
use mrpf::numrep::{quantize, Scaling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bank = [
        ("low band", FilterSpec::lowpass(0.08, 0.14, 0.3, 50.0), 48),
        (
            "mid band",
            FilterSpec::bandpass(0.10, 0.16, 0.30, 0.36, 0.3, 50.0),
            64,
        ),
        ("high band", FilterSpec::highpass(0.32, 0.38, 0.3, 50.0), 48),
    ];
    let cfg = MrpConfig {
        max_depth: Some(3),
        ..MrpConfig::default()
    };
    let mut totals = (0usize, 0usize, 0usize, 0usize); // simple, cse, mrp, mrp+cse
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "band", "taps", "simple", "CSE", "MRPF", "MRPF+CSE"
    );
    for (name, spec, order) in bank {
        let taps = remez(order, &spec.to_bands())?;
        let coeffs = quantize(&taps, 14, Scaling::Uniform)?.values;
        let rep = adder_report(&coeffs, &cfg)?;
        println!(
            "{name:<10} {:>6} {:>8} {:>8} {:>8} {:>9}",
            coeffs.len(),
            rep.simple,
            rep.cse,
            rep.mrp,
            rep.mrp_cse
        );
        totals.0 += rep.simple;
        totals.1 += rep.cse;
        totals.2 += rep.mrp;
        totals.3 += rep.mrp_cse;
    }
    println!("{}", "-".repeat(52));
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "total", "", totals.0, totals.1, totals.2, totals.3
    );
    println!(
        "bank saves {:.1} % of multiplier adders vs the simple TDF bank",
        (1.0 - totals.3 as f64 / totals.0 as f64) * 100.0
    );
    Ok(())
}
