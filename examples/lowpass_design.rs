//! End-to-end filter flow: design a Parks-McClellan low-pass, quantize it,
//! transform it with MRP+CSE, and verify both the arithmetic (bit-exact
//! filtering) and the frequency response of the quantized design.
//!
//! Run with `cargo run --example lowpass_design`.

use mrpf::arch::{direct_fir, FirFilter};
use mrpf::core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrpf::cse::{cse_adder_count, simple_adder_count};
use mrpf::filters::response::measure_ripple;
use mrpf::filters::{remez, FilterSpec};
use mrpf::numrep::{quantize, Repr, Scaling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Design: 60-tap equiripple low-pass, passband to 0.10, stopband
    //    from 0.15.
    let spec = FilterSpec::lowpass(0.10, 0.15, 0.3, 55.0);
    let taps = remez(60, &spec.to_bands())?;
    let ideal = measure_ripple(&taps, &spec.to_bands(), 512);
    println!(
        "designed: {} taps, {:.1} dB stopband, {:.4} passband deviation",
        taps.len(),
        ideal.stopband_atten_db,
        ideal.passband_deviation
    );

    // 2. Quantize to 14-bit uniformly scaled integer coefficients.
    let q = quantize(&taps, 14, Scaling::Uniform)?;
    let quantized = measure_ripple(&q.reconstruct(), &spec.to_bands(), 512);
    println!(
        "quantized (W=14): {:.1} dB stopband after quantization",
        quantized.stopband_atten_db
    );

    // 3. Transform: MRP with CSE on the SEED network.
    let cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        max_depth: Some(3),
        ..MrpConfig::default()
    };
    let result = MrpOptimizer::new(cfg).optimize(&q.values)?;
    println!(
        "multiplier-block adders: simple {} | CSE {} | MRPF+CSE {}",
        simple_adder_count(&q.values, Repr::Spt),
        cse_adder_count(&q.values),
        result.total_adders()
    );
    println!(
        "SEED (roots, colors) = {:?}, tree height {}",
        result.seed_size(),
        result.stats.tree_height
    );

    // 4. Verify: run the generated architecture against the golden
    //    convolution on a noisy input.
    let filter = FirFilter::new(result.graph.clone());
    let mut seed = 7u64;
    let input: Vec<i64> = (0..256)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 44) as i64) - (1 << 19)
        })
        .collect();
    assert_eq!(filter.filter(&input), direct_fir(&q.values, &input));
    println!("architecture output matches direct convolution on 256 samples: OK");
    Ok(())
}
