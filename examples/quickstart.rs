//! Quickstart: the paper's worked 8-tap example (§3.5, Figures 2-4).
//!
//! Run with `cargo run --example quickstart`.

use mrpf::arch::FirFilter;
use mrpf::core::{MrpConfig, MrpOptimizer};
use mrpf::cse::simple_adder_count;
use mrpf::numrep::Repr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The asymmetric 8-tap FIR of §3.5. (The paper's text renders the
    // first coefficient as "7?"; 70 reproduces the published SEED
    // {70, 66, 3, 5}.)
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    println!("coefficients: {coeffs:?}");

    let result = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs)?;
    let (roots, colors) = result.seed_size();
    println!(
        "SEED: roots {:?} + colors {:?}  ->  ({roots},{colors})",
        result.seed_roots, result.seed_colors
    );
    println!(
        "adders: SEED network {} + overhead network {} = {}",
        result.stats.seed_adders,
        result.stats.overhead_adders,
        result.total_adders()
    );
    println!(
        "simple TDF baseline (one SPT multiplier per tap): {} adders",
        simple_adder_count(&coeffs, Repr::Spt)
    );
    println!("spanning-tree height: {}", result.stats.tree_height);

    // The generated multiplier block is a real architecture: run the whole
    // filter on an impulse and read the coefficients back.
    let filter = FirFilter::new(result.graph.clone());
    let mut impulse = vec![0i64; coeffs.len()];
    impulse[0] = 1;
    let response = filter.filter(&impulse);
    println!("impulse response through the adder network: {response:?}");
    assert_eq!(response, coeffs.to_vec());
    println!("bit-exact: OK");
    Ok(())
}
