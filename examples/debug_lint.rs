//! Scratch: dump the example-4 netlist to find duplicate adders.

use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::example_filters;
use mrp_numrep::{quantize, Scaling};

fn main() {
    let ex = &example_filters()[3];
    let taps = ex.design().unwrap();
    let coeffs = quantize(&taps, 12, Scaling::Uniform).unwrap().values;
    println!("coeffs: {coeffs:?}");
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    println!("seed_roots {:?} colors {:?}", r.seed_roots, r.seed_colors);
    for (i, n) in r.graph.nodes().iter().enumerate() {
        println!(
            "node {i}: value {} depth {} {:?}",
            r.graph.value(mrp_arch::NodeId::from_index(i)),
            r.graph.depth(mrp_arch::NodeId::from_index(i)),
            n
        );
    }
}
