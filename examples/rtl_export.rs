//! RTL export: generate synthesizable Verilog for an MRPF multiplier block
//! (the structure the paper pushed through Synopsys DesignWare) and print
//! the cost model's synthesized-style summary.
//!
//! Run with `cargo run --example rtl_export [output.v]`.

use mrpf::core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrpf::hwcost::{block_cost, AdderKind, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        ..MrpConfig::default()
    };
    let result = MrpOptimizer::new(cfg).optimize(&coeffs)?;
    let width = 16;
    let verilog = mrpf::arch::emit_verilog(&result.graph, "mrpf_mult_block", width);

    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &verilog)?;
            println!("wrote {} bytes of Verilog to {path}", verilog.len());
        }
        None => println!("{verilog}"),
    }

    // A pipelined variant of the same block, cut mid-depth (§4).
    if result.graph.max_depth() >= 2 {
        let cut = result.graph.max_depth() / 2;
        let pipelined =
            mrpf::arch::emit_verilog_pipelined(&result.graph, "mrpf_mult_block_pipe", width, cut);
        eprintln!(
            "// pipelined variant: cut at depth {cut}, {} registers, {} lines of Verilog",
            mrpf::arch::cut_registers(&result.graph, cut),
            pipelined.lines().count()
        );
    }

    let tech = Technology::cmos025();
    let cost = block_cost(
        result.total_adders(),
        result.graph.max_depth(),
        AdderKind::CarryLookahead,
        width + 8,
        0.25,
        100.0,
        &tech,
    );
    eprintln!(
        "// cost model ({}): {} adders, {:.0} um^2, {:.2} ns critical path, {:.3} mW @ 100 MHz",
        tech.name, cost.adders, cost.area_um2, cost.critical_path_ns, cost.dynamic_mw
    );
    Ok(())
}
