//! Pipelining through the analysis framework: optimize the paper's worked
//! 8-tap example, inspect the cached analyses, then pipeline + retime the
//! multiplier block and show the before/after delta the synthesis gate
//! reports.
//!
//! Run with `cargo run --example pipeline_analysis`.

use mrp_lint::{lint_pipelined, LintConfig};
use mrpf::analysis::{
    pipeline_and_retime, AnalysisContext, Analyzer, CriticalPath, Depth, Fanout, WidthMap,
};
use mrpf::arch::NodeId;
use mrpf::core::{MrpConfig, MrpOptimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let result = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs)?;
    let graph = result.graph;

    // One Analyzer per netlist: every analysis below is computed once and
    // memoized, however many passes ask for it.
    let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
    let depth = az.get_analysis::<Depth>();
    let fanout = az.get_analysis::<Fanout>();
    let widths = az.get_analysis::<WidthMap>();
    let cp = az.get_analysis::<CriticalPath>();

    println!(
        "multiplier block: {} nodes, depth {}, max fanout {}, min safe width {}",
        graph.len(),
        depth.max,
        fanout.max,
        widths.min_safe
    );
    let chain: Vec<String> = cp
        .path
        .iter()
        .map(|&i| format!("{}·x", graph.value(NodeId::from_index(i))))
        .collect();
    println!("critical path: {}", chain.join(" → "));

    // Pipeline to one adder per stage, then retime registers backwards to
    // drop any that the greedy cut over-provisioned.
    let (net, delta) = pipeline_and_retime(&az, 1);
    println!(
        "pipelined: latency {} cycle(s), stage depth {} (was {}), {} register(s), {} retime move(s)",
        delta.latency,
        delta.stage_depth,
        delta.combinational_depth,
        net.register_count(),
        delta.retime_moves
    );

    // The same gates the synthesis driver runs: structural lints over the
    // register placement, then latency-adjusted coefficient equivalence.
    let report = lint_pipelined(&net, &LintConfig::default());
    println!(
        "structural lint: {} error(s), {} warning(s)",
        report.error_count(),
        report.warning_count()
    );
    match net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]) {
        None => println!("latency-adjusted equivalence: bit-exact"),
        Some((label, x)) => println!("MISMATCH on output {label} at x = {x}"),
    }
    println!(
        "analyses computed once each: {}",
        az.computed_names().join(", ")
    );
    Ok(())
}
