//! MRP on an IIR filter: the paper's §1 claim that the transformation
//! applies to transposed-direct-form IIR filters, made concrete. A
//! Chebyshev low-pass is quantized to fixed point; the feed-forward and
//! feedback coefficient vectors each become an MRP multiplier block; the
//! resulting fixed-point filter is run against the floating-point design.
//!
//! Run with `cargo run --example iir_lowpass`.

use mrpf::arch::{quantize_iir, IirFixedPoint};
use mrpf::core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrpf::cse::simple_adder_count;
use mrpf::filters::iir::chebyshev1_iir;
use mrpf::numrep::Repr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = chebyshev1_iir(4, 0.18, 0.5)?;
    println!(
        "designed: order-4 Chebyshev I low-pass, stable: {}",
        design.is_stable()
    );

    let shift = 14;
    let (b, a) = quantize_iir(&design.b, &design.a, shift);
    println!("quantized (Q{shift}): b = {b:?}");
    println!("                a = {a:?}");

    // One MRP block per vector-scaling operation.
    let cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        ..MrpConfig::default()
    };
    let b_block = MrpOptimizer::new(cfg).optimize(&b)?;
    let a_block = MrpOptimizer::new(cfg).optimize(&a[1..])?;
    let simple = simple_adder_count(&b, Repr::Spt) + simple_adder_count(&a[1..], Repr::Spt);
    println!(
        "multiplier adders: simple {simple} | MRPF+CSE {} (b: {}, a: {})",
        b_block.total_adders() + a_block.total_adders(),
        b_block.total_adders(),
        a_block.total_adders()
    );

    // Run the fixed-point architecture against the float design.
    let iir = IirFixedPoint::new(b_block.graph.clone(), a_block.graph.clone(), shift);
    let mut seed = 3u64;
    let input: Vec<i64> = (0..512)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 48) as i64) - (1 << 15)
        })
        .collect();
    let y_fixed = iir.filter(&input);
    let input_f: Vec<f64> = input.iter().map(|&v| v as f64).collect();
    // Reference 1: the float model of the *quantized* coefficients —
    // isolates architecture/rounding error from quantization error.
    let scale = (1i64 << shift) as f64;
    let quantized_design = mrpf::filters::iir::IirFilter {
        b: b.iter().map(|&v| v as f64 / scale).collect(),
        a: a.iter().map(|&v| v as f64 / scale).collect(),
    };
    let y_qref = quantized_design.filter(&input_f);
    let arch_err = y_fixed
        .iter()
        .zip(&y_qref)
        .map(|(&yi, &yr)| (yi as f64 - yr).abs())
        .fold(0.0f64, f64::max);
    // Reference 2: the original float design — shows total degradation.
    let y_design = design.filter(&input_f);
    let total_err = y_fixed
        .iter()
        .zip(&y_design)
        .map(|(&yi, &yr)| (yi as f64 - yr).abs())
        .fold(0.0f64, f64::max);
    println!("max error vs quantized-coefficient model: {arch_err:.2} (architecture + rounding)");
    println!("max error vs original float design:       {total_err:.2} (incl. quantization)");
    assert!(
        arch_err < 16.0,
        "MRPF IIR architecture diverged from its own coefficient model"
    );
    println!("fixed-point MRPF IIR tracks its coefficient model: OK");
    Ok(())
}
