//! Quantization-noise study: sweep the coefficient wordlength and measure,
//! through the *actual MRPF adder network*, the output SNR against the
//! floating-point design and the stopband rejection of a real two-tone
//! signal — connecting the static adder-count trade-off of Figures 6/7 to
//! dynamic signal quality.
//!
//! Run with `cargo run --release --example quantization_noise`.

use mrpf::arch::FirFilter;
use mrpf::core::{MrpConfig, MrpOptimizer};
use mrpf::filters::{remez, FilterSpec};
use mrpf::numrep::{quantize, Scaling};
use mrpf::sim::{goertzel_db, signal, snr_db};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FilterSpec::lowpass(0.10, 0.18, 0.3, 60.0);
    let taps = remez(54, &spec.to_bands())?;
    println!("55-tap PM low-pass; sweeping coefficient wordlength\n");
    println!(
        "{:>4} {:>8} {:>12} {:>16} {:>14}",
        "W", "adders", "SNR (dB)", "stop tone (dB)", "pass tone (dB)"
    );

    let n = 8192;
    let x = signal::two_tone(n, 0.05, 8000.0, 0.30, 8000.0);
    let x_f: Vec<f64> = x.iter().map(|&v| v as f64).collect();

    for w in [6u32, 8, 10, 12, 14, 16] {
        let q = quantize(&taps, w, Scaling::Uniform)?;
        let result = MrpOptimizer::new(MrpConfig::default()).optimize(&q.values)?;
        let filter = FirFilter::new(result.graph.clone());
        let y = filter.filter(&x);

        // Float reference with the same integer gain.
        let gain: f64 = q.values.iter().map(|&v| v as f64).sum::<f64>() / taps.iter().sum::<f64>();
        let reference: Vec<f64> = (0..n)
            .map(|k| {
                let mut acc = 0.0;
                for (i, &t) in taps.iter().enumerate() {
                    if k >= i {
                        acc += t * x_f[k - i];
                    }
                }
                acc * gain
            })
            .collect();
        let snr = snr_db(&y, &reference).snr_db;
        let full_scale = 8000.0 * gain;
        let settled = &y[200..];
        println!(
            "{w:>4} {:>8} {:>12.1} {:>16.1} {:>14.1}",
            result.total_adders(),
            snr,
            goertzel_db(settled, 0.30, full_scale),
            goertzel_db(settled, 0.05, full_scale),
        );
    }
    println!("\nSNR climbs ~6 dB/bit; stopband rejection saturates at the design's");
    println!("attenuation once quantization noise drops below the ripple floor.");
    Ok(())
}
