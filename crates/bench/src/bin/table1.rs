//! Table 1: example filter specs and SEED sizes after MRP transformation.
//!
//! For each of the 12 example filters: the design spec, the filter order,
//! and the SEED set size `(roots, solution set)` under SPT and SM number
//! representations, using 16-bit **maximally scaled** coefficients and a
//! depth constraint of 3 — matching the paper's table footnote.

use mrp_bench::{print_header, quantized_example};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::{example_filters, FilterKind};
use mrp_numrep::{Repr, Scaling};

fn band_edges(kind: &FilterKind) -> (String, String) {
    match *kind {
        FilterKind::Lowpass { fp, fs } => (format!("{fp:.3}"), format!("{fs:.3}")),
        FilterKind::Highpass { fs, fp } => (format!("{fp:.3}"), format!("{fs:.3}")),
        FilterKind::Bandpass { fs1, fp1, fp2, fs2 } => {
            (format!("{fp1:.2}-{fp2:.2}"), format!("{fs1:.2}/{fs2:.2}"))
        }
        FilterKind::Bandstop { fp1, fs1, fs2, fp2 } => {
            (format!("{fp1:.2}/{fp2:.2}"), format!("{fs1:.2}-{fs2:.2}"))
        }
    }
}

fn main() {
    print_header(
        "Table 1 — example filter specs and SEED size after MRP transformation",
        "16-bit maximally scaled coefficients, depth constraint 3, beta = 0.5",
    );
    println!(
        "{:<3} {:<6} {:>11} {:>11} {:>6} {:>6} {:>6} {:>12} {:>12}",
        "ex", "type", "f_p", "f_s", "R_p", "R_s", "order", "SEED(SPT)", "SEED(SM)"
    );
    let mut cfg = MrpConfig {
        max_depth: Some(3),
        ..MrpConfig::default()
    };
    for ex in example_filters() {
        let coeffs = quantized_example(&ex, 16, Scaling::Maximal);
        cfg.repr = Repr::Spt;
        let spt = MrpOptimizer::new(cfg)
            .optimize(&coeffs)
            .expect("SPT optimization");
        cfg.repr = Repr::SignMagnitude;
        let sm = MrpOptimizer::new(cfg)
            .optimize(&coeffs)
            .expect("SM optimization");
        let (fp, fs) = band_edges(&ex.spec.kind);
        let (r1, s1) = spt.seed_size();
        let (r2, s2) = sm.seed_size();
        println!(
            "{:<3} {:<6} {:>11} {:>11} {:>6.1} {:>6.1} {:>6} {:>12} {:>12}",
            ex.index,
            ex.label(),
            fp,
            fs,
            ex.spec.rp_db,
            ex.spec.rs_db,
            ex.order,
            format!("({r1},{s1})"),
            format!("({r2},{s2})"),
        );
    }
    println!();
    println!("SEED size = (spanning-tree roots, selected color set), as in the paper.");
    println!("Paper's SPT column ranged (3,6) … (35,45) over its 12 examples.");
}
