//! Extended baseline comparison (beyond the paper's two): every scheme in
//! the repository across the Table 1 suite at one operating point —
//! simple, sequential differential (DECOR-lineage), graph MCM, CSE, MRPF,
//! MRPF+CSE.

use mrp_bench::{print_header, quantized_example};
use mrp_core::{adder_report, CoeffSet, MrpConfig};
use mrp_cse::{differential_adder_count, mcm_adder_count};
use mrp_filters::example_filters;
use mrp_numrep::{Repr, Scaling};

fn main() {
    print_header(
        "Extended baselines — adders per scheme, W = 14, uniform scaling",
        "differential = fixed-tap-order differences (no shifts); MCM = graph heuristic",
    );
    println!(
        "{:<4} {:<6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>9}",
        "ex", "type", "simple", "diff", "MCM", "CSE", "MRPF", "MRPF+CSE"
    );
    let cfg = MrpConfig::default();
    let mut totals = [0usize; 6];
    for ex in example_filters() {
        let coeffs = quantized_example(&ex, 14, Scaling::Uniform);
        let rep = adder_report(&coeffs, &cfg).expect("report");
        let diff = differential_adder_count(&coeffs, Repr::Spt);
        let primaries = CoeffSet::new(&coeffs).expect("coeffs").primaries().to_vec();
        let mcm = mcm_adder_count(&primaries, 16);
        println!(
            "{:<4} {:<6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>9}",
            ex.index,
            ex.label(),
            rep.simple,
            diff,
            mcm,
            rep.cse,
            rep.mrp,
            rep.mrp_cse
        );
        for (t, v) in totals
            .iter_mut()
            .zip([rep.simple, diff, mcm, rep.cse, rep.mrp, rep.mrp_cse])
        {
            *t += v;
        }
    }
    println!("{}", "-".repeat(64));
    println!(
        "{:<11} {:>6} {:>8} {:>8} {:>6} {:>6} {:>9}",
        "total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    println!();
    println!("MRP's two generalizations over plain differential coefficients —");
    println!("shift-inclusive differences and graph-chosen ordering — show up as");
    println!("the gap between the `diff` and `MRPF` columns.");
}
