//! Figure 7: MRPF vs simple (SPT), **maximally scaled** coefficients.
//!
//! Maximal scaling gives every tap a full-width mantissa, densifying the
//! nonzero digits; the paper reports ≈ 60 % reduction at W ∈ {8, 12} and
//! ≈ 40 % at W ∈ {16, 20}.

use mrp_bench::{evaluate_suite_on, jobs_from_args, mean, print_header, BenchReport, WORDLENGTHS};
use mrp_core::MrpConfig;
use mrp_numrep::Scaling;

fn main() {
    let start = std::time::Instant::now();
    let jobs = jobs_from_args();
    let pool = mrp_batch::ThreadPool::new(jobs);
    print_header(
        "Figure 7 — MRPF vs Simple (SPT), maximally scaled",
        "rows: example filters; columns: adder ratio MRPF/simple per wordlength",
    );
    let config = MrpConfig::default();
    let suites: Vec<_> = WORDLENGTHS
        .iter()
        .map(|&w| evaluate_suite_on(&pool, w, Scaling::Maximal, &config))
        .collect();
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); WORDLENGTHS.len()];
    println!(
        "{:<4} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "ex", "type", "W=8", "W=12", "W=16", "W=20"
    );
    for row in 0..suites[0].len() {
        let cell0 = &suites[0][row];
        print!("{:<4} {:<6}", cell0.example, cell0.label);
        for (wi, suite) in suites.iter().enumerate() {
            let r = suite[row].mrp_vs_simple();
            per_w[wi].push(r);
            print!(" {r:>8.3}");
        }
        println!();
    }
    println!("{}", "-".repeat(72));
    print!("{:<11}", "average");
    for ratios in &per_w {
        print!(" {:>8.3}", mean(ratios));
    }
    println!();
    let small_w: Vec<f64> = per_w[0].iter().chain(&per_w[1]).copied().collect();
    let large_w: Vec<f64> = per_w[2].iter().chain(&per_w[3]).copied().collect();
    println!(
        "reduction at W∈{{8,12}}: {:.1} %   [paper: ~60 %]",
        (1.0 - mean(&small_w)) * 100.0
    );
    println!(
        "reduction at W∈{{16,20}}: {:.1} %   [paper: ~40 %]",
        (1.0 - mean(&large_w)) * 100.0
    );
    println!("{}", mrp_bench::rung_banner(suites.iter().flatten()));

    let mut report = BenchReport::new("fig7");
    report
        .int("cells", suites.iter().map(Vec::len).sum::<usize>() as u64)
        .float_map(
            "avg_ratio_by_w",
            &[
                ("w8", mean(&per_w[0])),
                ("w12", mean(&per_w[1])),
                ("w16", mean(&per_w[2])),
                ("w20", mean(&per_w[3])),
            ],
        )
        .float("reduction_pct_w8_w12", (1.0 - mean(&small_w)) * 100.0)
        .float("reduction_pct_w16_w20", (1.0 - mean(&large_w)) * 100.0)
        .int("jobs", jobs as u64)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}
