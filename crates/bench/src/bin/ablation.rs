//! Ablation studies of the MRP design knobs, quantifying claims the paper
//! makes qualitatively:
//!
//! 1. **Pipelining (§4)** — registers needed for the cheapest balanced
//!    pipeline cut, MRPF vs CSE: the MRP structure's SEED/overhead boundary
//!    should cut far cheaper than the irregular CSE network.
//! 2. **Depth constraint (Table 1 footnote)** — SEED size and adders vs
//!    the spanning-tree depth bound.
//! 3. **Maximum SID shift `W` (§3.1)** — solution quality vs the shift
//!    range explored.
//! 4. **β (Eq. 1, §3.3)** — adders and sharing (fanout) vs the benefit
//!    weight.

use mrp_arch::best_balanced_cut;
use mrp_bench::{print_header, quantized_example};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_cse::hartley_cse;
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn main() {
    let suite = example_filters();
    let ex = &suite[8]; // 90th-order LS band-stop
    let coeffs = quantized_example(ex, 16, Scaling::Uniform);
    println!(
        "workload: example {} ({}), {} taps, W = 16, uniform scaling",
        ex.index,
        ex.label(),
        coeffs.len()
    );
    println!();

    // 1. Pipelining.
    print_header(
        "Ablation 1 — pipeline cut cost (registers), MRPF vs CSE",
        "cheapest balanced single cut of the multiplier block (§4)",
    );
    let mrp = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .expect("mrp");
    let primaries: Vec<i64> = {
        let set = mrp_core::CoeffSet::new(&coeffs).expect("coeffs");
        set.primaries().to_vec()
    };
    let cse = hartley_cse(&primaries);
    let (mut cse_graph, outs) = cse.build_graph().expect("cse graph");
    for (i, (&t, &c)) in outs.iter().zip(&primaries).enumerate() {
        cse_graph.push_output(format!("c{i}"), t, c);
    }
    for (name, graph) in [("MRPF", &mrp.graph), ("CSE", &cse_graph)] {
        match best_balanced_cut(graph) {
            Some((depth, regs)) => println!(
                "{name:<6} depth {:>2}, balanced cut at {depth}: {regs} registers ({} adders)",
                graph.max_depth(),
                graph.adder_count()
            ),
            None => println!("{name:<6} too shallow to pipeline"),
        }
    }
    println!();

    // 2. Depth constraint.
    print_header(
        "Ablation 2 — depth constraint vs SEED size and adders",
        "Table 1 uses depth 3; unconstrained trees trade delay for SEED",
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "depth", "adders", "roots", "colors", "height"
    );
    for depth in [1u32, 2, 3, 4, 6, u32::MAX] {
        let cfg = MrpConfig {
            max_depth: Some(depth),
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).expect("mrp");
        let label = if depth == u32::MAX {
            "inf".to_string()
        } else {
            depth.to_string()
        };
        let (roots, colors) = r.seed_size();
        println!(
            "{label:>6} {:>8} {roots:>8} {colors:>8} {:>8}",
            r.total_adders(),
            r.stats.tree_height
        );
    }
    println!();

    // 3. Max SID shift.
    print_header(
        "Ablation 3 — maximum SID shift W vs solution quality",
        "larger W widens the edge space (and the search cost)",
    );
    println!("{:>6} {:>8} {:>8}", "W", "adders", "colors");
    for w in [2u32, 4, 8, 12, 17, 22] {
        let cfg = MrpConfig {
            max_shift: Some(w),
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).expect("mrp");
        println!("{w:>6} {:>8} {:>8}", r.total_adders(), r.seed_colors.len());
    }
    println!();

    // 4. Beta.
    print_header(
        "Ablation 4 — benefit weight beta vs adders and SEED",
        "beta < 0.5 de-emphasizes sharing (interconnect-averse, §3.3)",
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8}",
        "beta", "adders", "roots", "colors"
    );
    for i in 0..=10 {
        let beta = i as f64 / 10.0;
        let cfg = MrpConfig {
            beta,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).expect("mrp");
        let (roots, colors) = r.seed_size();
        println!("{beta:>6.1} {:>8} {roots:>8} {colors:>8}", r.total_adders());
    }
}
