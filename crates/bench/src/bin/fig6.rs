//! Figure 6: MRPF vs simple (SPT), **uniformly scaled** coefficients.
//!
//! For each of the 12 example filters and W ∈ {8, 12, 16, 20}, prints the
//! MRPF multiplier-block adder count normalized by the simple
//! (per-coefficient SPT) implementation. The paper reports ≈ 60 % average
//! reduction (ratio ≈ 0.4) and ≈ 0.3 adders per tap at W = 16 for filters
//! above 20 taps.

use mrp_bench::{evaluate_suite_on, jobs_from_args, mean, print_header, BenchReport, WORDLENGTHS};
use mrp_core::MrpConfig;
use mrp_numrep::Scaling;

fn main() {
    let start = std::time::Instant::now();
    let jobs = jobs_from_args();
    let pool = mrp_batch::ThreadPool::new(jobs);
    print_header(
        "Figure 6 — MRPF vs Simple (SPT), uniformly scaled",
        "rows: example filters; columns: adder ratio MRPF/simple per wordlength",
    );
    let config = MrpConfig::default();
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); WORDLENGTHS.len()];
    println!(
        "{:<4} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "ex", "type", "W=8", "W=12", "W=16", "W=20"
    );
    let suites: Vec<_> = WORDLENGTHS
        .iter()
        .map(|&w| evaluate_suite_on(&pool, w, Scaling::Uniform, &config))
        .collect();
    for row in 0..suites[0].len() {
        let cell0 = &suites[0][row];
        print!("{:<4} {:<6}", cell0.example, cell0.label);
        for (wi, suite) in suites.iter().enumerate() {
            let r = suite[row].mrp_vs_simple();
            per_w[wi].push(r);
            print!(" {r:>8.3}");
        }
        println!();
    }
    println!("{}", "-".repeat(72));
    print!("{:<11}", "average");
    for ratios in &per_w {
        print!(" {:>8.3}", mean(ratios));
    }
    println!();
    // Adders-per-tap headline at W = 16 for the larger filters.
    let w16 = &suites[2];
    let big: Vec<f64> = w16
        .iter()
        .filter(|c| c.coeffs.len() > 20)
        .map(|c| c.report.mrp as f64 / c.coeffs.len() as f64)
        .collect();
    println!(
        "adders per tap (W=16, >20 taps): {:.3}   [paper: ~0.3]",
        mean(&big)
    );
    let all: Vec<f64> = per_w.iter().flatten().copied().collect();
    println!(
        "overall average reduction vs simple: {:.1} %   [paper: ~60 %]",
        (1.0 - mean(&all)) * 100.0
    );
    println!("{}", mrp_bench::rung_banner(suites.iter().flatten()));

    let mut report = BenchReport::new("fig6");
    report
        .int("cells", suites.iter().map(Vec::len).sum::<usize>() as u64)
        .float_map(
            "avg_ratio_by_w",
            &[
                ("w8", mean(&per_w[0])),
                ("w12", mean(&per_w[1])),
                ("w16", mean(&per_w[2])),
                ("w20", mean(&per_w[3])),
            ],
        )
        .float("adders_per_tap_w16", mean(&big))
        .float("overall_reduction_pct", (1.0 - mean(&all)) * 100.0)
        .int("jobs", jobs as u64)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}
