//! Headline summary: every paper claim in one run, including the
//! synthesized-cost view through the CLA adder model (the paper's "7 % and
//! 16 % improvement ... using carry lookahead adder ... in .25 µ").

use mrp_analysis::{pipeline_and_retime, AnalysisContext, Analyzer};
use mrp_bench::{
    evaluate_suite_on, jobs_from_args, mean, print_header, ratio, BenchReport, WORDLENGTHS,
};
use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_exact::{solve_mcm, McmConfig, McmProblem};
use mrp_hwcost::{block_cost, AdderKind, Technology};
use mrp_numrep::Scaling;

/// Wordlength for the optimality-gap sweep (W=12 uniform, the suite's
/// headline quantization).
const GAP_WORDLENGTH: u32 = 12;
/// Node cap per filter for the gap sweep's branch-and-bound: small
/// enough that the sweep stays a few seconds, large enough to prove
/// optimality on the small suite filters. Budget-exhausted entries
/// report the incumbent (greedy) count, so the gap is an upper bound.
const GAP_NODE_CAP: usize = 4_000;

/// One row of the optimality-gap table.
struct GapRow {
    example: usize,
    label: String,
    taps: usize,
    greedy_adders: usize,
    exact_adders: usize,
    lower_bound: usize,
    gap_pct: f64,
    nodes: usize,
    budget_exhausted: bool,
    proven_optimal: bool,
}

/// Greedy MRP+CSE adder count vs the `mrp-exact` branch-and-bound
/// (seeded with greedy as incumbent) for one paper filter.
fn gap_row(filter: &mrp_filters::ExampleFilter, config: &MrpConfig) -> GapRow {
    let taps = filter.design().expect("paper filter designs");
    let coeffs = mrp_numrep::quantize(&taps, GAP_WORDLENGTH, Scaling::Uniform)
        .expect("paper filter quantizes")
        .values;
    let greedy_cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        ..*config
    };
    let greedy = MrpOptimizer::new(greedy_cfg)
        .optimize(&coeffs)
        .expect("paper filter synthesizes")
        .graph;
    let greedy_adders = greedy.adder_count();
    let problem = McmProblem::from_coeffs(&coeffs).expect("quantized taps are in range");
    let out = solve_mcm(
        &problem,
        &McmConfig {
            node_cap: GAP_NODE_CAP,
            incumbent: Some(greedy_adders),
            ..McmConfig::default()
        },
    );
    let exact_adders = out.best_cost(Some(greedy_adders)).unwrap_or(greedy_adders);
    let gap_pct = if greedy_adders == 0 {
        0.0
    } else {
        100.0 * (greedy_adders - exact_adders) as f64 / greedy_adders as f64
    };
    GapRow {
        example: filter.index,
        label: filter.label(),
        taps: coeffs.len(),
        greedy_adders,
        exact_adders,
        lower_bound: out.lower_bound,
        gap_pct,
        nodes: out.nodes_expanded,
        budget_exhausted: out.budget_exhausted,
        proven_optimal: out.proven_optimal,
    }
}

fn main() {
    let start = std::time::Instant::now();
    let jobs = jobs_from_args();
    let pool = mrp_batch::ThreadPool::new(jobs);
    let config = MrpConfig::default();
    let tech = Technology::cmos025();
    print_header(
        "Summary — every headline claim of the MRPF paper",
        &format!(
            "12 example filters x W in {{8,12,16,20}} x {{uniform, maximal}} scaling (--jobs {jobs})"
        ),
    );

    let mut mrp_vs_simple_uni = Vec::new();
    let mut mrp_vs_simple_max = Vec::new();
    let mut mrpcse_vs_cse = Vec::new();
    let mut mrpcse_vs_simple_uni = Vec::new();
    let mut mrpcse_vs_simple_max = Vec::new();
    let mut area_mrpcse_vs_simple = Vec::new();
    let mut area_mrpcse_vs_cse = Vec::new();
    let mut adders_per_tap_w16 = Vec::new();
    let mut all_cells: Vec<mrp_bench::Cell> = Vec::new();

    for scaling in [Scaling::Uniform, Scaling::Maximal] {
        for &w in &WORDLENGTHS {
            let cells = evaluate_suite_on(&pool, w, scaling, &config);
            for c in &cells {
                let r_simple = ratio(c.report.mrp, c.report.simple);
                let r_cse = ratio(c.report.mrp_cse, c.report.cse);
                let r_comb = ratio(c.report.mrp_cse, c.report.simple);
                match scaling {
                    Scaling::Uniform => {
                        mrp_vs_simple_uni.push(r_simple);
                        mrpcse_vs_simple_uni.push(r_comb);
                    }
                    Scaling::Maximal => {
                        mrp_vs_simple_max.push(r_simple);
                        mrpcse_vs_simple_max.push(r_comb);
                    }
                }
                mrpcse_vs_cse.push(r_cse);
                // Synthesized view: CLA-model area at datapath width
                // W + 8 guard bits.
                let width = w + 8;
                let area = |adders: usize| {
                    block_cost(
                        adders,
                        4,
                        AdderKind::CarryLookahead,
                        width,
                        0.25,
                        100.0,
                        &tech,
                    )
                    .area_um2
                };
                area_mrpcse_vs_simple.push(ratio(
                    area(c.report.mrp_cse) as usize,
                    area(c.report.simple).max(1.0) as usize,
                ));
                area_mrpcse_vs_cse.push(ratio(
                    area(c.report.mrp_cse) as usize,
                    area(c.report.cse).max(1.0) as usize,
                ));
                if w == 16 && scaling == Scaling::Uniform && c.coeffs.len() > 20 {
                    adders_per_tap_w16.push(c.report.mrp as f64 / c.coeffs.len() as f64);
                }
            }
            all_cells.extend(cells);
        }
    }

    // Pipelining view: critical-path reduction from one-adder-per-stage
    // pipelining plus retiming, over the 12-filter suite at W=12 uniform.
    let mut path_reduction = Vec::new();
    let mut pipe_latency = Vec::new();
    let mut pipe_registers = Vec::new();
    for filter in mrp_filters::example_filters() {
        let taps = filter.design().expect("paper filter designs");
        let coeffs = mrp_numrep::quantize(&taps, 12, Scaling::Uniform)
            .expect("paper filter quantizes")
            .values;
        let graph = MrpOptimizer::new(config)
            .optimize(&coeffs)
            .expect("paper filter synthesizes")
            .graph;
        let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
        let (net, delta) = pipeline_and_retime(&az, 1);
        if delta.combinational_depth > 0 {
            path_reduction
                .push((1.0 - delta.stage_depth as f64 / delta.combinational_depth as f64) * 100.0);
        }
        pipe_latency.push(delta.latency as f64);
        pipe_registers.push(net.register_count() as f64);
    }

    let pct = |ratios: &[f64]| (1.0 - mean(ratios)) * 100.0;
    println!("claim                                         measured      paper");
    println!(
        "MRPF vs simple, uniform scaling            {:>8.1} %      ~60 %",
        pct(&mrp_vs_simple_uni)
    );
    println!(
        "MRPF vs simple, maximal scaling            {:>8.1} %      40-60 %",
        pct(&mrp_vs_simple_max)
    );
    println!(
        "MRPF+CSE vs CSE (all cells)                {:>8.1} %      15-17 %",
        pct(&mrpcse_vs_cse)
    );
    println!(
        "MRPF+CSE vs simple, uniform                {:>8.1} %      66 %",
        pct(&mrpcse_vs_simple_uni)
    );
    println!(
        "MRPF+CSE vs simple, maximal                {:>8.1} %      74 %",
        pct(&mrpcse_vs_simple_max)
    );
    println!(
        "adders/tap, W=16 uniform, >20 taps         {:>8.3}        ~0.3",
        mean(&adders_per_tap_w16)
    );
    println!(
        "CLA-model area, MRPF+CSE vs simple         {:>8.1} %      ~70 % (7 % claim is vs adder-count-matched netlists)",
        pct(&area_mrpcse_vs_simple)
    );
    println!(
        "CLA-model area, MRPF+CSE vs CSE            {:>8.1} %      ~16 %",
        pct(&area_mrpcse_vs_cse)
    );
    println!(
        "critical path cut by 1-adder pipelining    {:>8.1} %      (latency {:.1} cycles, {:.1} regs mean)",
        mean(&path_reduction),
        mean(&pipe_latency),
        mean(&pipe_registers)
    );
    println!("{}", mrp_bench::rung_banner(&all_cells));

    // Optimality-gap view: how far the greedy MRP+CSE adder counts sit
    // from the exact branch-and-bound (mrp-exact) under a fixed node cap,
    // over the 12-filter suite at W=12 uniform. See docs/optimal.md.
    let gap_jobs: Vec<_> = mrp_filters::example_filters()
        .into_iter()
        .map(|ex| move || gap_row(&ex, &config))
        .collect();
    let gap_rows: Vec<GapRow> = pool.run_indexed(gap_jobs).into_iter().flatten().collect();
    assert_eq!(gap_rows.len(), 12, "every suite filter produces a gap row");
    println!();
    println!(
        "optimality gap (W={GAP_WORDLENGTH} uniform, node cap {GAP_NODE_CAP}; gap = greedy vs exact-or-incumbent)"
    );
    println!("ex  label   taps  greedy  exact  lower  gap%   nodes  status");
    for r in &gap_rows {
        println!(
            "{:>2}  {:<6} {:>5} {:>7} {:>6} {:>6} {:>5.1} {:>7}  {}",
            r.example,
            r.label,
            r.taps,
            r.greedy_adders,
            r.exact_adders,
            r.lower_bound,
            r.gap_pct,
            r.nodes,
            if r.proven_optimal {
                "proven optimal"
            } else if r.budget_exhausted {
                "budget exhausted"
            } else {
                "incomplete"
            }
        );
    }
    let gap_pcts: Vec<f64> = gap_rows.iter().map(|r| r.gap_pct).collect();
    let proven = gap_rows.iter().filter(|r| r.proven_optimal).count();
    println!(
        "mean gap {:.2} %, max gap {:.2} %, {proven}/12 proven optimal",
        mean(&gap_pcts),
        gap_pcts.iter().cloned().fold(0.0f64, f64::max),
    );

    // Machine-readable trajectory point: the same headline numbers, one
    // JSON object per run, written at the repo root.
    let degraded = all_cells
        .iter()
        .filter(|c| c.rung != mrp_resilience::Rung::MrpCse.name())
        .count() as u64;
    let mut report = BenchReport::new("summary");
    report
        .int("cells", all_cells.len() as u64)
        .int("degraded_cells", degraded)
        .float_map(
            "reduction_pct",
            &[
                ("mrp_vs_simple_uniform", pct(&mrp_vs_simple_uni)),
                ("mrp_vs_simple_maximal", pct(&mrp_vs_simple_max)),
                ("mrpcse_vs_cse", pct(&mrpcse_vs_cse)),
                ("mrpcse_vs_simple_uniform", pct(&mrpcse_vs_simple_uni)),
                ("mrpcse_vs_simple_maximal", pct(&mrpcse_vs_simple_max)),
                ("area_mrpcse_vs_simple", pct(&area_mrpcse_vs_simple)),
                ("area_mrpcse_vs_cse", pct(&area_mrpcse_vs_cse)),
            ],
        )
        .float_map(
            "pipeline",
            &[
                ("critical_path_reduction_pct", mean(&path_reduction)),
                ("mean_latency_cycles", mean(&pipe_latency)),
                ("mean_registers", mean(&pipe_registers)),
            ],
        )
        .float("adders_per_tap_w16", mean(&adders_per_tap_w16))
        .float_map(
            "gap",
            &[
                ("mean_gap_pct", mean(&gap_pcts)),
                (
                    "max_gap_pct",
                    gap_pcts.iter().cloned().fold(0.0f64, f64::max),
                ),
                ("proven_optimal_filters", proven as f64),
                ("filters", gap_rows.len() as f64),
                ("wordlength", f64::from(GAP_WORDLENGTH)),
                ("node_cap", GAP_NODE_CAP as f64),
            ],
        )
        .raw_field(
            "optimality_gap",
            format!(
                "[{}]",
                gap_rows
                    .iter()
                    .map(|r| format!(
                        "{{\"example\":{},\"label\":\"{}\",\"taps\":{},\"greedy_adders\":{},\
                         \"exact_adders\":{},\"lower_bound\":{},\"gap_pct\":{:.4},\"nodes\":{},\
                         \"budget_exhausted\":{},\"proven_optimal\":{}}}",
                        r.example,
                        r.label,
                        r.taps,
                        r.greedy_adders,
                        r.exact_adders,
                        r.lower_bound,
                        r.gap_pct,
                        r.nodes,
                        r.budget_exhausted,
                        r.proven_optimal
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .int("jobs", jobs as u64)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}
