//! Headline summary: every paper claim in one run, including the
//! synthesized-cost view through the CLA adder model (the paper's "7 % and
//! 16 % improvement ... using carry lookahead adder ... in .25 µ").

use mrp_analysis::{pipeline_and_retime, AnalysisContext, Analyzer};
use mrp_bench::{
    evaluate_suite_on, jobs_from_args, mean, print_header, ratio, BenchReport, WORDLENGTHS,
};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_hwcost::{block_cost, AdderKind, Technology};
use mrp_numrep::Scaling;

fn main() {
    let start = std::time::Instant::now();
    let jobs = jobs_from_args();
    let pool = mrp_batch::ThreadPool::new(jobs);
    let config = MrpConfig::default();
    let tech = Technology::cmos025();
    print_header(
        "Summary — every headline claim of the MRPF paper",
        &format!(
            "12 example filters x W in {{8,12,16,20}} x {{uniform, maximal}} scaling (--jobs {jobs})"
        ),
    );

    let mut mrp_vs_simple_uni = Vec::new();
    let mut mrp_vs_simple_max = Vec::new();
    let mut mrpcse_vs_cse = Vec::new();
    let mut mrpcse_vs_simple_uni = Vec::new();
    let mut mrpcse_vs_simple_max = Vec::new();
    let mut area_mrpcse_vs_simple = Vec::new();
    let mut area_mrpcse_vs_cse = Vec::new();
    let mut adders_per_tap_w16 = Vec::new();
    let mut all_cells: Vec<mrp_bench::Cell> = Vec::new();

    for scaling in [Scaling::Uniform, Scaling::Maximal] {
        for &w in &WORDLENGTHS {
            let cells = evaluate_suite_on(&pool, w, scaling, &config);
            for c in &cells {
                let r_simple = ratio(c.report.mrp, c.report.simple);
                let r_cse = ratio(c.report.mrp_cse, c.report.cse);
                let r_comb = ratio(c.report.mrp_cse, c.report.simple);
                match scaling {
                    Scaling::Uniform => {
                        mrp_vs_simple_uni.push(r_simple);
                        mrpcse_vs_simple_uni.push(r_comb);
                    }
                    Scaling::Maximal => {
                        mrp_vs_simple_max.push(r_simple);
                        mrpcse_vs_simple_max.push(r_comb);
                    }
                }
                mrpcse_vs_cse.push(r_cse);
                // Synthesized view: CLA-model area at datapath width
                // W + 8 guard bits.
                let width = w + 8;
                let area = |adders: usize| {
                    block_cost(
                        adders,
                        4,
                        AdderKind::CarryLookahead,
                        width,
                        0.25,
                        100.0,
                        &tech,
                    )
                    .area_um2
                };
                area_mrpcse_vs_simple.push(ratio(
                    area(c.report.mrp_cse) as usize,
                    area(c.report.simple).max(1.0) as usize,
                ));
                area_mrpcse_vs_cse.push(ratio(
                    area(c.report.mrp_cse) as usize,
                    area(c.report.cse).max(1.0) as usize,
                ));
                if w == 16 && scaling == Scaling::Uniform && c.coeffs.len() > 20 {
                    adders_per_tap_w16.push(c.report.mrp as f64 / c.coeffs.len() as f64);
                }
            }
            all_cells.extend(cells);
        }
    }

    // Pipelining view: critical-path reduction from one-adder-per-stage
    // pipelining plus retiming, over the 12-filter suite at W=12 uniform.
    let mut path_reduction = Vec::new();
    let mut pipe_latency = Vec::new();
    let mut pipe_registers = Vec::new();
    for filter in mrp_filters::example_filters() {
        let taps = filter.design().expect("paper filter designs");
        let coeffs = mrp_numrep::quantize(&taps, 12, Scaling::Uniform)
            .expect("paper filter quantizes")
            .values;
        let graph = MrpOptimizer::new(config)
            .optimize(&coeffs)
            .expect("paper filter synthesizes")
            .graph;
        let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
        let (net, delta) = pipeline_and_retime(&az, 1);
        if delta.combinational_depth > 0 {
            path_reduction
                .push((1.0 - delta.stage_depth as f64 / delta.combinational_depth as f64) * 100.0);
        }
        pipe_latency.push(delta.latency as f64);
        pipe_registers.push(net.register_count() as f64);
    }

    let pct = |ratios: &[f64]| (1.0 - mean(ratios)) * 100.0;
    println!("claim                                         measured      paper");
    println!(
        "MRPF vs simple, uniform scaling            {:>8.1} %      ~60 %",
        pct(&mrp_vs_simple_uni)
    );
    println!(
        "MRPF vs simple, maximal scaling            {:>8.1} %      40-60 %",
        pct(&mrp_vs_simple_max)
    );
    println!(
        "MRPF+CSE vs CSE (all cells)                {:>8.1} %      15-17 %",
        pct(&mrpcse_vs_cse)
    );
    println!(
        "MRPF+CSE vs simple, uniform                {:>8.1} %      66 %",
        pct(&mrpcse_vs_simple_uni)
    );
    println!(
        "MRPF+CSE vs simple, maximal                {:>8.1} %      74 %",
        pct(&mrpcse_vs_simple_max)
    );
    println!(
        "adders/tap, W=16 uniform, >20 taps         {:>8.3}        ~0.3",
        mean(&adders_per_tap_w16)
    );
    println!(
        "CLA-model area, MRPF+CSE vs simple         {:>8.1} %      ~70 % (7 % claim is vs adder-count-matched netlists)",
        pct(&area_mrpcse_vs_simple)
    );
    println!(
        "CLA-model area, MRPF+CSE vs CSE            {:>8.1} %      ~16 %",
        pct(&area_mrpcse_vs_cse)
    );
    println!(
        "critical path cut by 1-adder pipelining    {:>8.1} %      (latency {:.1} cycles, {:.1} regs mean)",
        mean(&path_reduction),
        mean(&pipe_latency),
        mean(&pipe_registers)
    );
    println!("{}", mrp_bench::rung_banner(&all_cells));

    // Machine-readable trajectory point: the same headline numbers, one
    // JSON object per run, written at the repo root.
    let degraded = all_cells
        .iter()
        .filter(|c| c.rung != mrp_resilience::Rung::MrpCse.name())
        .count() as u64;
    let mut report = BenchReport::new("summary");
    report
        .int("cells", all_cells.len() as u64)
        .int("degraded_cells", degraded)
        .float_map(
            "reduction_pct",
            &[
                ("mrp_vs_simple_uniform", pct(&mrp_vs_simple_uni)),
                ("mrp_vs_simple_maximal", pct(&mrp_vs_simple_max)),
                ("mrpcse_vs_cse", pct(&mrpcse_vs_cse)),
                ("mrpcse_vs_simple_uniform", pct(&mrpcse_vs_simple_uni)),
                ("mrpcse_vs_simple_maximal", pct(&mrpcse_vs_simple_max)),
                ("area_mrpcse_vs_simple", pct(&area_mrpcse_vs_simple)),
                ("area_mrpcse_vs_cse", pct(&area_mrpcse_vs_cse)),
            ],
        )
        .float_map(
            "pipeline",
            &[
                ("critical_path_reduction_pct", mean(&path_reduction)),
                ("mean_latency_cycles", mean(&pipe_latency)),
                ("mean_registers", mean(&pipe_registers)),
            ],
        )
        .float("adders_per_tap_w16", mean(&adders_per_tap_w16))
        .int("jobs", jobs as u64)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}
