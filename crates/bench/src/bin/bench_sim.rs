//! Simulation throughput: tree-walk vs compiled linear IR vs emitted-RTL
//! re-simulation, over the 12-filter paper suite at W=12 uniform.
//!
//! Three legs per filter, every leg cross-checked for bit equality on a
//! shared prefix before its rate is reported (a fast-but-wrong simulator
//! must never publish a number):
//!
//! * **tree-walk** — [`mrp_arch::FirFilter::filter`]: per-sample
//!   structural evaluation of the adder network, the differential oracle.
//! * **compiled** — [`mrp_exec::compile_fir`] + [`mrp_exec::Machine`]:
//!   the linear-IR interpreter, swept over the lane-width axis.
//! * **vsim** — the emitted Verilog re-parsed by `mrp-vsim` and evaluated
//!   per sample with a software TDF fold, the slowest-but-closest-to-RTL
//!   reference.
//!
//! Writes `BENCH_sim.json` (see `ci/check_sim_schema.py`); the sim-perf CI
//! job gates `speedup_compiled_vs_tree` against `ci/bench_baseline.json`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use mrp_bench::{print_header, quantized_example, BenchReport};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_numrep::Scaling;

const WORDLENGTH: u32 = 12;
const TREE_SAMPLES: usize = 50_000;
const VSIM_SAMPLES: usize = 4_000;
const COMPILED_SAMPLES: usize = 500_000;
const LANES: [usize; 4] = [8, 16, 32, 64];
/// Input amplitude: products stay within the 40-bit RTL datapath and far
/// from the tree-walk's checked-overflow panics.
const AMP: i64 = 1 << 10;

fn main() {
    let start = Instant::now();
    print_header(
        "sim — tree-walk vs compiled linear IR vs emitted-RTL simulation",
        &format!(
            "12 example filters at W={WORDLENGTH} uniform; {TREE_SAMPLES} tree / \
             {VSIM_SAMPLES} vsim / {COMPILED_SAMPLES} compiled samples, lanes {LANES:?}"
        ),
    );

    let config = MrpConfig::default();
    let mut tree_elapsed = Duration::ZERO;
    let mut tree_samples = 0u64;
    let mut vsim_elapsed = Duration::ZERO;
    let mut vsim_samples = 0u64;
    let mut lane_elapsed = [Duration::ZERO; LANES.len()];
    let mut lane_samples = [0u64; LANES.len()];
    let mut checks = 0u64;
    let mut insts_total = 0u64;

    println!(
        "{:<10} {:>5} {:>6} {:>14} {:>14} {:>14}",
        "filter", "taps", "insts", "tree smp/s", "vsim smp/s", "compiled smp/s"
    );
    for ex in mrp_filters::example_filters() {
        let coeffs = quantized_example(&ex, WORDLENGTH, Scaling::Uniform);
        let graph = MrpOptimizer::new(config)
            .optimize(&coeffs)
            .unwrap_or_else(|e| panic!("example {} failed to optimize: {e}", ex.index))
            .graph;
        let filter = mrp_arch::FirFilter::new(graph);
        let program = mrp_exec::compile_fir(&filter);
        insts_total += program.insts.len() as u64;
        let input = mrp_sim::signal::white_noise(COMPILED_SAMPLES, AMP, ex.index as u64);

        // Tree-walk oracle leg.
        let t = Instant::now();
        let want = black_box(filter.filter(&input[..TREE_SAMPLES]));
        let ex_tree = t.elapsed();
        tree_elapsed += ex_tree;
        tree_samples += TREE_SAMPLES as u64;

        // Emitted-RTL leg: parse the generated Verilog back and evaluate
        // it per sample, folding the tap products through a software TDF
        // chain exactly like the tree-walk does.
        let src = mrp_arch::emit_verilog(filter.block(), &format!("ex{}", ex.index), 40);
        let module = mrp_vsim::Module::parse(&src)
            .unwrap_or_else(|e| panic!("example {} emitted unparseable RTL: {e}", ex.index));
        let taps = filter.tap_count();
        let mut state = vec![0i64; taps + 1];
        let mut vsim_out = Vec::with_capacity(VSIM_SAMPLES);
        let t = Instant::now();
        for &x in &input[..VSIM_SAMPLES] {
            let products = module
                .evaluate(x)
                .unwrap_or_else(|e| panic!("example {} RTL evaluation failed: {e}", ex.index));
            // Ascending k: slot k is overwritten before slot k+1 is read,
            // so state[k+1] still holds the previous cycle's value.
            for k in 0..taps {
                state[k] = products[k] + state[k + 1];
            }
            vsim_out.push(state[0]);
        }
        let ex_vsim = t.elapsed();
        vsim_elapsed += ex_vsim;
        vsim_samples += VSIM_SAMPLES as u64;
        assert_eq!(
            vsim_out,
            want[..VSIM_SAMPLES],
            "example {}: emitted-RTL simulation diverged from the tree-walk",
            ex.index
        );
        checks += 1;

        // Compiled leg, across the lane axis.
        let mut ex_best = 0.0f64;
        for (li, &lanes) in LANES.iter().enumerate() {
            let mut machine = mrp_exec::Machine::with_lanes(program.clone(), lanes);
            let t = Instant::now();
            let y = machine.run_single(black_box(&input));
            let dt = t.elapsed();
            lane_elapsed[li] += dt;
            lane_samples[li] += COMPILED_SAMPLES as u64;
            assert_eq!(
                y[..TREE_SAMPLES],
                want,
                "example {}: compiled execution diverged from the tree-walk at {lanes} lanes",
                ex.index
            );
            checks += 1;
            ex_best = ex_best.max(rate(COMPILED_SAMPLES as u64, dt));
            black_box(y);
        }
        println!(
            "{:<10} {:>5} {:>6} {:>14.0} {:>14.0} {:>14.0}",
            format!("ex{} {}", ex.index, ex.label()),
            taps,
            program.insts.len(),
            rate(TREE_SAMPLES as u64, ex_tree),
            rate(VSIM_SAMPLES as u64, ex_vsim),
            ex_best,
        );
    }

    let tree_rate = rate(tree_samples, tree_elapsed);
    let vsim_rate = rate(vsim_samples, vsim_elapsed);
    let lane_rates: Vec<f64> = LANES
        .iter()
        .enumerate()
        .map(|(li, _)| rate(lane_samples[li], lane_elapsed[li]))
        .collect();
    let compiled_rate = lane_rates.iter().cloned().fold(0.0f64, f64::max);
    let speedup_tree = compiled_rate / tree_rate.max(1e-9);
    let speedup_vsim = compiled_rate / vsim_rate.max(1e-9);

    println!("\nscheme        samples/sec      speedup vs tree-walk");
    println!("tree-walk   {tree_rate:>13.0}      1.00x");
    println!(
        "vsim        {vsim_rate:>13.0}      {:.2}x",
        vsim_rate / tree_rate.max(1e-9)
    );
    for (li, &lanes) in LANES.iter().enumerate() {
        println!(
            "compiled/{lanes:<2} {:>13.0}      {:.2}x",
            lane_rates[li],
            lane_rates[li] / tree_rate.max(1e-9)
        );
    }
    println!("\ncompiled vs tree-walk: {speedup_tree:.1}x   compiled vs vsim: {speedup_vsim:.1}x");
    println!("equivalence: {checks} cross-check(s), all bit-exact");

    let mut report = BenchReport::new("sim");
    report
        .int("filters", 12)
        .int("wordlength", u64::from(WORDLENGTH))
        .int("tree_samples", tree_samples)
        .int("vsim_samples", vsim_samples)
        .int("compiled_samples", lane_samples.iter().sum())
        .int("program_insts_total", insts_total)
        .float_map(
            "samples_per_sec",
            &[
                ("tree_walk", tree_rate),
                ("vsim", vsim_rate),
                ("compiled", compiled_rate),
            ],
        )
        .float_map(
            "compiled_by_lanes",
            &LANES
                .iter()
                .enumerate()
                .map(|(li, &lanes)| (lane_name(lanes), lane_rates[li]))
                .collect::<Vec<_>>(),
        )
        .float("speedup_compiled_vs_tree", speedup_tree)
        .float("speedup_compiled_vs_vsim", speedup_vsim)
        .int("equivalence_checks", checks)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}

fn rate(samples: u64, elapsed: Duration) -> f64 {
    samples as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn lane_name(lanes: usize) -> &'static str {
    match lanes {
        8 => "lanes_8",
        16 => "lanes_16",
        32 => "lanes_32",
        64 => "lanes_64",
        _ => unreachable!("LANES axis is fixed"),
    }
}
