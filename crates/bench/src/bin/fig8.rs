//! Figure 8: MRPF+CSE vs CSE, (a) uniformly and (b) maximally scaled.
//!
//! Both schemes use signed-digit coefficients (CSE on CSD, per Hartley);
//! every cell is the MRPF+CSE adder count normalized by plain CSE. The
//! paper reports 17 % (uniform) and 15 % (maximal) average improvement,
//! and 66 % / 74 % combined reduction versus the simple implementation.

use mrp_batch::ThreadPool;
use mrp_bench::{
    evaluate_suite_on, jobs_from_args, mean, print_header, BenchReport, Cell, WORDLENGTHS,
};
use mrp_core::MrpConfig;
use mrp_numrep::Scaling;

fn run_part(
    title: &str,
    scaling: Scaling,
    config: &MrpConfig,
    pool: &ThreadPool,
) -> Vec<Vec<Cell>> {
    print_header(
        title,
        "rows: example filters; columns: MRPF+CSE / CSE per wordlength",
    );
    let suites: Vec<Vec<Cell>> = WORDLENGTHS
        .iter()
        .map(|&w| evaluate_suite_on(pool, w, scaling, config))
        .collect();
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); WORDLENGTHS.len()];
    println!(
        "{:<4} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "ex", "type", "W=8", "W=12", "W=16", "W=20"
    );
    for row in 0..suites[0].len() {
        let cell0 = &suites[0][row];
        print!("{:<4} {:<6}", cell0.example, cell0.label);
        for (wi, suite) in suites.iter().enumerate() {
            let r = suite[row].mrp_cse_vs_cse();
            per_w[wi].push(r);
            print!(" {r:>8.3}");
        }
        println!();
    }
    println!("{}", "-".repeat(72));
    print!("{:<11}", "average");
    for ratios in &per_w {
        print!(" {:>8.3}", mean(ratios));
    }
    println!();
    let all: Vec<f64> = per_w.iter().flatten().copied().collect();
    println!(
        "average improvement over CSE: {:.1} %   [paper: ~15-17 %]",
        (1.0 - mean(&all)) * 100.0
    );
    // Combined reduction vs simple.
    let combined: Vec<f64> = suites
        .iter()
        .flatten()
        .map(|c| mrp_bench::ratio(c.report.mrp_cse, c.report.simple))
        .collect();
    println!(
        "combined MRPF+CSE reduction vs simple: {:.1} %   [paper: 66 % uniform / 74 % maximal]",
        (1.0 - mean(&combined)) * 100.0
    );
    println!("{}", mrp_bench::rung_banner(suites.iter().flatten()));
    suites
}

fn part_stats(suites: &[Vec<Cell>]) -> (f64, f64, u64) {
    let ratios: Vec<f64> = suites.iter().flatten().map(Cell::mrp_cse_vs_cse).collect();
    let combined: Vec<f64> = suites
        .iter()
        .flatten()
        .map(|c| mrp_bench::ratio(c.report.mrp_cse, c.report.simple))
        .collect();
    let cells = suites.iter().map(Vec::len).sum::<usize>() as u64;
    (
        (1.0 - mean(&ratios)) * 100.0,
        (1.0 - mean(&combined)) * 100.0,
        cells,
    )
}

fn main() {
    let start = std::time::Instant::now();
    let jobs = jobs_from_args();
    let pool = ThreadPool::new(jobs);
    let config = MrpConfig::default();
    let uniform = run_part(
        "Figure 8a — MRPF+CSE vs CSE, uniformly scaled",
        Scaling::Uniform,
        &config,
        &pool,
    );
    println!();
    let maximal = run_part(
        "Figure 8b — MRPF+CSE vs CSE, maximally scaled",
        Scaling::Maximal,
        &config,
        &pool,
    );

    let (uni_vs_cse, uni_vs_simple, uni_cells) = part_stats(&uniform);
    let (max_vs_cse, max_vs_simple, max_cells) = part_stats(&maximal);
    let mut report = BenchReport::new("fig8");
    report.int("cells", uni_cells + max_cells).float_map(
        "improvement_pct",
        &[
            ("uniform_vs_cse", uni_vs_cse),
            ("maximal_vs_cse", max_vs_cse),
            ("uniform_vs_simple", uni_vs_simple),
            ("maximal_vs_simple", max_vs_simple),
        ],
    );
    report
        .int("jobs", jobs as u64)
        .int("elapsed_ms", start.elapsed().as_millis() as u64);
    report.write_and_announce();
}
