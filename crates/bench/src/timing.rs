//! Wall-clock micro-timing for the `benches/` binaries.
//!
//! The workspace builds offline, so the benches use plain
//! [`std::time::Instant`] instead of an external harness: warm up, run a
//! fixed iteration count, and report the per-iteration mean and minimum.
//! The numbers are indicative (no outlier rejection) but deterministic in
//! shape and dependency-free.

use std::hint::black_box;
use std::time::Instant;

/// Per-iteration timing of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Iterations timed.
    pub iters: u32,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest single iteration, nanoseconds.
    pub min_ns: f64,
}

impl Measurement {
    /// Formats nanoseconds with an adaptive unit.
    ///
    /// Covers the full range a timer can produce: sub-nanosecond values
    /// render in picoseconds (a disabled-instrumentation site costs
    /// ~0.5 ns, which the old integer-`ns` rendering collapsed to
    /// `0 ns`), and values of a second and above keep millisecond
    /// resolution instead of being rounded into `{:.3}`'s fixed three
    /// decimals of *seconds* once they grow large.
    pub fn format_ns(ns: f64) -> String {
        if !ns.is_finite() {
            return format!("{ns} ns");
        }
        let (sign, a) = if ns < 0.0 { ("-", -ns) } else { ("", ns) };
        if a >= 1e9 {
            // Seconds, three decimals — but never fewer than millisecond
            // resolution for big values: show whole ms separately once
            // the fixed decimals would truncate them.
            let s = a / 1e9;
            if s >= 1e6 {
                format!("{sign}{s:.0} s")
            } else {
                format!("{sign}{s:.3} s")
            }
        } else if a >= 1e6 {
            format!("{sign}{:.3} ms", a / 1e6)
        } else if a >= 1e3 {
            format!("{sign}{:.3} µs", a / 1e3)
        } else if a >= 10.0 {
            format!("{sign}{a:.0} ns")
        } else if a >= 1.0 {
            format!("{sign}{a:.2} ns")
        } else if a > 0.0 {
            format!("{sign}{:.1} ps", a * 1e3)
        } else {
            "0 ns".to_string()
        }
    }
}

/// Times `f` for `iters` iterations after `warmup` untimed runs.
pub fn measure<R>(iters: u32, warmup: u32, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut min_ns = f64::INFINITY;
    let total = Instant::now();
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        black_box(f());
        min_ns = min_ns.min(t.elapsed().as_nanos() as f64);
    }
    let mean_ns = total.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    Measurement {
        iters: iters.max(1),
        mean_ns,
        min_ns,
    }
}

/// Times `f` and prints one aligned `group/label` result row.
pub fn bench<R>(group: &str, label: &str, iters: u32, f: impl FnMut() -> R) {
    let m = measure(iters, 2, f);
    println!(
        "{:<44} mean {:>12}   min {:>12}   ({} iters)",
        format!("{group}/{label}"),
        Measurement::format_ns(m.mean_ns),
        Measurement::format_ns(m.min_ns),
        m.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut n = 0u64;
        let m = measure(10, 3, || n += 1);
        assert_eq!(m.iters, 10);
        assert_eq!(n, 13); // warmup + timed
        assert!(m.min_ns <= m.mean_ns * 1.5 + 1.0);
    }

    #[test]
    fn zero_iters_clamped() {
        let m = measure(0, 0, || ());
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn formatting_units() {
        assert!(Measurement::format_ns(12.0).ends_with("ns"));
        assert!(Measurement::format_ns(12_000.0).ends_with("µs"));
        assert!(Measurement::format_ns(12_000_000.0).ends_with("ms"));
        assert!(Measurement::format_ns(2e9).ends_with(" s"));
    }

    #[test]
    fn formatting_sub_nanosecond() {
        // A disabled obs site costs ~0.5 ns; it must not render as 0.
        assert_eq!(Measurement::format_ns(0.5), "500.0 ps");
        assert_eq!(Measurement::format_ns(0.04), "40.0 ps");
        assert_eq!(Measurement::format_ns(0.999), "999.0 ps");
        assert_eq!(Measurement::format_ns(0.0), "0 ns");
    }

    #[test]
    fn formatting_single_digit_ns_keeps_decimals() {
        assert_eq!(Measurement::format_ns(3.6), "3.60 ns");
        assert_eq!(Measurement::format_ns(1.0), "1.00 ns");
        assert_eq!(Measurement::format_ns(9.99), "9.99 ns");
    }

    #[test]
    fn formatting_boundaries() {
        assert_eq!(Measurement::format_ns(10.0), "10 ns");
        assert_eq!(Measurement::format_ns(999.0), "999 ns");
        assert_eq!(Measurement::format_ns(1_000.0), "1.000 µs");
        assert_eq!(Measurement::format_ns(999_999.0), "999.999 µs");
        assert_eq!(Measurement::format_ns(1e6), "1.000 ms");
        assert_eq!(Measurement::format_ns(1e9), "1.000 s");
    }

    #[test]
    fn formatting_large_seconds_keep_ms_resolution() {
        // 90.0005 s must not lose its half millisecond.
        assert_eq!(Measurement::format_ns(9.00005e10), "90.001 s");
        assert_eq!(Measurement::format_ns(3.6e12), "3600.000 s");
        // Astronomically large values degrade gracefully to whole seconds.
        assert_eq!(Measurement::format_ns(2e15), "2000000 s");
    }

    #[test]
    fn formatting_non_finite_and_negative() {
        assert_eq!(Measurement::format_ns(f64::INFINITY), "inf ns");
        assert!(Measurement::format_ns(f64::NAN).contains("NaN"));
        assert_eq!(Measurement::format_ns(-1_500.0), "-1.500 µs");
        assert_eq!(Measurement::format_ns(-0.5), "-500.0 ps");
    }
}
