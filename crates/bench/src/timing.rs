//! Wall-clock micro-timing for the `benches/` binaries.
//!
//! The workspace builds offline, so the benches use plain
//! [`std::time::Instant`] instead of an external harness: warm up, run a
//! fixed iteration count, and report the per-iteration mean and minimum.
//! The numbers are indicative (no outlier rejection) but deterministic in
//! shape and dependency-free.

use std::hint::black_box;
use std::time::Instant;

/// Per-iteration timing of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Iterations timed.
    pub iters: u32,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest single iteration, nanoseconds.
    pub min_ns: f64,
}

impl Measurement {
    /// Formats nanoseconds with an adaptive unit.
    pub fn format_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
}

/// Times `f` for `iters` iterations after `warmup` untimed runs.
pub fn measure<R>(iters: u32, warmup: u32, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut min_ns = f64::INFINITY;
    let total = Instant::now();
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        black_box(f());
        min_ns = min_ns.min(t.elapsed().as_nanos() as f64);
    }
    let mean_ns = total.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    Measurement {
        iters: iters.max(1),
        mean_ns,
        min_ns,
    }
}

/// Times `f` and prints one aligned `group/label` result row.
pub fn bench<R>(group: &str, label: &str, iters: u32, f: impl FnMut() -> R) {
    let m = measure(iters, 2, f);
    println!(
        "{:<44} mean {:>12}   min {:>12}   ({} iters)",
        format!("{group}/{label}"),
        Measurement::format_ns(m.mean_ns),
        Measurement::format_ns(m.min_ns),
        m.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut n = 0u64;
        let m = measure(10, 3, || n += 1);
        assert_eq!(m.iters, 10);
        assert_eq!(n, 13); // warmup + timed
        assert!(m.min_ns <= m.mean_ns * 1.5 + 1.0);
    }

    #[test]
    fn zero_iters_clamped() {
        let m = measure(0, 0, || ());
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn formatting_units() {
        assert!(Measurement::format_ns(12.0).ends_with("ns"));
        assert!(Measurement::format_ns(12_000.0).ends_with("µs"));
        assert!(Measurement::format_ns(12_000_000.0).ends_with("ms"));
        assert!(Measurement::format_ns(2e9).ends_with(" s"));
    }
}
