//! Machine-readable bench output: `BENCH_*.json` files at the repo root.
//!
//! The figure/table binaries historically printed human tables only, so
//! nothing accumulated a perf/quality trajectory across commits. Each
//! binary now also serializes its headline numbers through a
//! [`BenchReport`] — a tiny ordered key/value JSON builder (the workspace
//! builds offline, so no serde) — written as `BENCH_<name>.json` at the
//! workspace root next to `Cargo.toml`.

use std::io;
use std::path::{Path, PathBuf};

/// Ordered JSON-object builder for one bench run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for the bench binary `name` (e.g. `summary`).
    pub fn new(name: &str) -> Self {
        let mut r = BenchReport {
            name: name.to_string(),
            fields: Vec::new(),
        };
        r.push_raw("bench", format!("\"{}\"", escape(name)));
        r
    }

    fn push_raw(&mut self, key: &str, raw: String) {
        self.fields.push((key.to_string(), raw));
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_raw(key, format!("\"{}\"", escape(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let raw = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.push_raw(key, raw);
        self
    }

    /// Adds a field whose value is pre-rendered JSON (an array or nested
    /// object the typed helpers cannot express). The caller is
    /// responsible for `raw` being valid JSON.
    pub fn raw_field(&mut self, key: &str, raw: String) -> &mut Self {
        self.push_raw(key, raw);
        self
    }

    /// Adds a nested object of float fields.
    pub fn float_map(&mut self, key: &str, entries: &[(&str, f64)]) -> &mut Self {
        let body: Vec<String> = entries
            .iter()
            .map(|(k, v)| {
                let raw = if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                };
                format!("\"{}\":{raw}", escape(k))
            })
            .collect();
        self.push_raw(key, format!("{{{}}}", body.join(",")));
        self
    }

    /// Renders the report as a JSON object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// The output path: `BENCH_<name>.json` at the workspace root.
    pub fn default_path(&self) -> PathBuf {
        workspace_root().join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the report to [`BenchReport::default_path`] and returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`] when the file cannot be
    /// written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = self.default_path();
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes the report, printing the destination (or a loud warning on
    /// failure — a bench run's numbers should never die silently).
    pub fn write_and_announce(&self) {
        match self.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!(
                "WARNING: could not write {}: {e}",
                self.default_path().display()
            ),
        }
    }
}

/// The workspace root: two levels up from this crate's manifest
/// (`crates/bench` → repo root).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .to_path_buf()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_json() {
        let mut r = BenchReport::new("demo");
        r.int("cells", 48)
            .float("ratio", 0.5)
            .float("bad", f64::NAN)
            .str_field("note", "a\"b")
            .float_map("claims", &[("x", 1.25), ("y", f64::INFINITY)])
            .raw_field("rows", "[{\"a\":1}]".to_string());
        let json = r.render();
        assert_eq!(
            json,
            "{\"bench\":\"demo\",\"cells\":48,\"ratio\":0.5,\"bad\":null,\
             \"note\":\"a\\\"b\",\"claims\":{\"x\":1.25,\"y\":null},\
             \"rows\":[{\"a\":1}]}"
        );
    }

    #[test]
    fn default_path_is_at_workspace_root() {
        let r = BenchReport::new("summary");
        let path = r.default_path();
        assert!(path.ends_with("BENCH_summary.json"));
        assert!(path.parent().unwrap().join("Cargo.toml").exists());
    }
}
