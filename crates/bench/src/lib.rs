//! Shared plumbing for the figure/table regeneration binaries and the
//! timing benches.
//!
//! Every binary follows the same recipe: design the Table 1 example suite,
//! quantize to the wordlength/scaling under test, run each optimization
//! scheme, and print the normalized rows the paper plots. See DESIGN.md §4
//! for the experiment ↔ binary index and EXPERIMENTS.md for recorded
//! output.

pub mod report;
pub mod timing;

pub use report::BenchReport;

use mrp_core::{adder_report, AdderReport, MrpConfig};
use mrp_filters::{example_filters, ExampleFilter};
use mrp_numrep::{quantize, Scaling};
use mrp_resilience::{synthesize, Rung, SynthConfig};

/// Lints a generated adder graph and panics on any finding: the bench
/// binaries report numbers straight out of the pipeline, so a netlist that
/// fails static analysis would silently poison the published tables.
///
/// # Panics
///
/// Panics with the rendered lint report when the graph is not clean.
pub fn assert_lint_clean(graph: &mrp_arch::AdderGraph, context: &str) {
    let report = mrp_lint::lint_graph(graph, &mrp_lint::LintConfig::default());
    assert!(
        report.is_clean(),
        "lint found problems in {context}:\n{}",
        report.render_pretty()
    );
}

/// The wordlengths every figure sweeps.
pub const WORDLENGTHS: [u32; 4] = [8, 12, 16, 20];

/// One evaluated (filter, wordlength, scaling) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// 1-based example index.
    pub example: usize,
    /// Short label such as `PM LP`.
    pub label: String,
    /// Coefficient wordlength.
    pub wordlength: u32,
    /// Scaling policy.
    pub scaling: Scaling,
    /// Quantized integer taps (full, unfolded).
    pub coeffs: Vec<i64>,
    /// Adder counts under every scheme.
    pub report: AdderReport,
    /// Fallback-ladder rung the supervised driver landed on for this
    /// coefficient set (`"mrp+cse"` when nothing degraded, `"failed"` if
    /// even the ladder could not synthesize it).
    pub rung: &'static str,
}

impl Cell {
    /// `MRPF / simple` — the y-axis of Figures 6 and 7.
    pub fn mrp_vs_simple(&self) -> f64 {
        ratio(self.report.mrp, self.report.simple)
    }

    /// `MRPF+CSE / CSE` — the y-axis of Figure 8.
    pub fn mrp_cse_vs_cse(&self) -> f64 {
        ratio(self.report.mrp_cse, self.report.cse)
    }
}

/// Safe ratio: `0/0 = 1` (both schemes found the taps free).
pub fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

/// Designs one example and quantizes it.
///
/// # Panics
///
/// Panics if the example fails to design or quantize — the suite is
/// test-verified, so this signals a build problem worth failing loudly on.
pub fn quantized_example(example: &ExampleFilter, wordlength: u32, scaling: Scaling) -> Vec<i64> {
    let taps = example
        .design()
        .unwrap_or_else(|e| panic!("example {} failed to design: {e}", example.index));
    quantize(&taps, wordlength, scaling)
        .unwrap_or_else(|e| panic!("example {} failed to quantize: {e}", example.index))
        .values
}

/// Evaluates one example at one wordlength/scaling: quantize, run every
/// scheme, and record the supervised driver's rung.
fn evaluate_example(
    ex: &ExampleFilter,
    wordlength: u32,
    scaling: Scaling,
    config: &MrpConfig,
) -> Cell {
    let coeffs = quantized_example(ex, wordlength, scaling);
    let report = adder_report(&coeffs, config)
        .unwrap_or_else(|e| panic!("example {} failed to optimize: {e}", ex.index));
    let synth_cfg = SynthConfig {
        base: *config,
        ..SynthConfig::default()
    };
    let rung = match synthesize(&coeffs, &synth_cfg) {
        Ok(outcome) => outcome.rung.name(),
        Err(_) => "failed",
    };
    Cell {
        example: ex.index,
        label: ex.label(),
        wordlength,
        scaling,
        coeffs,
        report,
        rung,
    }
}

/// Evaluates the full example suite at one wordlength/scaling.
///
/// # Panics
///
/// Panics on design/quantize/optimize failure (see
/// [`quantized_example`]).
pub fn evaluate_suite(wordlength: u32, scaling: Scaling, config: &MrpConfig) -> Vec<Cell> {
    example_filters()
        .iter()
        .map(|ex| evaluate_example(ex, wordlength, scaling, config))
        .collect()
}

/// [`evaluate_suite`] with the per-example work fanned out on `pool`.
///
/// Every cell is a pure function of its example and parameters, so the
/// result is identical to the sequential suite for any worker count —
/// the `--jobs` axis in the bench binaries changes wall-clock only,
/// never the published numbers.
///
/// # Panics
///
/// Panics if any per-example job fails (same contract as
/// [`evaluate_suite`]).
pub fn evaluate_suite_on(
    pool: &mrp_batch::ThreadPool,
    wordlength: u32,
    scaling: Scaling,
    config: &MrpConfig,
) -> Vec<Cell> {
    let config = *config;
    let jobs: Vec<_> = example_filters()
        .into_iter()
        .map(|ex| move || evaluate_example(&ex, wordlength, scaling, &config))
        .collect();
    pool.run_indexed(jobs)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| panic!("bench evaluation of example {} panicked", i + 1))
        })
        .collect()
}

/// Parses the `--jobs N` axis from the binary's command line (default 1,
/// clamped to `1..=256`). Every figure binary accepts it so parallel
/// speedup lands in the `BENCH_*.json` trajectory alongside the quality
/// numbers.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(v) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return v.clamp(1, 256);
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            if let Ok(v) = v.parse::<usize>() {
                return v.clamp(1, 256);
            }
        }
    }
    1
}

/// One-line (or multi-line on degradation) report of the fallback rungs
/// behind a set of evaluated cells. Every figure/table binary prints this
/// so numbers produced by a degraded rung are never silently mixed into
/// the paper tables.
pub fn rung_banner<'a>(cells: impl IntoIterator<Item = &'a Cell>) -> String {
    let best = Rung::MrpCse.name();
    let mut total = 0usize;
    let mut degraded: Vec<&Cell> = Vec::new();
    for cell in cells {
        total += 1;
        if cell.rung != best {
            degraded.push(cell);
        }
    }
    if degraded.is_empty() {
        return format!("rungs: all {total} cells synthesized at {best} (no fallback)");
    }
    let mut out = format!(
        "WARNING: {}/{total} cells fell back below {best} — exclude them before citing averages:",
        degraded.len()
    );
    for c in &degraded {
        out.push_str(&format!(
            "\n  ex {} W={} {:?}: rung {}",
            c.example, c.wordlength, c.scaling, c.rung
        ));
    }
    out
}

/// Geometric-mean-free average of a slice (plain arithmetic mean).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints the standard figure header.
pub fn print_header(title: &str, detail: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{detail}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(5, 10), 0.5);
        assert!(ratio(1, 0).is_infinite());
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn quantized_example_produces_integers() {
        let ex = &example_filters()[0];
        let q = quantized_example(ex, 10, Scaling::Uniform);
        assert_eq!(q.len(), ex.order + 1);
        assert!(q.iter().any(|&v| v != 0));
    }

    #[test]
    fn rung_banner_reports_clean_and_degraded_sets() {
        let cell = |rung: &'static str| Cell {
            example: 1,
            label: "PM LP".into(),
            wordlength: 12,
            scaling: Scaling::Uniform,
            coeffs: vec![7, 9],
            report: AdderReport {
                simple: 4,
                cse: 3,
                mrp: 2,
                mrp_cse: 2,
                seed: (1, 1),
                primaries: 2,
            },
            rung,
        };
        let clean = [cell("mrp+cse"), cell("mrp+cse")];
        assert!(rung_banner(&clean).contains("no fallback"));
        let mixed = [cell("mrp+cse"), cell("spt")];
        let banner = rung_banner(&mixed);
        assert!(banner.contains("WARNING"), "{banner}");
        assert!(banner.contains("rung spt"), "{banner}");
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let config = MrpConfig::default();
        let pool = mrp_batch::ThreadPool::new(3);
        let seq = evaluate_suite(8, Scaling::Uniform, &config);
        let par = evaluate_suite_on(&pool, 8, Scaling::Uniform, &config);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.example, p.example);
            assert_eq!(s.coeffs, p.coeffs);
            assert_eq!(s.report, p.report);
            assert_eq!(s.rung, p.rung);
        }
    }

    #[test]
    fn one_cell_evaluates() {
        let suite = example_filters();
        let coeffs = quantized_example(&suite[1], 10, Scaling::Uniform);
        let rep = mrp_core::adder_report(&coeffs, &MrpConfig::default()).unwrap();
        assert!(rep.mrp <= rep.simple);
    }
}
