//! Criterion bench: FIR design runtime (Remez vs least squares vs
//! Butterworth frequency sampling) across orders — the substrate cost of
//! regenerating Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrp_filters::{butterworth_fir, least_squares, remez, FilterSpec};

fn bench_design(c: &mut Criterion) {
    let bands = FilterSpec::lowpass(0.10, 0.16, 0.5, 50.0).to_bands();

    let mut group = c.benchmark_group("remez");
    group.sample_size(10);
    for order in [24usize, 48, 96] {
        group.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            b.iter(|| remez(order, std::hint::black_box(&bands)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("least_squares");
    group.sample_size(10);
    for order in [24usize, 48, 96] {
        group.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            b.iter(|| least_squares(order, std::hint::black_box(&bands)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("butterworth_fir");
    group.sample_size(20);
    for order in [24usize, 48, 96] {
        group.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            b.iter(|| butterworth_fir(order, 6, std::hint::black_box(0.15)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_design);
criterion_main!(benches);
