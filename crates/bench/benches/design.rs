//! Timing bench: FIR design runtime (Remez vs least squares vs
//! Butterworth frequency sampling) across orders — the substrate cost of
//! regenerating Table 1.

use mrp_bench::timing::bench;
use mrp_filters::{butterworth_fir, least_squares, remez, FilterSpec};

fn main() {
    let bands = FilterSpec::lowpass(0.10, 0.16, 0.5, 50.0).to_bands();

    for order in [24usize, 48, 96] {
        bench("remez", &format!("order_{order}"), 10, || {
            remez(order, std::hint::black_box(&bands)).unwrap()
        });
    }

    for order in [24usize, 48, 96] {
        bench("least_squares", &format!("order_{order}"), 10, || {
            least_squares(order, std::hint::black_box(&bands)).unwrap()
        });
    }

    for order in [24usize, 48, 96] {
        bench("butterworth_fir", &format!("order_{order}"), 20, || {
            butterworth_fir(order, 6, std::hint::black_box(0.15)).unwrap()
        });
    }
}
