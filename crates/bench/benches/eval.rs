//! Criterion bench: bit-exact filtering throughput of generated
//! architectures versus the direct-convolution golden model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrp_arch::{direct_fir, FirFilter};
use mrp_bench::quantized_example;
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn input_samples(n: usize) -> Vec<i64> {
    let mut seed = 0xDEADBEEFu64;
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 40) as i64) - (1 << 23)
        })
        .collect()
}

fn bench_eval(c: &mut Criterion) {
    let ex = &example_filters()[4];
    let coeffs = quantized_example(ex, 12, Scaling::Uniform);
    let result = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let filter = FirFilter::new(result.graph.clone());
    let input = input_samples(1024);

    let mut group = c.benchmark_group("filter_eval");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("mrpf_structural", coeffs.len()),
        &input,
        |b, input| {
            b.iter(|| filter.filter(std::hint::black_box(input)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("direct_convolution", coeffs.len()),
        &input,
        |b, input| {
            b.iter(|| direct_fir(std::hint::black_box(&coeffs), std::hint::black_box(input)));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
