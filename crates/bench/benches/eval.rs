//! Timing bench: bit-exact filtering throughput of generated
//! architectures versus the direct-convolution golden model.

use mrp_arch::{direct_fir, FirFilter};
use mrp_bench::timing::bench;
use mrp_bench::{assert_lint_clean, quantized_example};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn input_samples(n: usize) -> Vec<i64> {
    let mut seed = 0xDEADBEEFu64;
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 40) as i64) - (1 << 23)
        })
        .collect()
}

fn main() {
    let ex = &example_filters()[4];
    let coeffs = quantized_example(ex, 12, Scaling::Uniform);
    let result = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    assert_lint_clean(&result.graph, "eval bench block");
    let filter = FirFilter::new(result.graph.clone());
    let input = input_samples(1024);

    bench(
        "filter_eval",
        &format!("mrpf_structural_{}", coeffs.len()),
        20,
        || filter.filter(std::hint::black_box(&input)),
    );
    bench(
        "filter_eval",
        &format!("direct_convolution_{}", coeffs.len()),
        20,
        || direct_fir(std::hint::black_box(&coeffs), std::hint::black_box(&input)),
    );
}
