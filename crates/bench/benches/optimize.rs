//! Timing bench: MRP optimization runtime vs tap count and wordlength
//! (the sweep behind Figures 6 and 7).

use mrp_bench::timing::bench;
use mrp_bench::{assert_lint_clean, quantized_example};
use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn main() {
    let suite = example_filters();

    for ex in [&suite[0], &suite[4], &suite[8], &suite[11]] {
        let coeffs = quantized_example(ex, 16, Scaling::Uniform);
        let opt = MrpOptimizer::new(MrpConfig::default());
        let r = opt.optimize(&coeffs).unwrap();
        assert_lint_clean(&r.graph, &format!("example {} at w=16", ex.index));
        bench(
            "mrp_optimize",
            &format!("taps_{}", coeffs.len()),
            10,
            || opt.optimize(std::hint::black_box(&coeffs)).unwrap(),
        );
    }

    let ex = &suite[6];
    for w in [8u32, 12, 16, 20] {
        let coeffs = quantized_example(ex, w, Scaling::Maximal);
        let opt = MrpOptimizer::new(MrpConfig::default());
        let r = opt.optimize(&coeffs).unwrap();
        assert_lint_clean(&r.graph, &format!("example {} at w={w}", ex.index));
        bench("mrp_optimize_wordlength", &format!("w_{w}"), 10, || {
            opt.optimize(std::hint::black_box(&coeffs)).unwrap()
        });
    }

    let coeffs = quantized_example(&suite[8], 16, Scaling::Uniform);
    for (name, seed) in [
        ("direct", SeedOptimizer::Direct),
        ("cse", SeedOptimizer::Cse),
        ("recursive", SeedOptimizer::Recursive { levels: 1 }),
    ] {
        let cfg = MrpConfig {
            seed_optimizer: seed,
            ..MrpConfig::default()
        };
        let opt = MrpOptimizer::new(cfg);
        let r = opt.optimize(&coeffs).unwrap();
        assert_lint_clean(&r.graph, &format!("seed optimizer {name}"));
        bench("mrp_seed_optimizer", &format!("seed_{name}"), 10, || {
            opt.optimize(std::hint::black_box(&coeffs)).unwrap()
        });
    }
}
