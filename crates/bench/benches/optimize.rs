//! Criterion bench: MRP optimization runtime vs tap count and wordlength
//! (the sweep behind Figures 6 and 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrp_bench::quantized_example;
use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn bench_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrp_optimize");
    group.sample_size(10);
    let suite = example_filters();
    for ex in [&suite[0], &suite[4], &suite[8], &suite[11]] {
        let coeffs = quantized_example(ex, 16, Scaling::Uniform);
        group.bench_with_input(
            BenchmarkId::new("taps", coeffs.len()),
            &coeffs,
            |b, coeffs| {
                let opt = MrpOptimizer::new(MrpConfig::default());
                b.iter(|| opt.optimize(std::hint::black_box(coeffs)).unwrap());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("mrp_optimize_wordlength");
    group.sample_size(10);
    let ex = &suite[6];
    for w in [8u32, 12, 16, 20] {
        let coeffs = quantized_example(ex, w, Scaling::Maximal);
        group.bench_with_input(BenchmarkId::new("w", w), &coeffs, |b, coeffs| {
            let opt = MrpOptimizer::new(MrpConfig::default());
            b.iter(|| opt.optimize(std::hint::black_box(coeffs)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mrp_seed_optimizer");
    group.sample_size(10);
    let coeffs = quantized_example(&suite[8], 16, Scaling::Uniform);
    for (name, seed) in [
        ("direct", SeedOptimizer::Direct),
        ("cse", SeedOptimizer::Cse),
        ("recursive", SeedOptimizer::Recursive { levels: 1 }),
    ] {
        group.bench_with_input(BenchmarkId::new("seed", name), &coeffs, |b, coeffs| {
            let cfg = MrpConfig {
                seed_optimizer: seed,
                ..MrpConfig::default()
            };
            let opt = MrpOptimizer::new(cfg);
            b.iter(|| opt.optimize(std::hint::black_box(coeffs)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
