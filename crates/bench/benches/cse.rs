//! Criterion bench: Hartley CSE and graph-MCM runtime on the example
//! coefficient sets (baseline cost behind Figure 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrp_bench::quantized_example;
use mrp_cse::{graph_mcm, hartley_cse};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn primaries(coeffs: &[i64]) -> Vec<i64> {
    let mut p: Vec<i64> = coeffs
        .iter()
        .filter(|&&c| c != 0)
        .map(|&c| mrp_numrep::odd_part(c).odd)
        .filter(|&o| o > 1)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

fn bench_cse(c: &mut Criterion) {
    let suite = example_filters();
    let mut group = c.benchmark_group("hartley_cse");
    group.sample_size(10);
    for ex in [&suite[2], &suite[7], &suite[11]] {
        let p = primaries(&quantized_example(ex, 16, Scaling::Uniform));
        group.bench_with_input(BenchmarkId::new("primaries", p.len()), &p, |b, p| {
            b.iter(|| hartley_cse(std::hint::black_box(p)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("graph_mcm");
    group.sample_size(10);
    for ex in [&suite[2], &suite[7]] {
        let p = primaries(&quantized_example(ex, 12, Scaling::Uniform));
        group.bench_with_input(BenchmarkId::new("primaries", p.len()), &p, |b, p| {
            b.iter(|| graph_mcm(std::hint::black_box(p), 14).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cse);
criterion_main!(benches);
