//! Timing bench: Hartley CSE and graph-MCM runtime on the example
//! coefficient sets (baseline cost behind Figure 8).

use mrp_bench::quantized_example;
use mrp_bench::timing::bench;
use mrp_cse::{graph_mcm, hartley_cse};
use mrp_filters::example_filters;
use mrp_numrep::Scaling;

fn primaries(coeffs: &[i64]) -> Vec<i64> {
    let mut p: Vec<i64> = coeffs
        .iter()
        .filter(|&&c| c != 0)
        .map(|&c| mrp_numrep::odd_part(c).odd)
        .filter(|&o| o > 1)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

fn main() {
    let suite = example_filters();

    for ex in [&suite[2], &suite[7], &suite[11]] {
        let p = primaries(&quantized_example(ex, 16, Scaling::Uniform));
        bench("hartley_cse", &format!("primaries_{}", p.len()), 10, || {
            hartley_cse(std::hint::black_box(&p))
        });
    }

    for ex in [&suite[2], &suite[7]] {
        let p = primaries(&quantized_example(ex, 12, Scaling::Uniform));
        bench("graph_mcm", &format!("primaries_{}", p.len()), 10, || {
            graph_mcm(std::hint::black_box(&p), 14).unwrap()
        });
    }
}
