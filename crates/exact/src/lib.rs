//! # mrp-exact — exact branch-and-bound MCM over odd fundamentals
//!
//! The MRP transformation in `mrp-core` is a greedy heuristic: fast,
//! robust, and (per the paper's claims) good — but nothing in the
//! workspace could say *how far from optimal* its adder counts are. This
//! crate answers that with an in-tree exact solver for the multiple
//! constant multiplication (MCM) problem: given the odd primaries of a
//! coefficient set, find a minimum-size set of *fundamentals* (odd
//! constants, each built from two earlier ones by one shift-add) that
//! contains every primary. Each fundamental costs exactly one two-input
//! adder, so the solution size is the adder count of the multiplier
//! block.
//!
//! The search is a depth-first branch-and-bound over fundamental sets
//! ([`solve_mcm`]), in the style of the exact MCM algorithms of Aksoy et
//! al. and the ILP formulation of Kumm–Volkova–Filip (arXiv 1912.04210):
//!
//! * **A-operations, division-free.** A new fundamental is `a·2^s ± b`
//!   (`s ≥ 1`) over existing fundamentals `a`, `b` — exactly the shapes
//!   a left-shift-only [`mrp_arch::Term`] pair can express, so every
//!   solution replays directly into an [`mrp_arch::AdderGraph`]
//!   ([`realize_recipes`]). Right-shift A-operations (which the
//!   unrestricted MCM literature also allows) are excluded; optimality
//!   claims are therefore *over the `mrp-arch`-representable space* with
//!   fundamentals bounded by one extra bit over the largest target.
//! * **Closure.** A remaining target at A-distance 1 from the current
//!   set is always added immediately — it appears in every completion,
//!   and cost is a function of the final set, so this never loses
//!   optimality and collapses most of the tree.
//! * **Admissible bounds.** `cost + |remaining| + 1` (every remaining
//!   target needs its own adder, plus at least one non-target
//!   intermediate once closure has stalled) and the per-coefficient CSD
//!   floor `⌈log₂(csd_digits)⌉` ([`csd_cost_floor`]).
//! * **Incumbent seeding.** The caller passes the greedy MRP+CSE adder
//!   count as [`McmConfig::incumbent`]; the search only looks for
//!   strictly better solutions, and a budget-exhausted run can therefore
//!   never report anything worse than greedy.
//! * **Deterministic sharding.** Root-level branches become shards run
//!   in rounds of four with a shared best-so-far bound read only at
//!   round boundaries — the same discipline as
//!   `mrp_core::select_colors_exact_sharded` — so the [`McmOutcome`] is
//!   byte-identical for any worker count ([`ShardExecutor`]).
//!
//! Budget semantics mirror `ExactCoverOutcome`: the node cap is global
//! across shards, `budget_exhausted` reports a clipped search, and the
//! best-so-far solution (or the standing incumbent) is still returned.
//! See `docs/optimal.md` for the full algorithm write-up and
//! `docs/results/optimality-gap.md` for measured gaps on the paper's
//! 12-filter suite.
//!
//! # Examples
//!
//! A single constant with a known minimal adder count:
//!
//! ```
//! use mrp_exact::{solve_mcm, McmConfig, McmProblem};
//!
//! let problem = McmProblem::from_coeffs(&[45])?;
//! let out = solve_mcm(&problem, &McmConfig::default());
//! let sol = out.solution.expect("unbudgeted run solves 45");
//! assert_eq!(sol.cost, 2); // 45 = 9·5 = (1<<3 + 1)(1<<2 + 1)
//! assert!(out.proven_optimal);
//! # Ok::<(), mrp_core::MrpError>(())
//! ```
//!
//! Replaying a solution into a verified netlist:
//!
//! ```
//! use mrp_exact::{realize_recipes, solve_mcm, McmConfig, McmProblem};
//!
//! let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
//! let problem = McmProblem::from_coeffs(&coeffs)?;
//! let out = solve_mcm(&problem, &McmConfig::default());
//! let graph = realize_recipes(&coeffs, &out.solution.unwrap().recipes)?;
//! assert_eq!(graph.verify_outputs(&[-3, 0, 1, 7, 100]), None);
//! # Ok::<(), mrp_core::MrpError>(())
//! ```

#![warn(missing_docs)]

mod bounds;
mod executor;
mod realize;
mod solver;

pub use bounds::{ceil_log2, csd_cost_floor};
pub use executor::{ScopedExecutor, ShardExecutor};
pub use realize::realize_recipes;
pub use solver::{
    solve_mcm, solve_mcm_with, McmConfig, McmOutcome, McmProblem, McmSolution, Recipe,
    DEFAULT_MCM_NODE_BUDGET,
};
