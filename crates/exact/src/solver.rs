//! The deterministic sharded branch-and-bound MCM search.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mrp_core::{CoeffSet, MrpError};

use crate::bounds::csd_cost_floor;
use crate::executor::{ScopedExecutor, ShardExecutor};

/// Default global node-expansion cap for one [`solve_mcm`] call. Small
/// enough that a pathological instance answers in seconds, large enough
/// to prove optimality on the paper's example filters at modest widths.
pub const DEFAULT_MCM_NODE_BUDGET: usize = 20_000;

/// Shards per round: the shared bound is re-read every `SHARD_ROUND`
/// shards. Fixed (worker-count-independent) so the search explores the
/// same tree for any number of workers.
const SHARD_ROUND: usize = 4;

/// How one fundamental is built from two earlier ones:
/// `value = lhs·2^shift + rhs` when `add`, else `value = |lhs·2^shift − rhs|`
/// (always odd and positive; `shift ≥ 1`). The operands are fundamental
/// *values* — `1` (the input) or the `value` of an earlier recipe — so a
/// recipe list in construction order is a complete, replayable build
/// plan for an adder graph ([`crate::realize_recipes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Recipe {
    /// The odd fundamental this recipe produces.
    pub value: i64,
    /// Left operand (shifted), an earlier fundamental value.
    pub lhs: i64,
    /// Left shift applied to `lhs` (at least 1).
    pub shift: u32,
    /// Right operand, an earlier fundamental value.
    pub rhs: i64,
    /// `true` for `lhs·2^shift + rhs`, `false` for `|lhs·2^shift − rhs|`.
    pub add: bool,
}

impl Recipe {
    /// The value the operands actually produce — used by tests and
    /// debug assertions.
    pub fn computed(&self) -> i64 {
        let hi = self.lhs << self.shift;
        if self.add {
            hi + self.rhs
        } else {
            (hi - self.rhs).abs()
        }
    }
}

/// An MCM instance: the distinct odd targets (> 1) to cover, a cap on
/// fundamental magnitude, and a cap on single shifts. Both caps follow
/// the standard exact-MCM convention of one extra bit over the largest
/// target, which keeps the space finite without (in practice) cutting
/// off optima.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmProblem {
    targets: Vec<i64>,
    limit: i64,
    max_shift: u32,
}

impl McmProblem {
    /// Builds the instance for a coefficient vector: targets are the
    /// coefficients' odd primaries (as in [`CoeffSet`]) — zeros, signs,
    /// shifts, and duplicates are free and drop out.
    ///
    /// # Errors
    ///
    /// [`MrpError::CoefficientTooLarge`] for out-of-range magnitudes.
    pub fn from_coeffs(coeffs: &[i64]) -> Result<Self, MrpError> {
        let set = CoeffSet::new(coeffs)?;
        Ok(Self::from_targets(set.primaries()))
    }

    /// Builds the instance from raw targets: each is reduced to its
    /// positive odd part, then deduplicated; `0`, `±1`, and powers of
    /// two vanish (they cost no adders).
    pub fn from_targets(targets: &[i64]) -> Self {
        let mut ts: Vec<i64> = targets
            .iter()
            .map(|&t| {
                let a = t.unsigned_abs() as i64;
                if a == 0 {
                    0
                } else {
                    a >> a.trailing_zeros()
                }
            })
            .filter(|&t| t > 1)
            .collect();
        ts.sort_unstable();
        ts.dedup();
        let max_t = ts.last().copied().unwrap_or(1);
        let bits = (64 - (max_t as u64).leading_zeros()).min(49);
        McmProblem {
            targets: ts,
            limit: 1i64 << (bits + 1),
            max_shift: bits + 1,
        }
    }

    /// The normalized targets, ascending.
    pub fn targets(&self) -> &[i64] {
        &self.targets
    }

    /// The inclusive magnitude cap on fundamentals.
    pub fn limit(&self) -> i64 {
        self.limit
    }

    /// The largest single shift the search will use.
    pub fn max_shift(&self) -> u32 {
        self.max_shift
    }
}

/// Search knobs for one [`solve_mcm`] call.
#[derive(Debug, Clone, Copy)]
pub struct McmConfig {
    /// Global node-expansion cap across all shards (minimum 1).
    pub node_cap: usize,
    /// Worker threads for the sharded rounds. The outcome is identical
    /// for any value (including 1); more workers only finish sooner.
    pub workers: usize,
    /// Best-so-far adder count to beat, typically the greedy MRP+CSE
    /// result. The search looks only for *strictly better* solutions:
    /// with an incumbent set, [`McmOutcome::solution`] is `None` when
    /// the incumbent stands.
    pub incumbent: Option<usize>,
    /// Optional adder-depth cap on every fundamental (distance from the
    /// input in adders). `None` leaves depth free.
    pub depth_limit: Option<u32>,
    /// Optional wall-clock deadline, checked at round boundaries:
    /// rounds starting after it run with a zero node quota, which
    /// reports `budget_exhausted`. Unlike the node cap, a deadline makes
    /// the outcome depend on wall-clock time (and therefore on worker
    /// count); fully deterministic runs use the node cap alone.
    pub deadline: Option<Instant>,
}

impl Default for McmConfig {
    fn default() -> Self {
        McmConfig {
            node_cap: DEFAULT_MCM_NODE_BUDGET,
            workers: 1,
            incumbent: None,
            depth_limit: None,
            deadline: None,
        }
    }
}

/// A complete MCM solution: the fundamentals to build, in construction
/// order, pruned to those reachable from the targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmSolution {
    /// One recipe per fundamental (and so per adder), construction order.
    pub recipes: Vec<Recipe>,
    /// `recipes.len()` — the adder count of the multiplier block.
    pub cost: usize,
}

/// The result of one [`solve_mcm`] call, mirroring the semantics of
/// `mrp_core::ExactCoverOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmOutcome {
    /// The best solution found that beats the incumbent (if any was
    /// configured). `None` means the incumbent stands — never that the
    /// instance is infeasible.
    pub solution: Option<McmSolution>,
    /// The admissible root lower bound on the optimal adder count.
    pub lower_bound: usize,
    /// Nodes expanded across all shards, plus one for the root.
    pub nodes_expanded: usize,
    /// Whether any shard hit its node quota (or a deadline zeroed a
    /// round's quota) with its subtree unfinished.
    pub budget_exhausted: bool,
    /// Whether the final best cost is proved minimal over the bounded
    /// search space: the search ran to completion, or the best cost
    /// already meets the lower bound.
    pub proven_optimal: bool,
}

impl McmOutcome {
    /// The best known cost after this run: the solution's, or the
    /// configured incumbent when the incumbent stands.
    pub fn best_cost(&self, incumbent: Option<usize>) -> Option<usize> {
        self.solution.as_ref().map(|s| s.cost).or(incumbent)
    }
}

/// Mutable search position: the fundamental set (insertion order, `1`
/// first), per-fundamental depths, the targets not yet covered
/// (ascending), and the recipe trail.
#[derive(Debug, Clone)]
struct State {
    fund: Vec<i64>,
    depths: Vec<u32>,
    remaining: Vec<i64>,
    recipes: Vec<Recipe>,
}

impl State {
    fn new(problem: &McmProblem) -> State {
        State {
            fund: vec![1],
            depths: vec![0],
            remaining: problem.targets.clone(),
            recipes: Vec::new(),
        }
    }

    fn contains(&self, v: i64) -> bool {
        self.fund.contains(&v)
    }

    fn depth_of(&self, v: i64) -> u32 {
        let idx = self
            .fund
            .iter()
            .position(|&f| f == v)
            .expect("recipe operands are existing fundamentals");
        self.depths[idx]
    }

    fn push(&mut self, r: Recipe) {
        let d = 1 + self.depth_of(r.lhs).max(self.depth_of(r.rhs));
        debug_assert_eq!(r.computed(), r.value, "{r:?}");
        debug_assert!(!self.contains(r.value), "{r:?}");
        self.fund.push(r.value);
        self.depths.push(d);
        self.recipes.push(r);
        if let Ok(pos) = self.remaining.binary_search(&r.value) {
            self.remaining.remove(pos);
        }
    }

    fn pop(&mut self, targets: &[i64]) {
        let r = self.recipes.pop().expect("pop matches a push");
        self.fund.pop();
        self.depths.pop();
        if targets.binary_search(&r.value).is_ok() {
            let pos = self
                .remaining
                .binary_search(&r.value)
                .expect_err("a popped target was covered exactly once");
            self.remaining.insert(pos, r.value);
        }
    }
}

struct Search<'a> {
    problem: &'a McmProblem,
    depth_limit: Option<u32>,
    state: State,
    /// Visited fundamental sets (sorted; with depths when a depth limit
    /// is active). Cost is a function of the set alone, so a revisit —
    /// the same set reached by another insertion order — can never
    /// improve on the first visit and is skipped.
    memo: BTreeSet<Vec<i64>>,
    best_cost: usize,
    best: Option<Vec<Recipe>>,
    nodes: usize,
    node_budget: usize,
}

impl<'a> Search<'a> {
    fn new(
        problem: &'a McmProblem,
        depth_limit: Option<u32>,
        state: State,
        best_cost: usize,
        node_budget: usize,
    ) -> Self {
        Search {
            problem,
            depth_limit,
            state,
            memo: BTreeSet::new(),
            best_cost,
            best: None,
            nodes: 0,
            node_budget,
        }
    }

    fn depth_ok(&self, d: u32) -> bool {
        self.depth_limit.is_none_or(|lim| d <= lim)
    }

    /// Minimum-depth distance-1 recipe for target `t` using only pairs
    /// that involve the fundamental at index `vi` — the incremental
    /// check used by [`Search::close_from`]. Forms (with `v = fund[vi]`,
    /// `f` ranging over the whole set): `t = v·2^s ± f`, `t = f ± v·2^s`,
    /// and `t = f·2^s ± v` — each has at most one valid shift because
    /// fundamentals are odd.
    fn dist1_via(&self, t: i64, vi: usize) -> Option<Recipe> {
        let v = self.state.fund[vi];
        let dv = self.state.depths[vi];
        let mut best: Option<(u32, Recipe)> = None;
        let mut consider = |a: i64, da: u32, b: i64, db: u32| {
            // One shifted operand `a`, one plain operand `b`.
            for (diff, add) in [(t - b, true), (t + b, false), (b - t, false)] {
                if diff <= 0 || diff % a != 0 {
                    continue;
                }
                let q = diff / a;
                if q < 2 || (q & (q - 1)) != 0 {
                    continue;
                }
                let s = q.trailing_zeros();
                if s > self.problem.max_shift {
                    continue;
                }
                let d = 1 + da.max(db);
                if !self.depth_ok(d) {
                    continue;
                }
                let r = Recipe {
                    value: t,
                    lhs: a,
                    shift: s,
                    rhs: b,
                    add,
                };
                if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                    best = Some((d, r));
                }
            }
        };
        for (fi, &f) in self.state.fund.iter().enumerate() {
            let df = self.state.depths[fi];
            consider(v, dv, f, df); // v shifted, f plain
            consider(f, df, v, dv); // f shifted, v plain
        }
        best.map(|(_, r)| r)
    }

    /// Closure: repeatedly add any remaining target at A-distance 1.
    /// Precondition: before the most recent push(es) the state was
    /// closed, so only pairs involving fundamentals from index
    /// `from_idx` onward can enable new targets. Returns how many
    /// targets were pushed (for the caller to undo).
    fn close_from(&mut self, from_idx: usize) -> usize {
        let mut pushed = 0;
        let mut next_new = from_idx;
        while next_new < self.state.fund.len() {
            let vi = next_new;
            next_new += 1;
            // Scan remaining ascending; restart the scan for this `vi`
            // after every push so newly enabled targets (via `vi`) are
            // caught; targets enabled via the pushed value itself are
            // caught when its own index is processed.
            loop {
                let mut found = None;
                for &t in &self.state.remaining {
                    if let Some(r) = self.dist1_via(t, vi) {
                        found = Some(r);
                        break;
                    }
                }
                let Some(r) = found else { break };
                self.state.push(r);
                pushed += 1;
            }
        }
        pushed
    }

    fn memo_key(&self) -> Vec<i64> {
        let mut key: Vec<i64> = if self.depth_limit.is_some() {
            // Depths are part of feasibility under a depth limit, so two
            // states only coincide when values *and* depths match.
            self.state
                .fund
                .iter()
                .zip(&self.state.depths)
                .flat_map(|(&v, &d)| [v, i64::from(d)])
                .collect()
        } else {
            self.state.fund.clone()
        };
        key.sort_unstable();
        key
    }

    /// Every A-op successor value of the current set (odd, `3..=limit`,
    /// not already present), each with one deterministic witness recipe,
    /// ordered most-promising first: by how many remaining targets the
    /// candidate would put at distance 1 (descending), then by value.
    fn ordered_successors(&self) -> Vec<Recipe> {
        let limit = self.problem.limit;
        let mut cands: BTreeMap<i64, Recipe> = BTreeMap::new();
        for (ai, &a) in self.state.fund.iter().enumerate() {
            for (bi, &b) in self.state.fund.iter().enumerate() {
                let d = 1 + self.state.depths[ai].max(self.state.depths[bi]);
                if !self.depth_ok(d) {
                    continue;
                }
                for s in 1..=self.problem.max_shift {
                    if a > (i64::MAX >> s) {
                        break;
                    }
                    let hi = a << s;
                    if hi - b > limit {
                        break;
                    }
                    let plus = hi + b;
                    if plus <= limit && !self.state.contains(plus) {
                        cands.entry(plus).or_insert(Recipe {
                            value: plus,
                            lhs: a,
                            shift: s,
                            rhs: b,
                            add: true,
                        });
                    }
                    let minus = (hi - b).abs();
                    if minus >= 3 && minus <= limit && !self.state.contains(minus) {
                        cands.entry(minus).or_insert(Recipe {
                            value: minus,
                            lhs: a,
                            shift: s,
                            rhs: b,
                            add: false,
                        });
                    }
                }
            }
        }
        let benefit = self.candidate_benefits(&cands);
        let mut ordered: Vec<Recipe> = cands.into_values().collect();
        ordered.sort_by_key(|r| {
            (
                std::cmp::Reverse(benefit.get(&r.value).copied().unwrap_or(0)),
                r.value,
            )
        });
        ordered
    }

    /// For each candidate, how many remaining targets it would put at
    /// distance 1. Pure ordering heuristic — completeness never depends
    /// on it. Computed target-first: for each remaining `t` and each
    /// existing `f`, the helper `u` in `t = u·2^s ± f` / `t = f ± u·2^s`
    /// is the odd part of `t ∓ f` (unique), and `t = f·2^s ± u` /
    /// `t = u − f·2^s` enumerate shifts directly; `t = u·(2^s ± 1)`
    /// covers the self-pair.
    fn candidate_benefits(&self, cands: &BTreeMap<i64, Recipe>) -> BTreeMap<i64, u32> {
        let limit = self.problem.limit;
        let mut benefit: BTreeMap<i64, u32> = BTreeMap::new();
        for &t in &self.state.remaining {
            let mut helpers: BTreeSet<i64> = BTreeSet::new();
            for &f in &self.state.fund {
                for diff in [t - f, t + f, f - t] {
                    if diff > 0 && diff % 2 == 0 {
                        helpers.insert(diff >> diff.trailing_zeros());
                    }
                }
                for s in 1..=self.problem.max_shift {
                    if f > (i64::MAX >> s) {
                        break;
                    }
                    let hf = f << s;
                    if hf - t > limit {
                        break;
                    }
                    for u in [t - hf, t + hf, hf - t] {
                        if u > 0 && u <= limit {
                            helpers.insert(u);
                        }
                    }
                }
            }
            for s in 1..=self.problem.max_shift {
                let p = (1i64 << s) + 1;
                if p > t {
                    break;
                }
                if t % p == 0 {
                    helpers.insert(t / p);
                }
                let m = (1i64 << s) - 1;
                if m >= 3 && t % m == 0 {
                    helpers.insert(t / m);
                }
            }
            for u in helpers {
                if cands.contains_key(&u) {
                    *benefit.entry(u).or_insert(0) += 1;
                }
            }
        }
        benefit
    }

    /// One node: close over the most recent push, record or branch,
    /// undo the closure. The caller owns the push that led here.
    fn dfs(&mut self) {
        if self.nodes >= self.node_budget {
            return;
        }
        self.nodes += 1;
        let newest = self.state.fund.len() - 1;
        let closed = self.close_from(newest);
        self.expand();
        for _ in 0..closed {
            self.state.pop(&self.problem.targets);
        }
    }

    fn expand(&mut self) {
        if self.state.remaining.is_empty() {
            let cost = self.state.recipes.len();
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best = Some(self.state.recipes.clone());
            }
            return;
        }
        // Admissible bound: each remaining target costs one adder, and —
        // closure having stalled — any completion also needs at least
        // one non-target intermediate.
        if self.state.recipes.len() + self.state.remaining.len() + 1 >= self.best_cost {
            return;
        }
        if !self.memo.insert(self.memo_key()) {
            return;
        }
        for r in self.ordered_successors() {
            self.state.push(r);
            self.dfs();
            self.state.pop(&self.problem.targets);
            if self.nodes >= self.node_budget {
                return;
            }
            if self.state.recipes.len() + self.state.remaining.len() + 1 >= self.best_cost {
                return;
            }
        }
    }
}

/// Result of one shard: the subtree under one forced root-level
/// candidate, explored with a deterministic node quota and a bound
/// frozen at the shard's round start.
struct ShardResult {
    best: Option<(usize, Vec<Recipe>)>,
    nodes: usize,
    exhausted: bool,
}

fn explore_shard(
    problem: &McmProblem,
    depth_limit: Option<u32>,
    root: &State,
    forced: Recipe,
    round_bound: usize,
    quota: usize,
) -> ShardResult {
    let mut search = Search::new(problem, depth_limit, root.clone(), round_bound, quota);
    search.state.push(forced);
    search.dfs();
    ShardResult {
        best: search.best.map(|b| (search.best_cost, b)),
        nodes: search.nodes,
        exhausted: search.nodes >= search.node_budget,
    }
}

/// Drops recipes no output depends on: walk backwards from the targets,
/// keeping a recipe only if its value is needed, and marking its
/// operands needed in turn. A solution can carry a speculative branch
/// fundamental that the eventual completion never used; pruning it only
/// shrinks the cost, and a complete search's optimum prunes to itself.
fn prune_recipes(recipes: &[Recipe], targets: &[i64]) -> Vec<Recipe> {
    let mut needed: BTreeSet<i64> = targets.iter().copied().collect();
    let mut keep = vec![false; recipes.len()];
    for (i, r) in recipes.iter().enumerate().rev() {
        if needed.contains(&r.value) {
            keep[i] = true;
            needed.insert(r.lhs);
            needed.insert(r.rhs);
        }
    }
    recipes
        .iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(*r))
        .collect()
}

/// Solves the MCM instance with the default scoped-thread executor.
/// See [`solve_mcm_with`] for the full contract.
pub fn solve_mcm(problem: &McmProblem, config: &McmConfig) -> McmOutcome {
    solve_mcm_with(problem, config, &ScopedExecutor)
}

/// Solves the MCM instance: deterministic sharded branch-and-bound with
/// a global node budget.
///
/// The root-level A-op candidates become shards, run in rounds of
/// four on `executor`. The shared best-so-far bound is
/// tightened (`fetch_min`) by every finished shard but read only at
/// round starts, node quotas are carved deterministically out of the
/// remaining budget (`remaining / shards_left`, unused quota flowing
/// back), and the reduction takes the first shard in branch order
/// holding the minimum cost — so the outcome is *identical for any
/// worker count*, including 1.
///
/// With [`McmConfig::incumbent`] set, only strictly better solutions are
/// reported; `solution: None` means the incumbent stands. A
/// budget-exhausted run keeps the best-so-far (or the incumbent), so the
/// reported cost never regresses as the budget shrinks below what a
/// complete search needs.
pub fn solve_mcm_with(
    problem: &McmProblem,
    config: &McmConfig,
    executor: &dyn ShardExecutor,
) -> McmOutcome {
    let _span = mrp_obs::span("exact.mcm");
    let workers = config.workers.max(1);
    let node_cap = config.node_cap.max(1);
    let incumbent = config.incumbent.unwrap_or(usize::MAX);

    if problem.targets.is_empty() {
        return McmOutcome {
            solution: Some(McmSolution {
                recipes: Vec::new(),
                cost: 0,
            }),
            lower_bound: 0,
            nodes_expanded: 0,
            budget_exhausted: false,
            proven_optimal: true,
        };
    }

    // Root node: closure from the bare input.
    let mut root_search = Search::new(
        problem,
        config.depth_limit,
        State::new(problem),
        usize::MAX,
        usize::MAX,
    );
    root_search.close_from(0);
    let root_state = root_search.state.clone();

    let csd_floor = problem
        .targets
        .iter()
        .map(|&t| csd_cost_floor(t))
        .max()
        .unwrap_or(0);
    let count_floor = problem.targets.len() + usize::from(!root_state.remaining.is_empty());
    let lower_bound = csd_floor.max(count_floor);

    if root_state.remaining.is_empty() {
        // Closure alone covered every target, one adder each — the
        // unconditional floor, so this is optimal.
        mrp_obs::counter_add("exact.mcm.nodes", 1);
        let recipes = prune_recipes(&root_state.recipes, &problem.targets);
        let cost = recipes.len();
        return McmOutcome {
            // Strict-improvement contract: a standing incumbent at (or
            // below) this cost is reported as `None`.
            solution: (cost < incumbent).then_some(McmSolution { recipes, cost }),
            lower_bound: cost,
            nodes_expanded: 1,
            budget_exhausted: false,
            proven_optimal: true,
        };
    }

    if incumbent <= lower_bound {
        // The greedy incumbent already meets the admissible bound; no
        // search can improve on it.
        mrp_obs::counter_add("exact.mcm.nodes", 1);
        return McmOutcome {
            solution: None,
            lower_bound,
            nodes_expanded: 1,
            budget_exhausted: false,
            proven_optimal: true,
        };
    }

    let shard_cands: Arc<Vec<Recipe>> = Arc::new(root_search.ordered_successors());
    mrp_obs::counter_add("exact.mcm.shards", shard_cands.len() as u64);
    if shard_cands.is_empty() {
        // No constructible successor within the value/depth caps (only
        // reachable with extreme caps); report the incumbent standing
        // without claiming optimality.
        return McmOutcome {
            solution: None,
            lower_bound,
            nodes_expanded: 1,
            budget_exhausted: false,
            proven_optimal: false,
        };
    }

    let problem = Arc::new(problem.clone());
    let root_state = Arc::new(root_state);
    let bound = Arc::new(AtomicUsize::new(incumbent));
    let depth_limit = config.depth_limit;
    let mut results: Vec<Option<ShardResult>> = Vec::new();
    results.resize_with(shard_cands.len(), || None);
    let mut remaining_budget = node_cap - 1; // root node spent
    let mut next = 0usize;
    while next < shard_cands.len() {
        let round: Arc<Vec<usize>> =
            Arc::new((next..shard_cands.len().min(next + SHARD_ROUND)).collect());
        let shards_left = shard_cands.len() - next;
        let deadline_passed = config.deadline.is_some_and(|d| Instant::now() >= d);
        let quota = if deadline_passed {
            0
        } else {
            remaining_budget / shards_left
        };
        let round_bound = bound.load(Ordering::SeqCst);
        let cursor = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<Mutex<Option<ShardResult>>>> =
            Arc::new(round.iter().map(|_| Mutex::new(None)).collect());
        let job = {
            let problem = Arc::clone(&problem);
            let root_state = Arc::clone(&root_state);
            let bound = Arc::clone(&bound);
            let cursor = Arc::clone(&cursor);
            let slots = Arc::clone(&slots);
            let round = Arc::clone(&round);
            let shard_cands = Arc::clone(&shard_cands);
            Arc::new(move || loop {
                let pos = cursor.fetch_add(1, Ordering::SeqCst);
                if pos >= round.len() {
                    break;
                }
                let forced = shard_cands[round[pos]];
                let result = explore_shard(
                    &problem,
                    depth_limit,
                    &root_state,
                    forced,
                    round_bound,
                    quota,
                );
                if let Some((cost, _)) = &result.best {
                    bound.fetch_min(*cost, Ordering::SeqCst);
                }
                *slots[pos].lock().unwrap() = Some(result);
            })
        };
        executor.run(workers.min(round.len()), job);
        for (pos, &shard_idx) in round.iter().enumerate() {
            let result = slots[pos]
                .lock()
                .unwrap()
                .take()
                .expect("every shard in the round ran");
            remaining_budget = remaining_budget.saturating_sub(result.nodes);
            results[shard_idx] = Some(result);
        }
        next += round.len();
    }

    // Deterministic reduction: the first shard (in branch order) holding
    // the minimum cost wins; cross-round ties were already pruned by the
    // published bound.
    let mut best: Option<(usize, Vec<Recipe>)> = None;
    let mut nodes = 1usize; // root
    let mut exhausted = false;
    for result in results.into_iter().flatten() {
        nodes += result.nodes;
        exhausted |= result.exhausted;
        if let Some((cost, recipes)) = result.best {
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, recipes));
            }
        }
    }
    mrp_obs::counter_add("exact.mcm.nodes", nodes as u64);
    if exhausted {
        mrp_obs::instant("exact.mcm.budget_exhausted");
    }
    let solution = best.map(|(_, recipes)| {
        let recipes = prune_recipes(&recipes, &problem.targets);
        let cost = recipes.len();
        McmSolution { recipes, cost }
    });
    let best_cost = solution.as_ref().map(|s| s.cost).unwrap_or(incumbent);
    let proven_optimal = best_cost != usize::MAX && (!exhausted || best_cost <= lower_bound);
    McmOutcome {
        solution,
        lower_bound,
        nodes_expanded: nodes,
        budget_exhausted: exhausted,
        proven_optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_targets(targets: &[i64], config: &McmConfig) -> McmOutcome {
        solve_mcm(&McmProblem::from_targets(targets), config)
    }

    fn recipes_cover(out: &McmOutcome, targets: &[i64]) {
        let sol = out.solution.as_ref().expect("solution expected");
        let mut have: BTreeSet<i64> = BTreeSet::new();
        have.insert(1);
        for r in &sol.recipes {
            assert!(have.contains(&r.lhs), "{r:?} lhs not yet built");
            assert!(have.contains(&r.rhs), "{r:?} rhs not yet built");
            assert_eq!(r.computed(), r.value, "{r:?}");
            assert!(r.value % 2 == 1 && r.value > 1, "{r:?}");
            assert!(r.shift >= 1, "{r:?}");
            have.insert(r.value);
        }
        for &t in targets {
            assert!(have.contains(&t), "target {t} not covered");
        }
        assert_eq!(sol.cost, sol.recipes.len());
    }

    #[test]
    fn trivial_instances_cost_zero() {
        for targets in [&[] as &[i64], &[0, 1, 2, 64], &[-8, 16]] {
            let out = solve_targets(targets, &McmConfig::default());
            assert_eq!(out.solution.as_ref().unwrap().cost, 0, "{targets:?}");
            assert!(out.proven_optimal);
        }
    }

    #[test]
    fn cost_one_constants_solve_exactly() {
        for c in [3i64, 5, 7, 9, 15, 17, 31, 33, 63, 65, 127, 129, 255] {
            let out = solve_targets(&[c], &McmConfig::default());
            assert_eq!(out.solution.as_ref().unwrap().cost, 1, "{c}");
            assert!(out.proven_optimal, "{c}");
            recipes_cover(&out, &[c]);
        }
    }

    #[test]
    fn cost_two_constants_solve_exactly() {
        // Constants with published minimal SCM cost 2 (Kumm benchmark
        // families / standard MCM tables).
        for c in [11i64, 13, 19, 21, 23, 25, 27, 45, 51, 85, 93, 99, 105] {
            let out = solve_targets(&[c], &McmConfig::default());
            assert_eq!(out.solution.as_ref().unwrap().cost, 2, "{c}");
            assert!(out.proven_optimal, "{c}");
            recipes_cover(&out, &[c]);
        }
    }

    #[test]
    fn agrees_with_the_scm_oracle_on_every_odd_byte() {
        // `optimal_scm_cost` is exact for costs 0..=2 and returns 3 for
        // "3 or more".
        for c in (3i64..=255).step_by(2) {
            let problem = McmProblem::from_targets(&[c]);
            let oracle = mrp_numrep::optimal_scm_cost(c, problem.max_shift()) as usize;
            let out = solve_mcm(&problem, &McmConfig::default());
            let cost = out.solution.as_ref().unwrap().cost;
            assert!(out.proven_optimal, "{c}");
            if oracle <= 2 {
                assert_eq!(cost, oracle, "{c}");
            } else {
                assert!(cost >= 3, "{c}: cost {cost}");
            }
        }
    }

    #[test]
    fn shared_subexpressions_beat_per_constant_synthesis() {
        // 43 and 45 are each cost 2 alone, but the pair shares an
        // intermediate, so the exact MCM cost is at most 3 — and the
        // count floor makes 2 impossible with distance > 1, so 3 is
        // optimal if found.
        let out = solve_targets(&[43, 45], &McmConfig::default());
        let cost = out.solution.as_ref().unwrap().cost;
        assert!(cost <= 3, "cost {cost}");
        assert!(out.proven_optimal);
        recipes_cover(&out, &[43, 45]);
    }

    #[test]
    fn paper_example_is_solved_and_verified() {
        let problem = McmProblem::from_coeffs(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        let out = solve_mcm(&problem, &McmConfig::default());
        let sol = out.solution.as_ref().expect("finds a solution unseeded");
        assert!(sol.cost >= problem.targets().len());
        recipes_cover(&out, problem.targets());
    }

    #[test]
    fn outcome_is_identical_for_every_worker_count() {
        let cases: Vec<Vec<i64>> = vec![
            vec![45],
            vec![43, 45],
            vec![70, 66, 17, 9, 27, 41, 56, 11],
            vec![123, 205, 319, 473],
        ];
        for coeffs in cases {
            for node_cap in [50usize, DEFAULT_MCM_NODE_BUDGET] {
                let problem = McmProblem::from_targets(&coeffs);
                let base = solve_mcm(
                    &problem,
                    &McmConfig {
                        node_cap,
                        workers: 1,
                        ..McmConfig::default()
                    },
                );
                for workers in [2usize, 8] {
                    let other = solve_mcm(
                        &problem,
                        &McmConfig {
                            node_cap,
                            workers,
                            ..McmConfig::default()
                        },
                    );
                    assert_eq!(base, other, "{coeffs:?} cap {node_cap} x{workers}");
                    // Byte-identical, not merely equal.
                    assert_eq!(
                        format!("{base:?}"),
                        format!("{other:?}"),
                        "{coeffs:?} cap {node_cap} x{workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhausted_budget_never_regresses_below_the_incumbent() {
        let targets = [123i64, 205, 319, 473, 89, 333];
        let incumbent = 11usize;
        for node_cap in [1usize, 2, 5, 20, 100] {
            let out = solve_targets(
                &targets,
                &McmConfig {
                    node_cap,
                    incumbent: Some(incumbent),
                    ..McmConfig::default()
                },
            );
            assert!(out.nodes_expanded <= node_cap.max(1), "cap {node_cap}");
            if let Some(sol) = &out.solution {
                assert!(sol.cost < incumbent, "cap {node_cap}: {}", sol.cost);
                recipes_cover(&out, &targets);
            }
        }
    }

    #[test]
    fn incumbent_at_the_bound_short_circuits() {
        // Two cost-1 targets: greedy at 2 already meets the floor.
        let out = solve_targets(
            &[3, 5],
            &McmConfig {
                incumbent: Some(2),
                ..McmConfig::default()
            },
        );
        assert!(out.solution.is_none());
        assert!(out.proven_optimal);
        assert_eq!(out.lower_bound, 2);
        assert_eq!(out.nodes_expanded, 1);
    }

    #[test]
    fn expired_deadline_reports_exhaustion_but_keeps_the_incumbent() {
        let out = solve_targets(
            &[123, 205, 319],
            &McmConfig {
                incumbent: Some(9),
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..McmConfig::default()
            },
        );
        assert!(out.budget_exhausted);
        assert!(!out.proven_optimal);
        assert!(out.solution.is_none() || out.solution.as_ref().unwrap().cost < 9);
    }

    #[test]
    fn depth_limit_is_respected() {
        // 45 at depth ≤ 2 still costs 2 (9·5 is depth 2); the recipes'
        // implied depths must respect the cap.
        let problem = McmProblem::from_targets(&[45]);
        let out = solve_mcm(
            &problem,
            &McmConfig {
                depth_limit: Some(2),
                ..McmConfig::default()
            },
        );
        let sol = out.solution.as_ref().unwrap();
        assert_eq!(sol.cost, 2);
        let mut depth: BTreeMap<i64, u32> = BTreeMap::new();
        depth.insert(1, 0);
        for r in &sol.recipes {
            let d = 1 + depth[&r.lhs].max(depth[&r.rhs]);
            assert!(d <= 2, "{r:?} at depth {d}");
            depth.insert(r.value, d);
        }
    }

    #[test]
    fn prune_drops_unused_speculative_fundamentals() {
        let used = Recipe {
            value: 3,
            lhs: 1,
            shift: 1,
            rhs: 1,
            add: true,
        };
        let junk = Recipe {
            value: 7,
            lhs: 1,
            shift: 3,
            rhs: 1,
            add: false,
        };
        let pruned = prune_recipes(&[junk, used], &[3]);
        assert_eq!(pruned, vec![used]);
        // A chain keeps its operands.
        let chain = Recipe {
            value: 11,
            lhs: 3,
            shift: 2,
            rhs: 1,
            add: false,
        };
        let pruned = prune_recipes(&[used, junk, chain], &[11]);
        assert_eq!(pruned, vec![used, chain]);
    }

    #[test]
    fn lower_bound_is_admissible() {
        for targets in [&[45i64] as &[i64], &[11, 13], &[3, 5, 7], &[683]] {
            let out = solve_targets(targets, &McmConfig::default());
            let cost = out.solution.as_ref().unwrap().cost;
            assert!(
                out.lower_bound <= cost,
                "{targets:?}: lb {} > cost {cost}",
                out.lower_bound
            );
        }
    }
}
