//! Replaying a recipe list into a verified `mrp-arch` netlist.

use std::collections::BTreeMap;

use mrp_arch::{AdderGraph, Term};
use mrp_core::{attach_outputs, CoeffSet, MrpError};

use crate::solver::Recipe;

/// Builds the adder graph for `coeffs` from an exact-solver recipe list,
/// registering one labeled output per original coefficient (`c0, c1, …`)
/// exactly like the built-in realizations — so lint, emit, simulation,
/// and verification tooling see the same netlist shape regardless of
/// which rung produced it.
///
/// `recipes` must cover every odd primary of `coeffs` (any solution from
/// [`solve_mcm`](crate::solve_mcm) on the same coefficients does).
///
/// # Errors
///
/// [`MrpError::CoefficientTooLarge`] for out-of-range magnitudes and
/// [`MrpError::Arch`] on (practically unreachable) construction overflow.
///
/// # Panics
///
/// Panics if `recipes` fails to cover a primary of `coeffs` — a contract
/// violation, not an input condition (the resilience driver runs rungs
/// panic-isolated regardless).
///
/// # Examples
///
/// ```
/// use mrp_exact::{realize_recipes, Recipe};
///
/// // 45 = 9·5: build 9 = 8+1, then 45 = 36+9.
/// let recipes = [
///     Recipe { value: 9, lhs: 1, shift: 3, rhs: 1, add: true },
///     Recipe { value: 45, lhs: 9, shift: 2, rhs: 9, add: true },
/// ];
/// let graph = realize_recipes(&[45, 90, -9, 0], &recipes)?;
/// assert_eq!(graph.adder_count(), 2);
/// assert_eq!(graph.verify_outputs(&[-3, 0, 1, 7, 100]), None);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn realize_recipes(coeffs: &[i64], recipes: &[Recipe]) -> Result<AdderGraph, MrpError> {
    let mut graph = AdderGraph::new();
    if coeffs.is_empty() {
        return Ok(graph);
    }
    let set = CoeffSet::new(coeffs)?;
    let x = graph.input();
    let mut made: BTreeMap<i64, Term> = BTreeMap::new();
    made.insert(1, Term::of(x));
    for r in recipes {
        let lhs = made
            .get(&r.lhs)
            .copied()
            .expect("recipe operands are built in order");
        let rhs = made
            .get(&r.rhs)
            .copied()
            .expect("recipe operands are built in order");
        let hi = Term {
            node: lhs.node,
            shift: lhs.shift + r.shift,
            negate: lhs.negate,
        };
        let (a, b) = if r.add {
            (hi, rhs)
        } else if (r.lhs << r.shift) >= r.rhs {
            // value = hi − rhs
            (
                hi,
                Term {
                    negate: !rhs.negate,
                    ..rhs
                },
            )
        } else {
            // value = rhs − hi
            (
                Term {
                    negate: !hi.negate,
                    ..hi
                },
                rhs,
            )
        };
        let node = graph.add(a, b).map_err(MrpError::from)?;
        debug_assert_eq!(graph.value(node), r.value, "{r:?}");
        made.insert(r.value, Term::of(node));
    }
    let primary_terms: Vec<Term> = set
        .primaries()
        .iter()
        .map(|p| {
            made.get(p)
                .copied()
                .expect("recipe set covers every primary")
        })
        .collect();
    attach_outputs(&mut graph, &set, &primary_terms);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_mcm, McmConfig, McmProblem};

    #[test]
    fn solver_output_replays_bit_exactly() {
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let problem = McmProblem::from_coeffs(&coeffs).unwrap();
        let out = solve_mcm(&problem, &McmConfig::default());
        let sol = out.solution.expect("unseeded run returns a solution");
        let graph = realize_recipes(&coeffs, &sol.recipes).unwrap();
        assert_eq!(graph.adder_count(), sol.cost);
        assert_eq!(graph.outputs().len(), coeffs.len());
        assert_eq!(graph.verify_outputs(&[-9, -1, 0, 1, 5, 333]), None);
    }

    #[test]
    fn subtraction_in_both_directions_replays() {
        let recipes = [
            // hi ≥ rhs: 3 = 4 − 1, 13 = 16 − 3, 5 = 8 − 3.
            Recipe {
                value: 3,
                lhs: 1,
                shift: 2,
                rhs: 1,
                add: false,
            },
            Recipe {
                value: 13,
                lhs: 1,
                shift: 4,
                rhs: 3,
                add: false,
            },
            Recipe {
                value: 5,
                lhs: 1,
                shift: 3,
                rhs: 3,
                add: false,
            },
            // Plain addition with a shifted smaller lhs: 11 = 3·2 + 5.
            Recipe {
                value: 11,
                lhs: 3,
                shift: 1,
                rhs: 5,
                add: true,
            },
            // hi < rhs: 7 = |3·2 − 13| = 13 − 6.
            Recipe {
                value: 7,
                lhs: 3,
                shift: 1,
                rhs: 13,
                add: false,
            },
        ];
        for r in &recipes {
            assert_eq!(r.computed(), r.value, "{r:?}");
        }
        let graph = realize_recipes(&[3, 13, 5, 11, 7], &recipes).unwrap();
        assert_eq!(graph.verify_outputs(&[-3, 0, 1, 7, 100]), None);
    }

    #[test]
    fn zeros_shifts_and_signs_ride_for_free() {
        let recipes = [Recipe {
            value: 9,
            lhs: 1,
            shift: 3,
            rhs: 1,
            add: true,
        }];
        let graph = realize_recipes(&[0, 16, -9, 18, 9], &recipes).unwrap();
        assert_eq!(graph.adder_count(), 1);
        assert_eq!(graph.outputs().len(), 5);
        assert_eq!(graph.verify_outputs(&[-3, 0, 1, 7, 100]), None);
    }

    #[test]
    fn empty_coefficients_build_an_empty_graph() {
        let graph = realize_recipes(&[], &[]).unwrap();
        assert_eq!(graph.adder_count(), 0);
        assert!(graph.outputs().is_empty());
    }
}
