//! Pluggable shard execution: how one round of search shards gets its
//! worker threads.
//!
//! The solver's sharded rounds are *self-scheduling*: the round job owns
//! an atomic cursor and claims shard positions until none remain, so an
//! executor only has to run the same closure on up to `workers` threads
//! and wait for all of them. That contract is trivially satisfied by
//! scoped threads ([`ScopedExecutor`], the default) and by a reusable
//! work-stealing pool (`mrp-batch` implements [`ShardExecutor`] for its
//! `ThreadPool`), and because the solver reads the shared bound only at
//! round boundaries, the outcome is identical whichever executor — and
//! whichever worker count — runs the rounds.

use std::sync::Arc;

/// Runs one self-scheduling round job on up to `workers` threads.
pub trait ShardExecutor {
    /// Invokes `job` once per worker (up to `workers` concurrent
    /// invocations) and returns only when every invocation has returned.
    /// `job` claims work internally; invoking it more times than there
    /// is work is harmless.
    fn run(&self, workers: usize, job: Arc<dyn Fn() + Send + Sync>);
}

/// The default executor: `workers` scoped threads per round (none at all
/// for a single worker). Mirrors the threading of
/// `mrp_core::select_colors_exact_sharded`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScopedExecutor;

impl ShardExecutor for ScopedExecutor {
    fn run(&self, workers: usize, job: Arc<dyn Fn() + Send + Sync>) {
        if workers <= 1 {
            job();
            return;
        }
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job = Arc::clone(&job);
                scope.spawn(move || job());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_executor_runs_job_once_per_worker() {
        for workers in [1usize, 2, 8] {
            let calls = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&calls);
            ScopedExecutor.run(
                workers,
                Arc::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
            assert_eq!(calls.load(Ordering::SeqCst), workers);
        }
    }
}
