//! Admissible lower bounds for the MCM search.

use mrp_numrep::Repr;

/// `⌈log₂ n⌉` for `n ≥ 1` (0 for `n ≤ 1`).
///
/// # Examples
///
/// ```
/// assert_eq!(mrp_exact::ceil_log2(1), 0);
/// assert_eq!(mrp_exact::ceil_log2(2), 1);
/// assert_eq!(mrp_exact::ceil_log2(5), 3);
/// ```
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Single-coefficient adder floor from the CSD digit count: any adder
/// network computing `c` from `x` uses at least `⌈log₂ S(c)⌉` adders,
/// where `S(c)` is the number of nonzero CSD digits — one two-input
/// adder can at most double the number of signed power-of-two terms a
/// value sums, and CSD is digit-minimal. This is the classic
/// single-constant bound used (per coefficient) by the exact MCM
/// algorithms of Aksoy et al.
///
/// # Examples
///
/// ```
/// use mrp_exact::csd_cost_floor;
///
/// assert_eq!(csd_cost_floor(3), 1);   // 2 digits
/// assert_eq!(csd_cost_floor(45), 2);  // 101̄01̄01 → 4 digits → ⌈log₂4⌉
/// assert_eq!(csd_cost_floor(64), 0);  // a pure shift costs nothing
/// ```
pub fn csd_cost_floor(c: i64) -> usize {
    if c == 0 {
        return 0;
    }
    ceil_log2(mrp_numrep::nonzero_digits(c, Repr::Csd) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn csd_floor_is_admissible_for_known_costs() {
        // Exact single-constant costs for these are known (see
        // `mrp_numrep::optimal_scm_cost`); the floor must never exceed
        // them.
        for (c, cost) in [(3i64, 1usize), (5, 1), (45, 2), (11, 2), (683, 3)] {
            assert!(
                csd_cost_floor(c) <= cost,
                "floor({c}) = {} > known cost {cost}",
                csd_cost_floor(c)
            );
        }
    }

    #[test]
    fn powers_of_two_cost_nothing() {
        for c in [1i64, 2, 4, 1024, -8] {
            assert_eq!(csd_cost_floor(c), 0, "{c}");
        }
    }
}
