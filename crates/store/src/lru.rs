//! A bounded LRU map used as the in-memory front of the persistent
//! store (and as the whole store when running degraded).
//!
//! Std-only, so no intrusive linked list: recency is a lazy queue of
//! `(key, tick)` pairs next to a `HashMap` that records each key's
//! latest tick. Touching a key pushes a fresh pair and bumps the tick;
//! eviction pops pairs until one's tick matches the map (stale pairs —
//! earlier touches of a since-promoted key — are skipped). Every queue
//! entry is pushed once and popped once, so operations stay O(1)
//! amortized, at the cost of the queue briefly holding more entries than
//! the map.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded least-recently-used map.
#[derive(Debug)]
pub struct LruMap<K, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (V, u64)>,
    recency: VecDeque<(K, u64)>,
}

impl<K: Clone + Eq + Hash, V> LruMap<K, V> {
    /// Creates a map that holds at most `capacity` entries. A capacity
    /// of zero disables the map (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruMap {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            recency: VecDeque::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn touch(&mut self, key: &K) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, t)) = self.entries.get_mut(key) {
            *t = tick;
        }
        self.recency.push_back((key.clone(), tick));
        // Keep the lazy queue from growing without bound under a
        // hit-heavy workload: once it is far larger than the map, sweep
        // out every stale pair. The sweep is O(queue) but runs only
        // after a proportional number of pushes, so it amortizes away.
        if self.recency.len() > self.entries.len().saturating_mul(2) + 8 {
            let entries = &self.entries;
            self.recency
                .retain(|(k, t)| matches!(entries.get(k), Some((_, live)) if live == t));
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.touch(key);
            self.entries.get(key).map(|(v, _)| v)
        } else {
            None
        }
    }

    /// Inserts or replaces `key`, evicting the least-recently-used
    /// entry if the map is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(key.clone(), (value, tick));
        self.recency.push_back((key, tick));
    }

    /// Removes `key` if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|(v, _)| v)
    }

    fn evict_one(&mut self) {
        while let Some((key, tick)) = self.recency.pop_front() {
            match self.entries.get(&key) {
                Some((_, live)) if *live == tick => {
                    self.entries.remove(&key);
                    return;
                }
                _ => {} // stale pair for a promoted or removed key
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // promote a
        lru.insert("c", 3); // evicts b, not a
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut lru = LruMap::new(0);
        lru.insert("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&"a"), None);
    }

    #[test]
    fn heavy_promotion_stays_bounded_and_correct() {
        let mut lru = LruMap::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        for _ in 0..10_000 {
            assert!(lru.get(&0).is_some());
        }
        // The lazy queue must not have grown without bound.
        assert!(lru.recency.len() <= lru.entries.len() * 2 + 8 + 1);
        lru.insert(100, 100); // evicts 1 (oldest untouched)
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&0), Some(&0));
    }

    #[test]
    fn remove_then_insert_round_trip() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        assert_eq!(lru.remove(&"a"), Some(1));
        assert_eq!(lru.get(&"a"), None);
        lru.insert("a", 2);
        assert_eq!(lru.get(&"a"), Some(&2));
    }
}
