//! The fallible virtual filesystem the store runs on.
//!
//! Every byte the persistent tier reads or writes goes through the
//! [`Vfs`] trait, so the exact same store code runs over the real
//! filesystem in production ([`RealVfs`]) and over a deterministic
//! in-memory filesystem in tests ([`MemVfs`]), where crashes, torn
//! writes, and I/O errors can be injected on schedule ([`FaultVfs`]).
//!
//! The trait is deliberately tiny: whole-file read, ranged read, append,
//! whole-file write, truncate, fsync, atomic rename, remove. That is the
//! entire I/O vocabulary of an append-only log with temp-file+rename
//! compaction — anything the store cannot express through it, the store
//! does not do.
//!
//! # Durability model
//!
//! [`MemVfs`] models the write path of a journaling filesystem: appended
//! and written bytes are *volatile* until [`Vfs::fsync`] commits them,
//! and [`MemVfs::crash`] throws away a seeded portion of each file's
//! unsynced tail — optionally corrupting a byte near the cut, the way a
//! torn sector write would. Renames are atomic. This is what lets the
//! recovery tests enumerate realistic crash states instead of guessing.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mrp_ptest::Rng;

/// The file operations the store is allowed to perform.
///
/// Paths are opaque strings; the store only ever joins its directory
/// with fixed file names. Every method may fail — the store must treat
/// any error as "this tier is unreliable" and degrade, never panic.
pub trait Vfs: Send + Sync {
    /// Reads a whole file. `NotFound` means "no log yet" to the store.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;

    /// Reads `len` bytes at `offset`. Short data (EOF inside the range)
    /// is an error: the store asks only for ranges its index recorded.
    fn read_range(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Appends to a file, creating it if missing. Returns the number of
    /// bytes actually written — implementations may short-write, and the
    /// store must detect and repair the torn tail.
    fn append(&self, path: &str, data: &[u8]) -> io::Result<usize>;

    /// Creates or replaces a whole file (the compaction temp file).
    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()>;

    /// Truncates a file to `len` bytes (torn-tail repair).
    fn truncate(&self, path: &str, len: u64) -> io::Result<()>;

    /// Commits a file's bytes to durable storage.
    fn fsync(&self, path: &str) -> io::Result<()>;

    /// Atomically replaces `to` with `from` (compaction publish).
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Removes a file; missing files are not an error.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Creates the directory path (and parents) if missing.
    fn create_dir_all(&self, path: &str) -> io::Result<()>;
}

/// The production implementation over `std::fs`.
///
/// `append` loops until every byte is written (a real short write
/// surfaces as the underlying error instead), `rename` fsyncs the
/// parent directory best-effort so the publish survives power loss.
#[derive(Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<usize> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        file.write_all(data)?;
        Ok(data.len())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn fsync(&self, path: &str) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Make the publish durable: fsync the parent directory. Failure
        // here is not fatal — the rename itself succeeded.
        if let Some(dir) = std::path::Path::new(to).parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// One in-memory file: full contents plus the durable prefix length.
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (committed by `fsync`).
    durable_len: usize,
}

/// Deterministic in-memory filesystem with an explicit durability model.
///
/// Appends and writes land in volatile state; [`Vfs::fsync`] commits
/// them. [`MemVfs::crash`] simulates process death + power loss: every
/// file keeps its durable prefix plus a seeded *partial* slice of its
/// unsynced tail, and with the same seed the same crash replays exactly.
#[derive(Debug, Default)]
pub struct MemVfs {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemVfs {
    /// An empty filesystem.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, MemFile>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Simulates a crash: each file is cut back to its durable length
    /// plus a seeded fraction of the unsynced tail; with probability
    /// ~1/4 one byte inside the surviving unsynced slice is flipped,
    /// modeling a torn sector. Deterministic for a given `seed`.
    pub fn crash(&self, seed: u64) {
        let mut rng = Rng::new(seed);
        let mut files = self.lock();
        let mut names: Vec<String> = files.keys().cloned().collect();
        names.sort(); // deterministic iteration order
        for name in names {
            let file = files.get_mut(&name).expect("file exists");
            let tail = file.data.len() - file.durable_len;
            if tail == 0 {
                continue;
            }
            let kept = rng.usize_in(0, tail + 1);
            file.data.truncate(file.durable_len + kept);
            if kept > 0 && rng.u64_below(4) == 0 {
                let victim = file.durable_len + rng.usize_in(0, kept);
                file.data[victim] ^= 1 << rng.u32_in(0, 8);
            }
        }
    }

    /// Current length of a file (testing hook).
    pub fn len(&self, path: &str) -> usize {
        self.lock().get(path).map_or(0, |f| f.data.len())
    }

    /// Whether the filesystem holds no files.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Flips one bit at `offset` of `path` (direct corruption hook for
    /// targeted recovery tests).
    pub fn corrupt_byte(&self, path: &str, offset: usize) {
        let mut files = self.lock();
        if let Some(file) = files.get_mut(path) {
            if offset < file.data.len() {
                file.data[offset] ^= 0x01;
            }
        }
    }
}

fn not_found(path: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file `{path}`"))
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.lock()
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| not_found(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let files = self.lock();
        let file = files.get(path).ok_or_else(|| not_found(path))?;
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= file.data.len());
        match end {
            Some(end) => Ok(file.data[start..end].to_vec()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("range {offset}+{len} past end of `{path}`"),
            )),
        }
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<usize> {
        let mut files = self.lock();
        let file = files.entry(path.to_string()).or_default();
        file.data.extend_from_slice(data);
        Ok(data.len())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.entry(path.to_string()).or_default();
        file.data = data.to_vec();
        file.durable_len = 0;
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.data.truncate(len as usize);
        file.durable_len = file.durable_len.min(file.data.len());
        Ok(())
    }

    fn fsync(&self, path: &str) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.durable_len = file.data.len();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.lock().remove(path);
        Ok(())
    }

    fn create_dir_all(&self, _path: &str) -> io::Result<()> {
        Ok(())
    }
}

/// The injectable disk-fault kinds, mirroring `mrp-resilience`'s
/// pipeline fault kinds at the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskFaultKind {
    /// The nth write operation (append or whole-file write) fails with
    /// `ENOSPC`-style `StorageFull`.
    Enospc,
    /// The nth read operation fails with an I/O error.
    Eio,
    /// The nth append persists only a seeded prefix of its bytes, then
    /// reports the shortfall.
    ShortWrite,
    /// The nth fsync silently does nothing: it reports success but
    /// commits no bytes (lying disk).
    FsyncDrop,
    /// Every operation after the nth write fails (`crash@N`): the
    /// process is as good as dead to the store from that point on.
    Crash,
}

impl DiskFaultKind {
    /// Stable lowercase name, as written in spec strings.
    pub fn name(self) -> &'static str {
        match self {
            DiskFaultKind::Enospc => "enospc",
            DiskFaultKind::Eio => "eio",
            DiskFaultKind::ShortWrite => "shortwrite",
            DiskFaultKind::FsyncDrop => "fsyncdrop",
            DiskFaultKind::Crash => "crash",
        }
    }

    /// All kinds, for exhaustive matrix sweeps.
    pub const ALL: [DiskFaultKind; 5] = [
        DiskFaultKind::Enospc,
        DiskFaultKind::Eio,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::FsyncDrop,
        DiskFaultKind::Crash,
    ];

    fn parse(s: &str) -> Option<DiskFaultKind> {
        DiskFaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A parsed, seeded schedule of disk faults.
///
/// Uses the same `kind@target,seed=N` vocabulary as
/// [`mrp_resilience::FaultPlan`](mrp_resilience::FaultPlan), with
/// operation ordinals as targets: `enospc@3` fails the third write,
/// `eio@1` the first read, `shortwrite@2` tears the second append,
/// `fsyncdrop@1` swallows the first fsync, `crash@4` kills everything
/// after the fourth write. `*` arms a kind at every ordinal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiskFaultPlan {
    faults: Vec<(DiskFaultKind, Option<u64>)>,
    /// Seed for short-write lengths.
    pub seed: u64,
}

impl DiskFaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan::default()
    }

    /// Parses a spec string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<DiskFaultPlan, String> {
        let (entries, seed) = mrp_resilience::parse_spec_entries(spec)?;
        let mut plan = DiskFaultPlan {
            seed,
            ..DiskFaultPlan::default()
        };
        for entry in entries {
            let kind = DiskFaultKind::parse(&entry.kind).ok_or_else(|| {
                format!(
                    "unknown disk fault kind `{}` (use enospc|eio|shortwrite|fsyncdrop|crash)",
                    entry.kind
                )
            })?;
            let ordinal = if entry.target == "*" {
                None
            } else {
                Some(entry.target.parse::<u64>().map_err(|_| {
                    format!(
                        "disk fault target `{}` is not an operation ordinal (1-based) or `*`",
                        entry.target
                    )
                })?)
            };
            plan.faults.push((kind, ordinal));
        }
        Ok(plan)
    }

    /// Whether `kind` fires at 1-based operation ordinal `n`.
    pub fn armed(&self, kind: DiskFaultKind, n: u64) -> bool {
        self.faults
            .iter()
            .any(|&(k, ord)| k == kind && ord.is_none_or(|o| o == n))
    }

    /// Whether no faults are armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A [`Vfs`] decorator that injects the faults of a [`DiskFaultPlan`]
/// into an inner filesystem, counting operations per category.
pub struct FaultVfs<V: Vfs> {
    inner: V,
    plan: DiskFaultPlan,
    reads: AtomicU64,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    crashed: std::sync::atomic::AtomicBool,
}

impl<V: Vfs> FaultVfs<V> {
    /// Wraps `inner` with a fault schedule.
    pub fn new(inner: V, plan: DiskFaultPlan) -> FaultVfs<V> {
        FaultVfs {
            inner,
            plan,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            crashed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The wrapped filesystem (to inspect state after a fault run).
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Whether a `crash@N` fault has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn check_crashed(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(io::Error::other("simulated crash: process is dead"));
        }
        Ok(())
    }

    fn next_write(&self) -> io::Result<u64> {
        self.check_crashed()?;
        let n = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.armed(DiskFaultKind::Crash, n) {
            self.crashed.store(true, Ordering::SeqCst);
        }
        if self.plan.armed(DiskFaultKind::Enospc, n) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC at write #{n}"),
            ));
        }
        Ok(n)
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.check_crashed()?;
        let n = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.armed(DiskFaultKind::Eio, n) {
            return Err(io::Error::other(format!("injected EIO at read #{n}")));
        }
        self.inner.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.check_crashed()?;
        let n = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.armed(DiskFaultKind::Eio, n) {
            return Err(io::Error::other(format!("injected EIO at read #{n}")));
        }
        self.inner.read_range(path, offset, len)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<usize> {
        let n = self.next_write()?;
        if self.plan.armed(DiskFaultKind::ShortWrite, n) && !data.is_empty() {
            // Persist a seeded strict prefix, then report the shortfall.
            let mut rng = Rng::new(self.plan.seed ^ n);
            let kept = rng.usize_in(0, data.len());
            self.inner.append(path, &data[..kept])?;
            return Ok(kept);
        }
        self.inner.append(path, data)
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let n = self.next_write()?;
        if self.plan.armed(DiskFaultKind::ShortWrite, n) && !data.is_empty() {
            let mut rng = Rng::new(self.plan.seed ^ n);
            let kept = rng.usize_in(0, data.len());
            self.inner.write_file(path, &data[..kept])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write at write #{n}"),
            ));
        }
        self.inner.write_file(path, data)
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        self.next_write()?;
        self.inner.truncate(path, len)
    }

    fn fsync(&self, path: &str) -> io::Result<()> {
        self.check_crashed()?;
        let n = self.fsyncs.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.armed(DiskFaultKind::FsyncDrop, n) {
            // Lying disk: report success, commit nothing.
            return Ok(());
        }
        self.inner.fsync(path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.next_write()?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.next_write()?;
        self.inner.remove(path)
    }

    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        self.check_crashed()?;
        self.inner.create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_round_trips() {
        let fs = MemVfs::new();
        assert!(fs.read("a").is_err());
        assert_eq!(fs.append("a", b"hello ").unwrap(), 6);
        assert_eq!(fs.append("a", b"world").unwrap(), 5);
        assert_eq!(fs.read("a").unwrap(), b"hello world");
        assert_eq!(fs.read_range("a", 6, 5).unwrap(), b"world");
        assert!(fs.read_range("a", 6, 6).is_err());
        fs.truncate("a", 5).unwrap();
        assert_eq!(fs.read("a").unwrap(), b"hello");
        fs.write_file("b", b"tmp").unwrap();
        fs.rename("b", "a").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"tmp");
        fs.remove("a").unwrap();
        assert!(fs.read("a").is_err());
    }

    #[test]
    fn crash_keeps_durable_prefix_and_cuts_volatile_tail() {
        for seed in 0..32 {
            let fs = MemVfs::new();
            fs.append("log", b"durable-part").unwrap();
            fs.fsync("log").unwrap();
            fs.append("log", b"volatile-tail").unwrap();
            fs.crash(seed);
            let data = fs.read("log").unwrap();
            assert!(data.len() >= b"durable-part".len(), "lost durable bytes");
            assert_eq!(&data[..12], b"durable-part", "durable bytes corrupted");
            assert!(data.len() <= b"durable-partvolatile-tail".len());
        }
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let build = || {
            let fs = MemVfs::new();
            fs.append("log", b"0123456789").unwrap();
            fs.fsync("log").unwrap();
            fs.append("log", b"abcdefghij").unwrap();
            fs
        };
        let a = build();
        let b = build();
        a.crash(7);
        b.crash(7);
        assert_eq!(a.read("log").unwrap(), b.read("log").unwrap());
    }

    #[test]
    fn fault_plan_parses_shared_vocabulary() {
        let plan = DiskFaultPlan::parse("enospc@3, eio@1, shortwrite@*, seed=9").unwrap();
        assert_eq!(plan.seed, 9);
        assert!(plan.armed(DiskFaultKind::Enospc, 3));
        assert!(!plan.armed(DiskFaultKind::Enospc, 2));
        assert!(plan.armed(DiskFaultKind::Eio, 1));
        assert!(plan.armed(DiskFaultKind::ShortWrite, 1));
        assert!(plan.armed(DiskFaultKind::ShortWrite, 99));
        assert!(DiskFaultPlan::parse("explode@1").is_err());
        assert!(DiskFaultPlan::parse("enospc@soon").is_err());
        assert!(DiskFaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn injected_faults_fire_on_schedule() {
        let plan = DiskFaultPlan::parse("enospc@2,eio@1,seed=1").unwrap();
        let fs = FaultVfs::new(MemVfs::new(), plan);
        assert_eq!(fs.append("a", b"ok").unwrap(), 2); // write #1 clean
        let err = fs.append("a", b"no").unwrap_err(); // write #2 ENOSPC
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(fs.read("a").is_err()); // read #1 EIO
        assert_eq!(fs.read("a").unwrap(), b"ok"); // read #2 clean
    }

    #[test]
    fn short_write_persists_a_strict_prefix() {
        let plan = DiskFaultPlan::parse("shortwrite@1,seed=5").unwrap();
        let fs = FaultVfs::new(MemVfs::new(), plan);
        let n = fs.append("a", b"0123456789").unwrap();
        assert!(n < 10, "short write reported {n} bytes");
        assert_eq!(fs.inner().len("a"), n);
    }

    #[test]
    fn crash_fault_kills_every_later_operation() {
        let plan = DiskFaultPlan::parse("crash@1").unwrap();
        let fs = FaultVfs::new(MemVfs::new(), plan);
        // The crashing write itself still lands (death is *after* it).
        assert_eq!(fs.append("a", b"x").unwrap(), 1);
        assert!(fs.crashed());
        assert!(fs.append("a", b"y").is_err());
        assert!(fs.read("a").is_err());
        assert!(fs.fsync("a").is_err());
    }

    #[test]
    fn fsync_drop_leaves_bytes_volatile() {
        let plan = DiskFaultPlan::parse("fsyncdrop@1").unwrap();
        let fs = FaultVfs::new(MemVfs::new(), plan);
        fs.append("a", b"data").unwrap();
        fs.fsync("a").unwrap(); // lies
        fs.inner().crash(3);
        // With the fsync dropped, the crash may take any part of the
        // tail — all we know is the durable prefix is empty.
        assert!(fs.inner().len("a") <= 4);
    }
}
