//! The persistent synthesis cache: a bounded LRU front over a
//! checksummed append-only log.
//!
//! # Crash safety
//!
//! Every mutation is an append of one self-checking record;
//! [`PersistentStore::open`] replays the log and repairs whatever a
//! crash left behind:
//!
//! * a **torn tail** (the log ends mid-record) is truncated away — the
//!   interrupted append never happened;
//! * a **corrupt record** (bad magic, absurd lengths, checksum
//!   mismatch) is skipped by resyncing to the next record magic, and
//!   the log is compacted so the damage does not persist;
//! * a log that cannot be read at all leaves the store in **degraded**
//!   memory-only mode rather than failing startup.
//!
//! Compaction rewrites the live records to `cache.log.tmp`, fsyncs,
//! and atomically renames over `cache.log` — a crash at any point
//! leaves either the old log or the new one, never a mix.
//!
//! # Degraded mode
//!
//! No I/O error is ever surfaced to the synthesis path. The first disk
//! error flips the store into degraded mode: lookups and stores keep
//! working against the bounded LRU alone, `store.degraded` ticks once,
//! and [`PersistentStore::degraded`] lets `/healthz` report the state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use mrp_batch::{BatchCell, CacheStats, SynthCache};

use crate::lru::LruMap;
use crate::record::{self, Decoded};
use crate::vfs::Vfs;

/// File name of the append-only log inside the store directory.
pub const LOG_FILE: &str = "cache.log";

/// File name of the compaction temp file.
pub const TMP_FILE: &str = "cache.log.tmp";

/// Tuning knobs for [`PersistentStore::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Entries held by the in-memory LRU front (and the entire
    /// capacity when degraded).
    pub lru_capacity: usize,
    /// Compaction trigger: once the log exceeds this many bytes *and*
    /// less than half of it is live, it is rewritten.
    pub compact_bytes: u64,
    /// Fsync after every append. Off by default: the log is a cache,
    /// so losing the unsynced tail on power loss costs recomputation,
    /// not correctness. Tests turn it on to pin down durability.
    pub fsync_each: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            lru_capacity: 1024,
            compact_bytes: 1 << 20,
            fsync_each: false,
        }
    }
}

/// What [`PersistentStore::open`] found and fixed while replaying the
/// log. Also exported as `store.recover.*` observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Valid records replayed (including superseded duplicates).
    pub records: u64,
    /// Corrupt records skipped by resyncing.
    pub corrupt: u64,
    /// Whether a torn tail was truncated away.
    pub torn_tail: bool,
    /// Whether recovery compacted the log (it does whenever corruption
    /// was found, so damage is not replayed forever).
    pub compacted: bool,
}

/// Byte position and length of a live record in the log.
type IndexEntry = (u64, usize);

struct Inner {
    lru: LruMap<Vec<i64>, Result<BatchCell, String>>,
    /// Latest on-disk record per key.
    index: HashMap<Vec<i64>, IndexEntry>,
    /// Total log length in bytes.
    log_len: u64,
    /// Bytes of the log occupied by latest-version records.
    live_bytes: u64,
}

/// A crash-safe disk-backed synthesis cache implementing
/// [`SynthCache`].
///
/// Construction never fails: whatever goes wrong with the disk, the
/// caller gets a working (possibly memory-only) cache. All I/O flows
/// through the [`Vfs`] the store was opened with, which is how the
/// fault-injection tests drive every error path deterministically.
pub struct PersistentStore {
    vfs: Arc<dyn Vfs>,
    log_path: String,
    tmp_path: String,
    options: StoreOptions,
    inner: Mutex<Inner>,
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    compactions: AtomicU64,
    recovery: RecoveryStats,
}

impl PersistentStore {
    /// Opens (or creates) the store in `dir`, replaying and repairing
    /// the log. Never fails: unreadable storage yields a degraded
    /// memory-only store.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &str, options: StoreOptions) -> PersistentStore {
        let sep = if dir.ends_with('/') || dir.is_empty() {
            ""
        } else {
            "/"
        };
        let store = PersistentStore {
            log_path: format!("{dir}{sep}{LOG_FILE}"),
            tmp_path: format!("{dir}{sep}{TMP_FILE}"),
            inner: Mutex::new(Inner {
                lru: LruMap::new(options.lru_capacity),
                index: HashMap::new(),
                log_len: 0,
                live_bytes: 0,
            }),
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            recovery: RecoveryStats::default(),
            options,
            vfs,
        };
        let mut store = store;
        store.recover(dir);
        store
    }

    /// Replays the log into the index, truncating torn tails and
    /// compacting past corrupt records. Any unrepairable error
    /// degrades the store instead of failing.
    fn recover(&mut self, dir: &str) {
        if self.vfs.create_dir_all(dir).is_err() {
            self.degrade("create_dir");
            return;
        }
        // A leftover temp file is an interrupted compaction that never
        // published; the old log is still authoritative.
        let _ = self.vfs.remove(&self.tmp_path);

        let buf = match self.vfs.read(&self.log_path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(_) => {
                self.degrade("read_log");
                return;
            }
        };

        let mut stats = RecoveryStats::default();
        // Scan order matters: later records supersede earlier ones.
        let mut live: Vec<(Vec<i64>, Result<BatchCell, String>, IndexEntry)> = Vec::new();
        let mut offset = 0usize;
        while offset < buf.len() {
            match record::decode_at(&buf, offset) {
                Decoded::Ok { record, len } => {
                    stats.records += 1;
                    live.push((record.key, record.value, (offset as u64, len)));
                    offset += len;
                }
                Decoded::Torn => {
                    stats.torn_tail = true;
                    if self.vfs.truncate(&self.log_path, offset as u64).is_err() {
                        self.degrade("truncate_torn");
                        self.recovery = stats;
                        return;
                    }
                    break;
                }
                Decoded::Corrupt => {
                    stats.corrupt += 1;
                    match record::next_magic(&buf, offset + 1) {
                        Some(next) => offset = next,
                        None => break,
                    }
                }
            }
        }

        // Deduplicate: last occurrence of each key wins, but the
        // first-seen order is kept so compaction output is stable.
        let mut latest: HashMap<Vec<i64>, usize> = HashMap::new();
        for (i, (key, _, _)) in live.iter().enumerate() {
            latest.insert(key.clone(), i);
        }

        {
            let mut inner = self.lock();
            inner.log_len = offset as u64;
            inner.index.clear();
            inner.live_bytes = 0;
            for (i, (key, value, entry)) in live.iter().enumerate() {
                if latest[key] != i {
                    continue;
                }
                inner.index.insert(key.clone(), *entry);
                inner.live_bytes += entry.1 as u64;
                // Warm the LRU in log order: recently written records
                // end up most-recently-used.
                inner.lru.insert(key.clone(), value.clone());
            }
        }

        if stats.corrupt > 0 && !self.degraded() {
            // Rewrite now so damaged bytes are not rescanned forever.
            stats.compacted = self.compact_locked(&mut self.lock());
        }

        mrp_obs::counter_add("store.recover.records", stats.records);
        mrp_obs::counter_add("store.recover.corrupt", stats.corrupt);
        if stats.torn_tail {
            mrp_obs::counter_add("store.recover.torn_tail", 1);
        }
        self.recovery = stats;
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the disk tier has been lost and the store is running
    /// memory-only.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// What recovery found when the store was opened.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Completed log compactions (including the recovery one).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::SeqCst)
    }

    fn degrade(&self, cause: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            mrp_obs::counter_add("store.degraded", 1);
            mrp_obs::counter_add(&format!("store.degraded.{cause}"), 1);
        }
    }

    /// Looks up `key`: LRU first, then the log through the index. Disk
    /// trouble degrades to a miss — never an error.
    pub fn lookup(&self, key: &[i64]) -> Option<Result<BatchCell, String>> {
        let mut inner = self.lock();
        if let Some(value) = inner.lru.get(&key.to_vec()) {
            let value = value.clone();
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            mrp_obs::counter_add("store.hit.lru", 1);
            return Some(value);
        }
        if self.degraded() {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            mrp_obs::counter_add("store.miss", 1);
            return None;
        }
        let Some(&(offset, len)) = inner.index.get(key) else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            mrp_obs::counter_add("store.miss", 1);
            return None;
        };
        match self.vfs.read_range(&self.log_path, offset, len) {
            Ok(bytes) => match record::decode_at(&bytes, 0) {
                Decoded::Ok { record, .. } if record.key == key => {
                    inner.lru.insert(record.key, record.value.clone());
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    mrp_obs::counter_add("store.hit.disk", 1);
                    Some(record.value)
                }
                _ => {
                    // The indexed bytes no longer decode (or decode to
                    // the wrong key): drop the entry and miss. The
                    // value will be recomputed and re-appended.
                    inner.live_bytes = inner.live_bytes.saturating_sub(len as u64);
                    inner.index.remove(key);
                    drop(inner);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    mrp_obs::counter_add("store.lookup.corrupt", 1);
                    None
                }
            },
            Err(_) => {
                drop(inner);
                self.degrade("read_range");
                self.misses.fetch_add(1, Ordering::Relaxed);
                mrp_obs::counter_add("store.miss", 1);
                None
            }
        }
    }

    /// Stores one synthesis result: into the LRU always, and appended
    /// to the log unless degraded. Append failures repair the log
    /// where possible and degrade otherwise.
    pub fn store(&self, key: Vec<i64>, value: Result<BatchCell, String>) {
        let mut inner = self.lock();
        inner.lru.insert(key.clone(), value.clone());
        if self.degraded() {
            return;
        }
        let bytes = record::encode(&key, &value);
        let at = inner.log_len;
        match self.vfs.append(&self.log_path, &bytes) {
            Ok(n) if n == bytes.len() => {
                if self.options.fsync_each && self.vfs.fsync(&self.log_path).is_err() {
                    // The bytes are on disk but not provably durable;
                    // the record is still valid, so keep it and only
                    // flag the tier.
                    drop(inner);
                    self.degrade("fsync");
                    return;
                }
                inner.log_len = at + bytes.len() as u64;
                if let Some((_, old_len)) = inner.index.insert(key, (at, bytes.len())) {
                    inner.live_bytes = inner.live_bytes.saturating_sub(old_len as u64);
                }
                inner.live_bytes += bytes.len() as u64;
                self.maybe_compact(&mut inner);
            }
            Ok(_) => {
                // Short write: a torn record now ends the log. Cut it
                // back to the last good byte; recovery would do the
                // same, but repairing now keeps the log readable.
                mrp_obs::counter_add("store.append.short", 1);
                if self.vfs.truncate(&self.log_path, at).is_err() {
                    drop(inner);
                    self.degrade("truncate_short");
                }
                // Not indexed: the value lives on in the LRU only.
            }
            Err(_) => {
                drop(inner);
                self.degrade("append");
            }
        }
    }

    fn maybe_compact(&self, inner: &mut MutexGuard<'_, Inner>) {
        if inner.log_len > self.options.compact_bytes && inner.live_bytes * 2 < inner.log_len {
            self.compact_locked(inner);
        }
    }

    /// Rewrites the log to contain exactly the live records: encode →
    /// temp file → fsync → atomic rename. Returns whether the rewrite
    /// published. Errors degrade the store.
    fn compact_locked(&self, inner: &mut MutexGuard<'_, Inner>) -> bool {
        // Read back the live values through the index (the LRU may
        // have evicted some), in ascending offset order so compaction
        // preserves the append order of surviving records.
        let mut entries: Vec<(Vec<i64>, IndexEntry)> =
            inner.index.iter().map(|(k, &e)| (k.clone(), e)).collect();
        entries.sort_by_key(|&(_, (offset, _))| offset);

        let mut new_log = Vec::new();
        let mut new_index: HashMap<Vec<i64>, IndexEntry> = HashMap::new();
        for (key, (offset, len)) in entries {
            let value = match inner.lru.get(&key).cloned() {
                Some(v) => v,
                None => match self.vfs.read_range(&self.log_path, offset, len) {
                    Ok(bytes) => match record::decode_at(&bytes, 0) {
                        Decoded::Ok { record, .. } if record.key == key => record.value,
                        _ => {
                            mrp_obs::counter_add("store.lookup.corrupt", 1);
                            continue; // drop the damaged record
                        }
                    },
                    Err(_) => {
                        self.degrade("compact_read");
                        return false;
                    }
                },
            };
            let bytes = record::encode(&key, &value);
            new_index.insert(key, (new_log.len() as u64, bytes.len()));
            new_log.extend_from_slice(&bytes);
        }

        if self.vfs.write_file(&self.tmp_path, &new_log).is_err()
            || self.vfs.fsync(&self.tmp_path).is_err()
            || self.vfs.rename(&self.tmp_path, &self.log_path).is_err()
        {
            let _ = self.vfs.remove(&self.tmp_path);
            self.degrade("compact_publish");
            return false;
        }
        inner.log_len = new_log.len() as u64;
        inner.live_bytes = new_log.len() as u64;
        inner.index = new_index;
        self.compactions.fetch_add(1, Ordering::SeqCst);
        mrp_obs::counter_add("store.compactions", 1);
        true
    }

    /// Forces a compaction now (testing and `mrpf`-tool hook).
    pub fn compact(&self) -> bool {
        if self.degraded() {
            return false;
        }
        self.compact_locked(&mut self.lock())
    }

    /// Entry count, counting both tiers (disk index and, when entries
    /// exist only in memory, the LRU).
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.index.len().max(inner.lru.len())
    }

    /// Whether the store holds no entries in either tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SynthCache for PersistentStore {
    fn lookup(&self, key: &[i64]) -> Option<Result<BatchCell, String>> {
        PersistentStore::lookup(self, key)
    }

    fn store(&self, key: Vec<i64>, value: Result<BatchCell, String>) {
        PersistentStore::store(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("PersistentStore")
            .field("log_path", &self.log_path)
            .field("entries", &inner.index.len())
            .field("log_len", &inner.log_len)
            .field("live_bytes", &inner.live_bytes)
            .field("degraded", &self.degraded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{DiskFaultPlan, FaultVfs, MemVfs};

    fn cell(adders: usize) -> Result<BatchCell, String> {
        Ok(BatchCell {
            rung: "mrp+cse".to_string(),
            adders,
            critical_path: 2,
            degradations: 0,
            lint_warnings: 0,
        })
    }

    fn open(vfs: Arc<dyn Vfs>) -> PersistentStore {
        PersistentStore::open(vfs, "store", StoreOptions::default())
    }

    #[test]
    fn round_trips_across_reopen() {
        let vfs = Arc::new(MemVfs::new());
        let store = open(vfs.clone());
        store.store(vec![7, 9], cell(3));
        store.store(vec![1, 2, 3], Err("no ladder".to_string()));
        assert_eq!(store.lookup(&[7, 9]), Some(cell(3)));
        drop(store);

        let store = open(vfs);
        assert!(!store.degraded());
        assert_eq!(store.recovery().records, 2);
        assert_eq!(store.lookup(&[7, 9]), Some(cell(3)));
        assert_eq!(store.lookup(&[1, 2, 3]), Some(Err("no ladder".to_string())));
        assert_eq!(store.lookup(&[9, 9]), None);
    }

    #[test]
    fn later_records_supersede_earlier_ones() {
        let vfs = Arc::new(MemVfs::new());
        let store = open(vfs.clone());
        store.store(vec![5], cell(1));
        store.store(vec![5], cell(2));
        drop(store);
        let store = open(vfs);
        assert_eq!(store.lookup(&[5]), Some(cell(2)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let vfs = Arc::new(MemVfs::new());
        let store = open(vfs.clone());
        store.store(vec![7, 9], cell(3));
        let good = vfs.len(&store.log_path);
        store.store(vec![4, 4], cell(4));
        drop(store);
        // Tear the second record in half.
        let torn = good + (vfs.len("store/cache.log") - good) / 2;
        vfs.truncate("store/cache.log", torn as u64).unwrap();

        let store = open(vfs.clone());
        assert!(store.recovery().torn_tail);
        assert_eq!(store.recovery().records, 1);
        assert_eq!(vfs.len("store/cache.log"), good, "tail not cut");
        assert_eq!(store.lookup(&[7, 9]), Some(cell(3)));
        assert_eq!(store.lookup(&[4, 4]), None);
        // The repaired log appends cleanly again.
        store.store(vec![4, 4], cell(4));
        drop(store);
        let store = open(vfs);
        assert_eq!(store.lookup(&[4, 4]), Some(cell(4)));
    }

    #[test]
    fn corrupt_record_is_skipped_and_compacted_away() {
        let vfs = Arc::new(MemVfs::new());
        let store = open(vfs.clone());
        store.store(vec![1], cell(1));
        let first_len = vfs.len("store/cache.log");
        store.store(vec![2], cell(2));
        store.store(vec![3], cell(3));
        drop(store);
        vfs.corrupt_byte("store/cache.log", first_len + 6);

        let store = open(vfs.clone());
        assert!(!store.degraded());
        assert_eq!(store.recovery().corrupt, 1);
        assert!(store.recovery().compacted);
        assert_eq!(store.lookup(&[1]), Some(cell(1)));
        assert_eq!(store.lookup(&[2]), None, "damaged record must miss");
        assert_eq!(store.lookup(&[3]), Some(cell(3)));
        drop(store);

        // After compaction the damage is gone for good.
        let store = open(vfs);
        assert_eq!(store.recovery().corrupt, 0);
        assert_eq!(store.recovery().records, 2);
    }

    #[test]
    fn unreadable_log_degrades_instead_of_failing() {
        let plan = DiskFaultPlan::parse("eio@*").unwrap();
        let vfs = Arc::new(FaultVfs::new(MemVfs::new(), plan));
        vfs.inner().append("store/cache.log", b"whatever").unwrap();
        let store = open(vfs);
        assert!(store.degraded());
        // Memory-only service continues.
        store.store(vec![1], cell(1));
        assert_eq!(store.lookup(&[1]), Some(cell(1)));
        assert_eq!(store.lookup(&[2]), None);
    }

    // Write-operation ordinals in these plans count *every* mutating
    // vfs call: open() consumes write #1 removing any stale temp file,
    // so the first append is write #2.

    #[test]
    fn enospc_mid_run_degrades_but_keeps_serving() {
        let plan = DiskFaultPlan::parse("enospc@3").unwrap();
        let vfs = Arc::new(FaultVfs::new(MemVfs::new(), plan));
        let store = open(vfs);
        store.store(vec![1], cell(1)); // write #1 lands
        assert!(!store.degraded());
        store.store(vec![2], cell(2)); // write #2: disk full
        assert!(store.degraded());
        // Both values still served from memory.
        assert_eq!(store.lookup(&[1]), Some(cell(1)));
        assert_eq!(store.lookup(&[2]), Some(cell(2)));
    }

    #[test]
    fn short_write_repairs_the_tail() {
        let plan = DiskFaultPlan::parse("shortwrite@3,seed=3").unwrap();
        let vfs = Arc::new(FaultVfs::new(MemVfs::new(), plan));
        let store = open(vfs.clone());
        store.store(vec![1], cell(1));
        let good = vfs.inner().len("store/cache.log");
        store.store(vec![2], cell(2)); // torn, then repaired
        assert_eq!(vfs.inner().len("store/cache.log"), good);
        assert!(!store.degraded());
        assert_eq!(store.lookup(&[2]), Some(cell(2))); // from LRU
        drop(store);
        let store = open(vfs);
        assert_eq!(store.recovery().records, 1);
        assert!(!store.recovery().torn_tail);
    }

    #[test]
    fn compaction_shrinks_a_churned_log() {
        let vfs = Arc::new(MemVfs::new());
        let store = PersistentStore::open(
            vfs.clone(),
            "store",
            StoreOptions {
                compact_bytes: 256,
                ..StoreOptions::default()
            },
        );
        for round in 0..40 {
            store.store(vec![1, 2], cell(round)); // same key over and over
        }
        assert!(store.compactions() > 0, "no compaction happened");
        assert_eq!(store.lookup(&[1, 2]), Some(cell(39)));
        drop(store);
        let store = open(vfs.clone());
        assert_eq!(store.lookup(&[1, 2]), Some(cell(39)));
        assert!(vfs.len("store/cache.log") < 256);
        assert_eq!(vfs.len("store/cache.log.tmp"), 0, "tmp file left behind");
    }

    #[test]
    fn interrupted_compaction_leaves_old_log_authoritative() {
        let vfs = Arc::new(MemVfs::new());
        let store = open(vfs.clone());
        store.store(vec![1], cell(1));
        drop(store);
        // Simulate a compaction that wrote its temp file but crashed
        // before the rename.
        vfs.write_file("store/cache.log.tmp", b"half-written garbage")
            .unwrap();
        let store = open(vfs.clone());
        assert_eq!(store.lookup(&[1]), Some(cell(1)));
        assert_eq!(vfs.len("store/cache.log.tmp"), 0, "stale tmp kept");
    }

    #[test]
    fn disk_value_survives_lru_eviction() {
        let vfs = Arc::new(MemVfs::new());
        let store = PersistentStore::open(
            vfs,
            "store",
            StoreOptions {
                lru_capacity: 1,
                ..StoreOptions::default()
            },
        );
        store.store(vec![1], cell(1));
        store.store(vec![2], cell(2)); // evicts [1] from the LRU
        assert_eq!(store.lookup(&[1]), Some(cell(1))); // from disk
        assert_eq!(store.lookup(&[2]), Some(cell(2)));
        let stats = SynthCache::stats(&store);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 2);
    }
}
