//! mrp-store: the crash-safe persistent tier of the synthesis cache.
//!
//! `mrpf serve` and `mrpf batch` memoize synthesis results in
//! [`mrp_batch::MemoCache`], which dies with the process. This crate
//! adds the disk tier underneath the same [`SynthCache`] interface:
//!
//! * [`PersistentStore`] — a bounded-LRU memory front over an
//!   append-only log of checksummed records (see [`record`] for the
//!   byte format), keyed on `normalize_coeffs` vectors like every
//!   other cache tier.
//! * **Crash safety** — recovery truncates torn tails, resyncs past
//!   corrupt records, and compacts damage away; an interrupted
//!   compaction is harmless because publishing is a temp-file +
//!   fsync + atomic-rename. Opening a store never fails: unusable
//!   storage degrades it to memory-only mode instead.
//! * [`Vfs`] — the tiny fallible filesystem trait all store I/O flows
//!   through, with a production [`RealVfs`], a deterministic
//!   [`MemVfs`] whose [`MemVfs::crash`] models power loss mid-write,
//!   and a [`FaultVfs`] decorator that injects `ENOSPC`, `EIO`, short
//!   writes, lying fsyncs, and crashes on a seeded
//!   [`DiskFaultPlan`] schedule (the same `kind@target,seed=N`
//!   vocabulary as `mrp-resilience` fault plans).
//!
//! Everything is observable through `mrp-obs`: `store.recover.*`
//! counters for what startup repaired, `store.hit.{lru,disk}` /
//! `store.miss` for traffic, and `store.degraded` for tier loss.

#![warn(missing_docs)]

mod lru;
pub mod record;
mod store;
mod vfs;

pub use lru::LruMap;
pub use store::{PersistentStore, RecoveryStats, StoreOptions, LOG_FILE, TMP_FILE};
pub use vfs::{DiskFaultKind, DiskFaultPlan, FaultVfs, MemVfs, RealVfs, Vfs};

pub use mrp_batch::SynthCache;
