//! The on-disk record format: one checksummed entry of the append-only
//! log.
//!
//! ```text
//! offset  size       field
//! 0       4          magic "MRS1"
//! 4       4          key_len   (i64 count, LE; ≤ MAX_KEY_LEN)
//! 8       4          value_len (bytes, LE; ≤ MAX_VALUE_LEN)
//! 12      key_len*8  key: normalized coefficients, i64 LE each
//! …       value_len  value: serialized synthesis result (see below)
//! …       8          FNV-1a 64 checksum of everything above, LE
//! ```
//!
//! The value is a `US`-separated (0x1F) text encoding of the
//! deterministic [`BatchCell`] slice — `ok␟rung␟adders␟depth␟degr␟warn`
//! — or `err␟message` for a failed synthesis. Text keeps records
//! greppable in a hexdump; the checksum covers the whole record, so any
//! bit flip in header, key, or value is detected.
//!
//! Decoding distinguishes **torn** (the buffer ends mid-record: a crash
//! cut an append short — recover by truncating) from **corrupt** (magic,
//! length bounds, checksum, or value syntax violated: bytes were damaged
//! — recover by resyncing to the next magic marker).

use mrp_batch::BatchCell;

/// Record magic, doubling as the format version.
pub const MAGIC: [u8; 4] = *b"MRS1";

/// Header bytes before the key (magic + two length fields).
pub const HEADER_LEN: usize = 12;

/// Trailing checksum bytes.
pub const CHECKSUM_LEN: usize = 8;

/// Cap on key length (coefficient count). Real filters are ≤ a few
/// hundred taps; anything larger in a length field is corruption.
pub const MAX_KEY_LEN: u32 = 1 << 16;

/// Cap on encoded value bytes.
pub const MAX_VALUE_LEN: u32 = 1 << 20;

const US: char = '\u{1f}';

/// One decoded log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Normalized coefficient vector (the cache key).
    pub key: Vec<i64>,
    /// The deterministic synthesis result for that key.
    pub value: Result<BatchCell, String>,
}

/// What [`decode_at`] found at an offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A whole valid record; `len` is its encoded size in bytes.
    Ok {
        /// The decoded record.
        record: Record,
        /// Encoded length, for advancing the scan offset.
        len: usize,
    },
    /// The buffer ends before this record completes (torn tail).
    Torn,
    /// The bytes at this offset are not a valid record.
    Corrupt,
}

/// FNV-1a 64-bit over `data` (the same hash family `mrp-ptest` seeds
/// with — cheap, dependency-free, and plenty for torn/flipped-bit
/// detection; this is a cache, not a cryptosystem).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn encode_value(value: &Result<BatchCell, String>) -> String {
    match value {
        Ok(cell) => format!(
            "ok{US}{}{US}{}{US}{}{US}{}{US}{}",
            cell.rung, cell.adders, cell.critical_path, cell.degradations, cell.lint_warnings
        ),
        Err(message) => format!("err{US}{message}"),
    }
}

fn decode_value(bytes: &[u8]) -> Option<Result<BatchCell, String>> {
    let text = std::str::from_utf8(bytes).ok()?;
    let (tag, rest) = text.split_once(US)?;
    match tag {
        // The error message is arbitrary text: everything after the
        // tag belongs to it, embedded separators included.
        "err" => Some(Err(rest.to_string())),
        "ok" => {
            let mut fields = rest.split(US);
            let rung = fields.next()?.to_string();
            let adders = fields.next()?.parse().ok()?;
            let critical_path = fields.next()?.parse().ok()?;
            let degradations = fields.next()?.parse().ok()?;
            let lint_warnings = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None;
            }
            Some(Ok(BatchCell {
                rung,
                adders,
                critical_path,
                degradations,
                lint_warnings,
            }))
        }
        _ => None,
    }
}

/// Encodes one record (always succeeds; lengths are caller-bounded by
/// the coefficient parser upstream).
pub fn encode(key: &[i64], value: &Result<BatchCell, String>) -> Vec<u8> {
    let value_bytes = encode_value(value).into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + key.len() * 8 + value_bytes.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value_bytes.len() as u32).to_le_bytes());
    for &coefficient in key {
        out.extend_from_slice(&coefficient.to_le_bytes());
    }
    out.extend_from_slice(&value_bytes);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

/// Attempts to decode one record at `offset` of `buf`.
pub fn decode_at(buf: &[u8], offset: usize) -> Decoded {
    let rest = &buf[offset..];
    if rest.len() < HEADER_LEN {
        return if rest.starts_with(&MAGIC[..rest.len().min(4)]) {
            Decoded::Torn
        } else {
            Decoded::Corrupt
        };
    }
    if rest[..4] != MAGIC {
        return Decoded::Corrupt;
    }
    let key_len = read_u32(rest, 4);
    let value_len = read_u32(rest, 8);
    if key_len > MAX_KEY_LEN || value_len > MAX_VALUE_LEN {
        return Decoded::Corrupt;
    }
    let total = HEADER_LEN + key_len as usize * 8 + value_len as usize + CHECKSUM_LEN;
    if rest.len() < total {
        return Decoded::Torn;
    }
    let body = &rest[..total - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(
        rest[total - CHECKSUM_LEN..total]
            .try_into()
            .expect("8 bytes"),
    );
    if fnv1a(body) != stored {
        return Decoded::Corrupt;
    }
    let mut key = Vec::with_capacity(key_len as usize);
    for i in 0..key_len as usize {
        let at = HEADER_LEN + i * 8;
        key.push(i64::from_le_bytes(
            rest[at..at + 8].try_into().expect("8 bytes"),
        ));
    }
    let value_start = HEADER_LEN + key_len as usize * 8;
    match decode_value(&rest[value_start..value_start + value_len as usize]) {
        Some(value) => Decoded::Ok {
            record: Record { key, value },
            len: total,
        },
        // Checksum passed but the value grammar is wrong: only possible
        // if a buggy writer produced it; refuse rather than guess.
        None => Decoded::Corrupt,
    }
}

/// Finds the next possible record start at or after `offset`: the next
/// occurrence of [`MAGIC`]. Used to resync the scan past a corrupt
/// record.
pub fn next_magic(buf: &[u8], offset: usize) -> Option<usize> {
    if offset >= buf.len() {
        return None;
    }
    buf[offset..]
        .windows(MAGIC.len())
        .position(|w| w == MAGIC)
        .map(|p| offset + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(adders: usize) -> Result<BatchCell, String> {
        Ok(BatchCell {
            rung: "mrp+cse".to_string(),
            adders,
            critical_path: 3,
            degradations: 0,
            lint_warnings: 1,
        })
    }

    #[test]
    fn encode_decode_round_trip() {
        for value in [cell(12), Err("ladder exhausted (mrp:panic)".to_string())] {
            let key = vec![35, 33, 17, 9, -27, 0, 1];
            let bytes = encode(&key, &value);
            match decode_at(&bytes, 0) {
                Decoded::Ok { record, len } => {
                    assert_eq!(record.key, key);
                    assert_eq!(record.value, value);
                    assert_eq!(len, bytes.len());
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
    }

    #[test]
    fn value_with_separator_in_error_text_survives() {
        // Error messages are arbitrary; embedded separators must not
        // split the message.
        let value: Result<BatchCell, String> = Err(format!("weird{US}message"));
        let bytes = encode(&[1], &value);
        match decode_at(&bytes, 0) {
            Decoded::Ok { record, .. } => match record.value {
                Err(m) => assert_eq!(m, format!("weird{US}message")),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let bytes = encode(&[7, 9], &cell(3));
        for cut in 1..bytes.len() {
            let outcome = decode_at(&bytes[..cut], 0);
            assert_eq!(outcome, Decoded::Torn, "cut at {cut}");
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = encode(&[70, 66, 17, 9], &cell(12));
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[position] ^= 1 << bit;
                match decode_at(&damaged, 0) {
                    Decoded::Corrupt | Decoded::Torn => {}
                    Decoded::Ok { record, .. } => {
                        panic!("flip at {position}.{bit} went undetected: {record:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn resync_finds_the_next_record() {
        let a = encode(&[1], &cell(1));
        let b = encode(&[2], &cell(2));
        let mut log = vec![0xFFu8; 13]; // garbage prefix
        let b_at = 13 + a.len();
        log.extend_from_slice(&a);
        log.extend_from_slice(&b);
        assert_eq!(decode_at(&log, 0), Decoded::Corrupt);
        assert_eq!(next_magic(&log, 1), Some(13));
        match decode_at(&log, 13) {
            Decoded::Ok { len, .. } => assert_eq!(13 + len, b_at),
            other => panic!("{other:?}"),
        }
        assert!(matches!(decode_at(&log, b_at), Decoded::Ok { .. }));
        assert_eq!(next_magic(&log, log.len()), None);
    }

    #[test]
    fn bogus_length_fields_are_corrupt_not_allocated() {
        let mut bytes = encode(&[1], &cell(1));
        // Blow up the key_len field to an absurd value.
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_at(&bytes, 0), Decoded::Corrupt);
    }
}
