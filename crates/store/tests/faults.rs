//! The corruption/recovery matrix: every injectable disk fault at many
//! schedule positions, plus seeded whole-lifecycle crash properties.
//!
//! The invariants under test, for *any* fault schedule:
//!
//! 1. the store never panics and never surfaces an I/O error to the
//!    synthesis path — worst case it degrades to memory-only mode;
//! 2. after any crash, reopening succeeds and every value it serves is
//!    the value originally stored (stale data may be lost, wrong data
//!    may not appear);
//! 3. recovery repairs the log so a second reopen finds nothing left
//!    to fix.

use std::sync::Arc;

use mrp_batch::BatchCell;
use mrp_ptest::run_cases;
use mrp_store::{
    DiskFaultKind, DiskFaultPlan, FaultVfs, MemVfs, PersistentStore, StoreOptions, SynthCache, Vfs,
};

fn cell(tag: i64) -> Result<BatchCell, String> {
    if tag % 5 == 4 {
        Err(format!("ladder exhausted for tag {tag}"))
    } else {
        Ok(BatchCell {
            rung: if tag % 2 == 0 { "mrp+cse" } else { "csd" }.to_string(),
            adders: (tag.unsigned_abs() % 64) as usize,
            critical_path: (tag.unsigned_abs() % 7) as u32,
            degradations: (tag.unsigned_abs() % 3) as usize,
            lint_warnings: (tag.unsigned_abs() % 2) as usize,
        })
    }
}

fn key(tag: i64) -> Vec<i64> {
    vec![2 * tag + 1, 7, -tag - 1] // odd leading entry: already normalized
}

fn options() -> StoreOptions {
    StoreOptions {
        lru_capacity: 8, // small, so the disk path is exercised
        compact_bytes: 512,
        fsync_each: true,
    }
}

/// Every fault kind, armed at each of the first 12 operation ordinals
/// and at `*`: the store must stay panic-free and keep answering
/// lookups (possibly degraded), and a clean reopen must only ever see
/// values that were stored.
#[test]
fn fault_matrix_never_panics_and_never_serves_garbage() {
    for kind in DiskFaultKind::ALL {
        let mut targets: Vec<String> = (1..=12).map(|n| n.to_string()).collect();
        targets.push("*".to_string());
        for target in targets {
            let plan = DiskFaultPlan::parse(&format!("{}@{target},seed=7", kind.name()))
                .expect("plan parses");
            let vfs = Arc::new(FaultVfs::new(MemVfs::new(), plan));
            let store = PersistentStore::open(vfs.clone(), "s", options());
            for tag in 0..10 {
                store.store(key(tag), cell(tag));
                // Whatever the faults did, a hit must be the truth.
                if let Some(got) = store.lookup(&key(tag)) {
                    assert_eq!(got, cell(tag), "{kind:?}@{target} corrupted a hit");
                }
            }
            // Reopen over the bare inner filesystem (no faults): only
            // stored values may appear in whatever the log retained.
            drop(store);
            let inner = Arc::new(MemVfs::new());
            if let Ok(bytes) = vfs.inner().read("s/cache.log") {
                inner.append("s/cache.log", &bytes).unwrap();
            }
            let reopened = PersistentStore::open(inner, "s", options());
            assert!(!reopened.degraded(), "{kind:?}@{target}: reopen degraded");
            for tag in 0..10 {
                if let Some(got) = reopened.lookup(&key(tag)) {
                    assert_eq!(got, cell(tag), "{kind:?}@{target} leaked bad data");
                }
            }
        }
    }
}

/// Crashing at a seeded power-loss point must never lose fsynced data
/// or invent unstored data, and recovery must converge: a second
/// reopen finds a clean log.
#[test]
fn seeded_crash_recovery_round_trip() {
    run_cases("store.crash_recovery_round_trip", 64, |rng| {
        let vfs = Arc::new(MemVfs::new());
        let store = PersistentStore::open(
            vfs.clone(),
            "s",
            StoreOptions {
                lru_capacity: 4,
                compact_bytes: rng.usize_in(128, 2048) as u64,
                fsync_each: rng.u64_below(2) == 0,
            },
        );
        let tags: Vec<i64> = (0..rng.i64_in(1, 20)).collect();
        for &tag in &tags {
            store.store(key(tag), cell(tag));
        }
        let fsynced = store.lookup(&[999]).is_none(); // touch the read path
        assert!(fsynced);
        drop(store);

        // Power loss: volatile tails vanish, one byte may tear.
        vfs.crash(rng.u64_below(u64::MAX));

        let store = PersistentStore::open(vfs.clone(), "s", options());
        assert!(!store.degraded(), "crash state must be repairable");
        let mut survivors = 0;
        for &tag in &tags {
            // A missing entry was lost to the crash, which is allowed;
            // a present entry must be exactly what was stored.
            if let Some(got) = store.lookup(&key(tag)) {
                assert_eq!(got, cell(tag), "recovered value differs from stored");
                survivors += 1;
            }
        }
        drop(store);

        // Convergence: recovery repaired the log in place, so a second
        // open sees a fully clean file and the same survivors.
        let store = PersistentStore::open(vfs, "s", options());
        let second = store.recovery();
        assert_eq!(second.corrupt, 0, "first recovery left corruption behind");
        assert!(!second.torn_tail, "first recovery left a torn tail");
        let again = tags
            .iter()
            .filter(|&&tag| store.lookup(&key(tag)).is_some())
            .count();
        assert_eq!(again, survivors, "second recovery changed the survivor set");
    });
}

/// With `fsync_each` on, a crash may only ever lose the records after
/// the last completed store — everything fsynced must survive.
#[test]
fn fsynced_records_survive_any_crash() {
    run_cases("store.fsynced_survive_crash", 48, |rng| {
        let vfs = Arc::new(MemVfs::new());
        let store = PersistentStore::open(
            vfs.clone(),
            "s",
            StoreOptions {
                lru_capacity: 2,
                compact_bytes: u64::MAX, // no compaction: pure appends
                fsync_each: true,
            },
        );
        let n = rng.i64_in(1, 12);
        for tag in 0..n {
            store.store(key(tag), cell(tag));
        }
        drop(store);
        vfs.crash(rng.u64_below(u64::MAX));

        let store = PersistentStore::open(vfs, "s", options());
        assert!(!store.degraded());
        for tag in 0..n {
            assert_eq!(
                store.lookup(&key(tag)),
                Some(cell(tag)),
                "fsynced record for tag {tag} was lost"
            );
        }
    });
}

/// Random operation soaks under random fault schedules: a shadow map
/// tracks ground truth; every hit must match it, under any
/// interleaving of stores, lookups, compactions, and faults.
#[test]
fn random_ops_under_random_fault_schedules() {
    run_cases("store.random_fault_soak", 96, |rng| {
        let mut spec = Vec::new();
        for _ in 0..rng.usize_in(0, 4) {
            let kind = DiskFaultKind::ALL[rng.usize_in(0, DiskFaultKind::ALL.len())];
            let target = if rng.u64_below(4) == 0 {
                "*".to_string()
            } else {
                rng.u64_below(40).saturating_add(1).to_string()
            };
            spec.push(format!("{}@{target}", kind.name()));
        }
        spec.push(format!("seed={}", rng.u64_below(1 << 20)));
        let plan = DiskFaultPlan::parse(&spec.join(",")).expect("plan parses");
        let vfs = Arc::new(FaultVfs::new(MemVfs::new(), plan));
        let store = PersistentStore::open(
            vfs,
            "s",
            StoreOptions {
                lru_capacity: rng.usize_in(1, 6),
                compact_bytes: rng.usize_in(64, 1024) as u64,
                fsync_each: rng.u64_below(2) == 0,
            },
        );

        let mut shadow: std::collections::HashMap<Vec<i64>, Result<BatchCell, String>> =
            std::collections::HashMap::new();
        for _ in 0..rng.usize_in(5, 60) {
            let tag = rng.i64_in(0, 12);
            if rng.u64_below(2) == 0 {
                store.store(key(tag), cell(tag));
                shadow.insert(key(tag), cell(tag));
            } else if let Some(got) = store.lookup(&key(tag)) {
                match shadow.get(&key(tag)) {
                    Some(expected) => assert_eq!(&got, expected, "hit diverged from truth"),
                    None => panic!("hit for a key never stored"),
                }
            }
            if rng.u64_below(16) == 0 {
                store.compact();
            }
        }
        let stats = SynthCache::stats(&store);
        assert!(stats.hits + stats.misses > 0 || shadow.is_empty());
    });
}
