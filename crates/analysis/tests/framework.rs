//! End-to-end checks of the analysis framework's memoization contract,
//! asserted through the `mrp-obs` counters — the same evidence a CI run
//! uses to prove "each analysis computed at most once per netlist".
//!
//! Obs state is process-global, so this file holds a single test.

use mrp_analysis::{
    pipeline_and_retime, Analysis, AnalysisContext, Analyzer, ConeOfInfluence, CriticalPath, Depth,
    DerivedValues, Dominators, Fanout, Liveness, Pass, PassManager, WidthMap,
};
use mrp_arch::{AdderGraph, Term};

/// A 12-tap-ish block: three chained constants sharing subexpressions.
fn block() -> AdderGraph {
    let mut g = AdderGraph::new();
    let x = g.input();
    let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
    let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
    let c = g.add(Term::shifted(b, 1), Term::of(a)).unwrap(); // 65
    let d = g.add(Term::shifted(c, 1), Term::negated(a)).unwrap(); // 123
    g.push_output("c0", Term::of(b), 29);
    g.push_output("c1", Term::of(d), 123);
    g
}

struct Wants(&'static [&'static str]);

impl Pass<(), Vec<&'static str>> for Wants {
    fn name(&self) -> &'static str {
        "wants"
    }
    fn analyses(&self) -> &'static [&'static str] {
        self.0
    }
    fn run(&self, az: &Analyzer<'_>, _c: &(), sink: &mut Vec<&'static str>) {
        for &name in self.0 {
            // Request by name — every analysis the framework ships.
            match name {
                "fanout" => drop(az.get_analysis::<Fanout>()),
                "depth" => drop(az.get_analysis::<Depth>()),
                "width" => drop(az.get_analysis::<WidthMap>()),
                "critical-path" => drop(az.get_analysis::<CriticalPath>()),
                "cone" => drop(az.get_analysis::<ConeOfInfluence>()),
                "dominators" => drop(az.get_analysis::<Dominators>()),
                "liveness" => drop(az.get_analysis::<Liveness>()),
                "derived-values" => drop(az.get_analysis::<DerivedValues>()),
                other => panic!("unknown analysis {other}"),
            }
            sink.push(name);
        }
    }
}

#[test]
fn each_analysis_computes_at_most_once_per_netlist() {
    mrp_obs::enable();
    mrp_obs::reset();

    let g = block();
    let az = Analyzer::new(&g, AnalysisContext::default());

    // Overlapping passes: every analysis is requested at least twice
    // across the pipeline (critical-path itself re-requests depth).
    let mut pm: PassManager<'_, (), Vec<&'static str>> = PassManager::new();
    pm.add(Wants(&["depth", "fanout", "width", "liveness"]))
        .add(Wants(&["critical-path", "depth", "cone", "derived-values"]))
        .add(Wants(&[
            "dominators",
            "fanout",
            "width",
            "cone",
            "liveness",
        ]));
    let mut sink = Vec::new();
    pm.run(&az, &(), &mut sink);
    assert_eq!(sink.len(), 13);

    for a in [
        Fanout::NAME,
        Depth::NAME,
        WidthMap::NAME,
        CriticalPath::NAME,
        ConeOfInfluence::NAME,
        Dominators::NAME,
        Liveness::NAME,
        DerivedValues::NAME,
    ] {
        assert_eq!(
            mrp_obs::counter_value(&format!("analysis.compute.{a}")),
            Some(1),
            "analysis {a} computed more than once"
        );
    }
    assert_eq!(mrp_obs::counter_value("analysis.compute"), Some(8));
    assert_eq!(az.computed_count(), 8);

    // The transforms share the same cache: pipelining reads Depth, which
    // is already computed, so the counters do not move.
    let (net, delta) = pipeline_and_retime(&az, 1);
    assert_eq!(mrp_obs::counter_value("analysis.compute"), Some(8));
    assert_eq!(delta.combinational_depth, 4);
    assert!(delta.stage_depth <= 1);
    assert_eq!(
        net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]),
        None
    );

    mrp_obs::disable();
    mrp_obs::reset();
}
