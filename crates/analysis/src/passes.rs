//! The pass manager: ordered read-only passes over one [`Analyzer`].
//!
//! A [`Pass`] inspects the graph through the analyzer (sharing its
//! memoized analyses with every other pass in the pipeline) and reports
//! into a caller-supplied sink. The manager only sequences them; passes
//! never mutate the graph, so the analysis cache stays valid across the
//! whole run — this is what makes "each analysis computed at most once
//! per netlist" hold for a full lint pipeline.

use crate::manager::Analyzer;

/// One read-only diagnostic or reporting pass.
///
/// `C` is the shared configuration type, `S` the report sink the pass
/// writes into (e.g. `mrp-lint`'s `LintReport`).
pub trait Pass<C, S> {
    /// Stable pass name, used for `pass[<name>]` obs spans.
    fn name(&self) -> &'static str;

    /// Names of the analyses this pass reads (manifest for docs/debug;
    /// the analyzer memoizes regardless).
    fn analyses(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the pass against the analyzer, reporting into `sink`.
    fn run(&self, az: &Analyzer<'_>, config: &C, sink: &mut S);
}

/// Runs a fixed sequence of passes over one analyzer.
///
/// The lifetime parameter lets passes borrow from the caller (e.g. an
/// RTL-checking pass holding `&'p str` source) without cloning.
pub struct PassManager<'p, C, S> {
    passes: Vec<Box<dyn Pass<C, S> + 'p>>,
}

impl<'p, C, S> Default for PassManager<'p, C, S> {
    fn default() -> Self {
        PassManager::new()
    }
}

impl<'p, C, S> PassManager<'p, C, S> {
    /// An empty manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Appends a pass; passes run in insertion order.
    pub fn add(&mut self, pass: impl Pass<C, S> + 'p) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Registered pass names, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order against `az`, reporting into `sink`.
    /// Each pass runs under a `pass[<name>]` obs span.
    pub fn run(&self, az: &Analyzer<'_>, config: &C, sink: &mut S) {
        for pass in &self.passes {
            let _span = mrp_obs::span_dyn(format!("pass[{}]", pass.name()));
            pass.run(az, config, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyses::{Depth, Fanout};
    use crate::manager::AnalysisContext;
    use mrp_arch::{AdderGraph, Term};

    struct DepthPass;
    impl Pass<u32, Vec<String>> for DepthPass {
        fn name(&self) -> &'static str {
            "depth"
        }
        fn analyses(&self) -> &'static [&'static str] {
            &[Depth::NAME]
        }
        fn run(&self, az: &Analyzer<'_>, limit: &u32, sink: &mut Vec<String>) {
            let d = az.get_analysis::<Depth>();
            if d.max > *limit {
                sink.push(format!("depth {} over {}", d.max, limit));
            }
        }
    }

    struct FanoutPass;
    impl Pass<u32, Vec<String>> for FanoutPass {
        fn name(&self) -> &'static str {
            "fanout"
        }
        fn run(&self, az: &Analyzer<'_>, _c: &u32, sink: &mut Vec<String>) {
            // Reads Depth too: must hit DepthPass's cached value.
            az.get_analysis::<Depth>();
            sink.push(format!("max fanout {}", az.get_analysis::<Fanout>().max));
        }
    }

    use crate::manager::Analysis;

    #[test]
    fn passes_share_the_analysis_cache() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(b), 29);

        let az = Analyzer::new(&g, AnalysisContext::default());
        let mut pm: PassManager<'_, u32, Vec<String>> = PassManager::new();
        pm.add(DepthPass).add(FanoutPass);
        assert_eq!(pm.names(), vec!["depth", "fanout"]);

        let mut sink = Vec::new();
        pm.run(&az, &1, &mut sink);
        assert_eq!(sink, vec!["depth 2 over 1", "max fanout 3"]);
        // Depth was requested by both passes but computed once.
        assert_eq!(az.computed_names(), vec!["depth", "fanout"]);
    }

    #[test]
    fn borrowed_pass_state_needs_no_clone() {
        struct SourcePass<'a> {
            source: &'a str,
        }
        impl<C, S> Pass<C, S> for SourcePass<'_> {
            fn name(&self) -> &'static str {
                "source"
            }
            fn run(&self, _az: &Analyzer<'_>, _c: &C, _s: &mut S) {
                assert!(!self.source.is_empty());
            }
        }
        let source = String::from("module m; endmodule");
        let g = AdderGraph::new();
        let az = Analyzer::new(&g, AnalysisContext::default());
        let mut pm: PassManager<'_, (), ()> = PassManager::new();
        pm.add(SourcePass { source: &source });
        pm.run(&az, &(), &mut ());
        assert_eq!(pm.len(), 1);
    }
}
