//! Cached netlist analyses and structural transforms over the
//! [`mrp_arch`] adder-graph IR.
//!
//! Lint passes, reporting, DOT overlays, and transforms all need the
//! same handful of graph walks — fanout counts, recomputed depths,
//! width tables, cones of influence. Before this crate each consumer
//! recomputed them ad hoc; here they are [`Analysis`] values memoized by
//! an [`Analyzer`]: computed at most once per graph state, shared by
//! every pass in a [`PassManager`] run, and invalidated precisely when a
//! transform mutates the graph (with [`PreservedAnalyses`] for the
//! analyses a transform provably keeps intact).
//!
//! The crate has three layers:
//!
//! * **Manager** — [`Analyzer`], [`Analysis`], [`AnalysisContext`],
//!   [`PreservedAnalyses`]: the memoization and invalidation machinery.
//!   Every cache miss bumps the `analysis.compute` /
//!   `analysis.compute.<name>` obs counters, so "computed at most once"
//!   is checkable from a metrics export.
//! * **Analyses** — [`Fanout`], [`Depth`], [`CriticalPath`],
//!   [`WidthMap`], [`ConeOfInfluence`], [`Dominators`], [`Liveness`],
//!   [`DerivedValues`]: pure, total graph walks (malformed operand
//!   references are treated as absent, never panicked on — the lint
//!   passes that consume these report them instead).
//! * **Transforms** — [`PipelinedNetlist`] plus [`pipeline_by_depth`],
//!   [`retime`], and [`pipeline_and_retime`]: stage assignment,
//!   register bookkeeping, cycle-accurate stepping, and the
//!   latency-adjusted equivalence gate
//!   ([`PipelinedNetlist::verify_outputs_latency_adjusted`]).
//!
//! # Examples
//!
//! ```
//! use mrp_analysis::{pipeline_and_retime, AnalysisContext, Analyzer, Depth};
//! use mrp_arch::{AdderGraph, Term};
//!
//! let mut g = AdderGraph::new();
//! let x = g.input();
//! let mut n = x;
//! for _ in 0..4 {
//!     n = g.add(Term::shifted(n, 1), Term::of(x))?;
//! }
//! g.push_output("c0", Term::of(n), g.value(n));
//!
//! let az = Analyzer::new(&g, AnalysisContext::default());
//! assert_eq!(az.get_analysis::<Depth>().max, 4);
//!
//! // Slice into 2-adder stages and retime; verify latency-adjusted.
//! let (net, delta) = pipeline_and_retime(&az, 2);
//! assert_eq!(net.latency, 1);
//! assert!(delta.stage_depth <= 2);
//! assert_eq!(net.verify_outputs_latency_adjusted(&[-3, 0, 1, 7]), None);
//! # Ok::<(), mrp_arch::ArchError>(())
//! ```

#![warn(missing_docs)]

mod analyses;
mod manager;
mod passes;
mod pipeline;
mod transform;
pub mod width;

pub use analyses::{
    recompute_depths, ConeOfInfluence, CriticalPath, Depth, DerivedValues, Dominators, Fanout,
    Liveness, WidthMap,
};
pub use manager::{Analysis, AnalysisContext, Analyzer, PreservedAnalyses};
pub use passes::{Pass, PassManager};
pub use pipeline::PipelinedNetlist;
pub use transform::{pipeline_and_retime, pipeline_by_depth, retime, TransformDelta};
