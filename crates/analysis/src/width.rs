//! Bit-width arithmetic for shift-add networks.
//!
//! Every node of an adder graph computes an exact constant multiple
//! `c · x` of the input, so its worst-case settled value is determined by
//! `c` and the input wordlength `W`: with two's-complement inputs
//! `x ∈ [-2^(W-1), 2^(W-1)-1]`, the node needs the minimal signed width
//! that holds both `c · x_min` and `c · x_max`.
//!
//! Intermediate operand terms (`±(c << k) · x`) may transiently exceed a
//! wire's width without corrupting the result: two's-complement addition
//! is arithmetic modulo `2^w`, a ring homomorphism, so the settled wire
//! value is exact whenever the wire's *own* value fits. Width analysis
//! therefore scores each signal's settled value, not its operands.
//!
//! These are the pure formulas; the cached per-graph table is the
//! [`WidthMap`](crate::WidthMap) analysis, and `mrp-lint` re-exports the
//! formulas for its public width API.

use mrp_arch::{AdderGraph, NodeId, Term};

/// Minimal signed two's-complement width holding `v`.
///
/// `0` and `-1` need 1 bit; `2^(n-1)-1` and `-2^(n-1)` need `n`.
pub fn signed_width(v: i128) -> u32 {
    if v >= 0 {
        (128 - v.leading_zeros()) + 1
    } else {
        128 - (!v).leading_zeros() + 1
    }
}

/// Minimal signed width of `constant · x` over all `W`-bit signed `x`.
pub fn product_width(constant: i64, input_width: u32) -> u32 {
    let c = constant as i128;
    let x_min = -(1i128 << (input_width - 1));
    let x_max = (1i128 << (input_width - 1)) - 1;
    let (a, b) = (c * x_min, c * x_max);
    signed_width(a).max(signed_width(b))
}

/// Minimal signed width of a term's settled value at `input_width`.
pub fn term_width(graph: &AdderGraph, term: Term, input_width: u32) -> u32 {
    let c = (graph.value(term.node) as i128) << term.shift;
    let c = if term.negate { -c } else { c };
    // The term constant fits i128 easily (|value| < 2^63, shift < 64).
    let x_min = -(1i128 << (input_width - 1));
    let x_max = (1i128 << (input_width - 1)) - 1;
    signed_width(c.saturating_mul(x_min)).max(signed_width(c.saturating_mul(x_max)))
}

/// Per-node minimal widths at `input_width`, index = node index.
pub fn node_widths(graph: &AdderGraph, input_width: u32) -> Vec<u32> {
    (0..graph.len())
        .map(|i| product_width(graph.value(NodeId::from_index(i)), input_width))
        .collect()
}

/// The minimal internal wordlength that holds every node's settled value
/// and every output's settled value at `input_width`.
pub fn min_safe_width(graph: &AdderGraph, input_width: u32) -> u32 {
    let nodes = node_widths(graph, input_width)
        .into_iter()
        .max()
        .unwrap_or(input_width);
    let outs = graph
        .outputs()
        .iter()
        .filter(|o| o.expected != 0)
        .map(|o| product_width(o.expected, input_width))
        .max()
        .unwrap_or(1);
    nodes.max(outs).max(input_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::Term;

    #[test]
    fn signed_width_basics() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-2), 2);
        assert_eq!(signed_width(127), 8);
        assert_eq!(signed_width(128), 9);
        assert_eq!(signed_width(-128), 8);
        assert_eq!(signed_width(-129), 9);
    }

    #[test]
    fn min_safe_width_grows_with_constants() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let n = g.add(Term::shifted(x, 6), Term::negated(x)).unwrap(); // 63
        g.push_output("o", Term::of(n), 63);
        let w8 = min_safe_width(&g, 8);
        // 63 * -128 = -8064 → 14 bits.
        assert_eq!(w8, 14);
        assert!(min_safe_width(&g, 16) > w8);
    }
}
