//! The built-in analyses.
//!
//! Each is a pure function of the graph (plus the
//! [`AnalysisContext`](crate::AnalysisContext) for width-sensitive ones),
//! total on malformed graphs: an operand reference that is out of range
//! or not strictly earlier is treated as absent, so analyses never panic
//! on the broken netlists the lint passes exist to diagnose.

use mrp_arch::{Node, Term};

use crate::manager::{Analysis, Analyzer};
use crate::width;

/// Is `t`'s operand reference usable from node `i` (strictly earlier)?
fn valid_ref(t: &Term, i: usize) -> bool {
    t.node.index() < i
}

/// Per-node fanout: how many adder operands and nonzero outputs read each
/// node. Matches [`mrp_arch::AdderGraph::fanouts`] on well-formed graphs
/// but stays total when a reference is out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanout {
    /// Reader count per node, index = node index.
    pub counts: Vec<usize>,
    /// Largest fanout in the graph.
    pub max: usize,
}

impl Analysis for Fanout {
    const NAME: &'static str = "fanout";

    fn compute(az: &Analyzer<'_>) -> Self {
        let g = az.graph();
        let n = g.len();
        let mut counts = vec![0usize; n];
        for node in g.nodes() {
            if let Node::Add { lhs, rhs } = node {
                for t in [lhs, rhs] {
                    if t.node.index() < n {
                        counts[t.node.index()] += 1;
                    }
                }
            }
        }
        for o in g.outputs() {
            if o.expected != 0 && o.term.node.index() < n {
                counts[o.term.node.index()] += 1;
            }
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        Fanout { counts, max }
    }
}

/// Structurally recomputed adder depth of every node (never the graph's
/// own cached depths — comparing the two is the `MRP030` lint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Depth {
    /// Adder depth per node, index = node index.
    pub depths: Vec<u32>,
    /// The critical path length (max over nodes).
    pub max: u32,
}

impl Analysis for Depth {
    const NAME: &'static str = "depth";

    fn compute(az: &Analyzer<'_>) -> Self {
        let depths = recompute_depths(az.graph());
        let max = depths.iter().copied().max().unwrap_or(0);
        Depth { depths, max }
    }
}

/// Recomputed adder depth of every node, index = node index. Operand
/// references that are not strictly earlier are treated as depth 0 so the
/// recompute stays total on malformed graphs. This is the one-shot form
/// of the [`Depth`] analysis (which callers with an [`Analyzer`] should
/// prefer — it is cached).
pub fn recompute_depths(graph: &mrp_arch::AdderGraph) -> Vec<u32> {
    let mut d = vec![0u32; graph.len()];
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let of = |j: usize| if j < i { d[j] } else { 0 };
            d[i] = 1 + of(lhs.node.index()).max(of(rhs.node.index()));
        }
    }
    d
}

/// The deepest adder chain in the graph, as a concrete node path from the
/// input to a deepest node. Builds on [`Depth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Number of adder stages on the path.
    pub length: u32,
    /// Node indices along the path, input first, deepest node last.
    pub path: Vec<usize>,
}

impl Analysis for CriticalPath {
    const NAME: &'static str = "critical-path";

    fn compute(az: &Analyzer<'_>) -> Self {
        let depth = az.get_analysis::<Depth>();
        let g = az.graph();
        let Some((mut at, _)) = depth
            .depths
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
        else {
            return CriticalPath {
                length: 0,
                path: Vec::new(),
            };
        };
        let mut rev = vec![at];
        while let Node::Add { lhs, rhs } = &g.nodes()[at] {
            // Walk back through the deeper (valid) operand.
            let score = |t: &Term| {
                if valid_ref(t, at) {
                    Some(depth.depths[t.node.index()])
                } else {
                    None
                }
            };
            let next = match (score(lhs), score(rhs)) {
                (Some(a), Some(b)) => {
                    if a >= b {
                        lhs.node.index()
                    } else {
                        rhs.node.index()
                    }
                }
                (Some(_), None) => lhs.node.index(),
                (None, Some(_)) => rhs.node.index(),
                (None, None) => break,
            };
            rev.push(next);
            at = next;
        }
        rev.reverse();
        CriticalPath {
            length: depth.max,
            path: rev,
        }
    }
}

/// Per-node minimal signed widths at the context's input width, plus the
/// minimal internal wordlength for the whole block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthMap {
    /// Minimal signed width per node, index = node index.
    pub widths: Vec<u32>,
    /// Minimal wordlength holding every node and output value.
    pub min_safe: u32,
}

impl Analysis for WidthMap {
    const NAME: &'static str = "width";

    fn compute(az: &Analyzer<'_>) -> Self {
        let w = az.ctx().input_width;
        WidthMap {
            widths: width::node_widths(az.graph(), w),
            min_safe: width::min_safe_width(az.graph(), w),
        }
    }
}

/// Transitive fan-in of every node (which nodes can influence its value),
/// stored as one bitset row per node. A node is not in its own cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeOfInfluence {
    len: usize,
    words: usize,
    bits: Vec<u64>,
}

impl ConeOfInfluence {
    /// Whether `src` can influence `dst` (i.e. `src` is in `dst`'s cone).
    pub fn influences(&self, src: usize, dst: usize) -> bool {
        if src >= self.len || dst >= self.len {
            return false;
        }
        self.bits[dst * self.words + src / 64] >> (src % 64) & 1 == 1
    }

    /// The cone of `node` as sorted node indices.
    pub fn cone(&self, node: usize) -> Vec<usize> {
        (0..self.len)
            .filter(|&j| self.influences(j, node))
            .collect()
    }

    /// How many nodes are in `node`'s cone.
    pub fn cone_size(&self, node: usize) -> usize {
        if node >= self.len {
            return 0;
        }
        self.bits[node * self.words..(node + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

impl Analysis for ConeOfInfluence {
    const NAME: &'static str = "cone";

    fn compute(az: &Analyzer<'_>) -> Self {
        let g = az.graph();
        let n = g.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for (i, node) in g.nodes().iter().enumerate() {
            if let Node::Add { lhs, rhs } = node {
                for t in [lhs, rhs] {
                    if !valid_ref(t, i) {
                        continue;
                    }
                    let j = t.node.index();
                    // cone(i) |= cone(j) ∪ {j}
                    for w in 0..words {
                        let src = bits[j * words + w];
                        bits[i * words + w] |= src;
                    }
                    bits[i * words + j / 64] |= 1 << (j % 64);
                }
            }
        }
        ConeOfInfluence {
            len: n,
            words,
            bits,
        }
    }
}

/// Dominator tree of the DAG viewed from the input: node `d` dominates
/// node `n` when every structural path from the input to `n` passes
/// through `d`. A node all of whose outputs funnel through one dominator
/// is a natural cut point for pipelining and for sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator per node (`None` for the input node and for
    /// nodes with no valid path from the input).
    pub idom: Vec<Option<usize>>,
}

impl Dominators {
    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut at = b;
        loop {
            if at == a {
                return true;
            }
            match self.idom.get(at).copied().flatten() {
                Some(up) => at = up,
                None => return false,
            }
        }
    }
}

impl Analysis for Dominators {
    const NAME: &'static str = "dominators";

    fn compute(az: &Analyzer<'_>) -> Self {
        let g = az.graph();
        let n = g.len();
        let words = n.div_ceil(64);
        // dom[i] as a bitset; nodes are topologically indexed, so one
        // forward sweep settles everything.
        let mut dom = vec![0u64; n * words];
        let mut reachable = vec![false; n];
        if n > 0 {
            dom[0] |= 1; // the input dominates itself
            reachable[0] = true;
        }
        for (i, node) in g.nodes().iter().enumerate().skip(1) {
            if let Node::Add { lhs, rhs } = node {
                let ops: Vec<usize> = [lhs, rhs]
                    .iter()
                    .filter(|t| valid_ref(t, i) && reachable[t.node.index()])
                    .map(|t| t.node.index())
                    .collect();
                if ops.is_empty() {
                    continue; // unreachable from the input
                }
                reachable[i] = true;
                for w in 0..words {
                    let mut meet = !0u64;
                    for &j in &ops {
                        meet &= dom[j * words + w];
                    }
                    dom[i * words + w] = meet;
                }
                dom[i * words + i / 64] |= 1 << (i % 64);
            }
        }
        // The strict dominators of a node form a chain; the immediate one
        // is the chain's deepest element, i.e. the strict dominator with
        // the largest dominator set.
        let popcount = |i: usize| -> usize {
            dom[i * words..(i + 1) * words]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum()
        };
        let idom = (0..n)
            .map(|i| {
                if !reachable[i] || i == 0 {
                    return None;
                }
                (0..i)
                    .filter(|&d| dom[i * words + d / 64] >> (d % 64) & 1 == 1)
                    .max_by_key(|&d| popcount(d))
            })
            .collect();
        Dominators { idom }
    }
}

/// Backward reachability from the nonzero outputs: which nodes actually
/// contribute to a registered output (the complement is the `MRP001`
/// dead-node set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// `true` when the node reaches some nonzero output.
    pub live: Vec<bool>,
}

impl Analysis for Liveness {
    const NAME: &'static str = "liveness";

    fn compute(az: &Analyzer<'_>) -> Self {
        let g = az.graph();
        let n = g.len();
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = g
            .outputs()
            .iter()
            .filter(|o| o.expected != 0 && o.term.node.index() < n)
            .map(|o| o.term.node.index())
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            if let Node::Add { lhs, rhs } = g.nodes()[i] {
                for t in [lhs, rhs] {
                    if valid_ref(&t, i) {
                        stack.push(t.node.index());
                    }
                }
            }
        }
        Liveness { live }
    }
}

/// Symbolic re-derivation of every node's constant from the wiring alone,
/// never consulting the graph's tracked value cache (comparing the two is
/// the `MRP021` lint). `Err(i)` marks the first node whose derivation
/// leaves the `i64` tracking range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedValues {
    /// Derived constants per node, or the index of the first overflow.
    pub values: Result<Vec<i64>, usize>,
}

impl Analysis for DerivedValues {
    const NAME: &'static str = "derived-values";

    fn compute(az: &Analyzer<'_>) -> Self {
        let g = az.graph();
        let mut vals = vec![0i64; g.len()];
        for (i, node) in g.nodes().iter().enumerate() {
            vals[i] = match node {
                Node::Input => 1,
                Node::Add { lhs, rhs } => {
                    let term = |t: &Term| -> Option<i128> {
                        if !valid_ref(t, i) {
                            return None; // the structure lint reports this
                        }
                        let v = (vals[t.node.index()] as i128).checked_shl(t.shift)?;
                        Some(if t.negate { -v } else { v })
                    };
                    let sum = term(lhs).and_then(|a| term(rhs).map(|b| a + b));
                    match sum.and_then(|v| i64::try_from(v).ok()) {
                        Some(v) => v,
                        None => {
                            return DerivedValues { values: Err(i) };
                        }
                    }
                }
            };
        }
        DerivedValues { values: Ok(vals) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::AnalysisContext;
    use mrp_arch::{AdderGraph, NodeId};

    fn diamond() -> AdderGraph {
        // x -> a=3x, b=7x; c = a+b = 10x (dominated only by x);
        // d = 4a+a = 5a = 15x (dominated by a).
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // 3
        let b = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let c = g.add(Term::of(a), Term::of(b)).unwrap(); // 10
        let d = g.add(Term::shifted(a, 2), Term::of(a)).unwrap(); // 15
        g.push_output("c0", Term::of(c), 10);
        g.push_output("c1", Term::of(d), 15);
        g
    }

    fn az(g: &AdderGraph) -> Analyzer<'_> {
        Analyzer::new(g, AnalysisContext::default())
    }

    #[test]
    fn fanout_matches_graph_fanouts() {
        let g = diamond();
        assert_eq!(az(&g).get_analysis::<Fanout>().counts, g.fanouts());
    }

    #[test]
    fn depth_matches_cached_depths_on_well_formed_graphs() {
        let g = diamond();
        let d = az(&g).get_analysis::<Depth>();
        assert_eq!(d.depths, vec![0, 1, 1, 2, 2]);
        assert_eq!(d.max, g.max_depth());
    }

    #[test]
    fn critical_path_is_a_real_input_to_deepest_chain() {
        let g = diamond();
        let a = az(&g);
        let cp = a.get_analysis::<CriticalPath>();
        assert_eq!(cp.length, 2);
        assert_eq!(cp.path.first(), Some(&0));
        assert_eq!(cp.path.len() as u32, cp.length + 1);
        // Consecutive path nodes are wired.
        for pair in cp.path.windows(2) {
            let Node::Add { lhs, rhs } = g.nodes()[pair[1]] else {
                panic!("non-adder on path");
            };
            assert!(lhs.node.index() == pair[0] || rhs.node.index() == pair[0]);
        }
    }

    #[test]
    fn cone_and_dominators_agree_on_the_diamond() {
        let g = diamond();
        let a = az(&g);
        let cone = a.get_analysis::<ConeOfInfluence>();
        assert_eq!(cone.cone(3), vec![0, 1, 2]); // c sees x, a, b
        assert_eq!(cone.cone(4), vec![0, 1]); // d sees x, a
        assert!(cone.influences(0, 4));
        assert!(!cone.influences(2, 4));
        assert_eq!(cone.cone_size(0), 0);

        let dom = a.get_analysis::<Dominators>();
        assert_eq!(dom.idom[0], None);
        assert_eq!(dom.idom[1], Some(0));
        assert_eq!(dom.idom[3], Some(0)); // both a and b paths: only x dominates
        assert_eq!(dom.idom[4], Some(1)); // every path to d goes through a
        assert!(dom.dominates(1, 4));
        assert!(!dom.dominates(2, 4));
        assert!(dom.dominates(0, 3));
    }

    #[test]
    fn liveness_and_derived_values() {
        let mut g = diamond();
        let dead = g
            .add(
                Term::shifted(NodeId::from_index(0), 4),
                Term::of(NodeId::from_index(0)),
            )
            .unwrap(); // 17x, never used
        let a = az(&g);
        let live = a.get_analysis::<Liveness>();
        assert!(!live.live[dead.index()]);
        assert!(live.live[3] && live.live[4] && live.live[0]);
        let derived = a.get_analysis::<DerivedValues>();
        assert_eq!(derived.values.as_ref().unwrap(), &vec![1, 3, 7, 10, 15, 17]);
    }

    #[test]
    fn width_map_matches_pure_formulas() {
        let g = diamond();
        let a = az(&g);
        let wm = a.get_analysis::<WidthMap>();
        assert_eq!(wm.widths, width::node_widths(&g, 16));
        assert_eq!(wm.min_safe, width::min_safe_width(&g, 16));
    }
}
