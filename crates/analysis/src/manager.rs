//! The analysis manager: memoized `get_analysis::<T>()` over one netlist.
//!
//! An [`Analyzer`] owns (or borrows) one [`AdderGraph`] plus the
//! [`AnalysisContext`] the graph is analyzed under, and lazily computes
//! [`Analysis`] values on first request. Every analysis is computed at
//! most once per graph state; a structural transform goes through
//! [`Analyzer::transform`], which mutates the graph and invalidates the
//! cache — precisely, when the transform declares [`PreservedAnalyses`].
//!
//! Each cache miss increments the `mrp-obs` counters
//! `analysis.compute` and `analysis.compute.<name>`, so a run can assert
//! "each analysis computed at most once" from its metrics export.

use std::any::{Any, TypeId};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mrp_arch::AdderGraph;

/// Parameters an analysis may depend on beyond the graph structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisContext {
    /// Input wordlength (bits) width-style analyses are evaluated at.
    pub input_width: u32,
}

impl Default for AnalysisContext {
    fn default() -> Self {
        AnalysisContext { input_width: 16 }
    }
}

/// A value derived from one graph state, computable on demand.
///
/// Implementations must be pure functions of the graph and the
/// [`AnalysisContext`]: the manager caches them until the graph mutates.
/// `compute` receives the analyzer itself so an analysis can request the
/// analyses it builds on (e.g. `CriticalPath` reads `Depth`); the cache
/// is not borrowed across the call, so nested requests are fine —
/// a self-cycle, however, recurses forever and is a bug in the analysis.
pub trait Analysis: Sized + 'static {
    /// Stable lowercase name, used for obs counters and pass manifests.
    const NAME: &'static str;

    /// Computes the analysis from scratch.
    fn compute(analyzer: &Analyzer<'_>) -> Self;
}

/// The set of analyses a transform promises not to invalidate.
#[derive(Debug, Clone, Default)]
pub struct PreservedAnalyses {
    all: bool,
    kept: Vec<TypeId>,
}

impl PreservedAnalyses {
    /// Nothing survives the transform (the safe default).
    pub fn none() -> Self {
        PreservedAnalyses::default()
    }

    /// Everything survives (the transform did not change the structure).
    pub fn all() -> Self {
        PreservedAnalyses {
            all: true,
            kept: Vec::new(),
        }
    }

    /// Marks one analysis as preserved.
    #[must_use]
    pub fn preserve<A: Analysis>(mut self) -> Self {
        self.kept.push(TypeId::of::<A>());
        self
    }

    fn keeps(&self, id: &TypeId) -> bool {
        self.all || self.kept.contains(id)
    }
}

/// Memoizing analysis manager over one adder graph.
///
/// # Examples
///
/// ```
/// use mrp_analysis::{AnalysisContext, Analyzer, Depth, Fanout};
/// use mrp_arch::{AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let a = g.add(Term::shifted(x, 3), Term::negated(x))?; // 7x
/// g.push_output("c0", Term::of(a), 7);
/// let az = Analyzer::new(&g, AnalysisContext::default());
/// assert_eq!(az.get_analysis::<Depth>().max, 1);
/// assert_eq!(az.get_analysis::<Fanout>().counts[0], 2);
/// assert_eq!(az.computed_count(), 2); // second requests would be cached
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub struct Analyzer<'g> {
    graph: Cow<'g, AdderGraph>,
    ctx: AnalysisContext,
    cache: RefCell<HashMap<TypeId, Rc<dyn Any>>>,
    computed: RefCell<Vec<&'static str>>,
}

impl<'g> Analyzer<'g> {
    /// Wraps a borrowed graph (the common read-only lint/reporting path).
    pub fn new(graph: &'g AdderGraph, ctx: AnalysisContext) -> Self {
        Analyzer {
            graph: Cow::Borrowed(graph),
            ctx,
            cache: RefCell::new(HashMap::new()),
            computed: RefCell::new(Vec::new()),
        }
    }

    /// Takes ownership of a graph (the transform pipeline path).
    pub fn owned(graph: AdderGraph, ctx: AnalysisContext) -> Analyzer<'static> {
        Analyzer {
            graph: Cow::Owned(graph),
            ctx,
            cache: RefCell::new(HashMap::new()),
            computed: RefCell::new(Vec::new()),
        }
    }

    /// The graph under analysis.
    pub fn graph(&self) -> &AdderGraph {
        &self.graph
    }

    /// The context analyses are evaluated under.
    pub fn ctx(&self) -> &AnalysisContext {
        &self.ctx
    }

    /// Returns the cached analysis, computing it on first request.
    pub fn get_analysis<A: Analysis>(&self) -> Rc<A> {
        let key = TypeId::of::<A>();
        if let Some(hit) = self.cache.borrow().get(&key) {
            return hit.clone().downcast::<A>().expect("cache type confusion");
        }
        // Not cached: compute without holding the cache borrow, so the
        // analysis may itself request other analyses.
        let value = Rc::new(A::compute(self));
        mrp_obs::counter_add("analysis.compute", 1);
        mrp_obs::counter_add(&format!("analysis.compute.{}", A::NAME), 1);
        self.computed.borrow_mut().push(A::NAME);
        self.cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| value.clone());
        value
    }

    /// Whether an analysis is currently cached.
    pub fn is_cached<A: Analysis>(&self) -> bool {
        self.cache.borrow().contains_key(&TypeId::of::<A>())
    }

    /// How many analysis computations have run (cache misses), total.
    pub fn computed_count(&self) -> usize {
        self.computed.borrow().len()
    }

    /// Names of the analyses computed so far, in computation order.
    pub fn computed_names(&self) -> Vec<&'static str> {
        self.computed.borrow().clone()
    }

    /// Mutates the graph through `f` and invalidates every cached
    /// analysis. Borrowed graphs are cloned on first mutation
    /// (copy-on-write), so a read-only `Analyzer` never pays for a copy.
    pub fn transform<R>(&mut self, f: impl FnOnce(&mut AdderGraph) -> R) -> R {
        self.transform_preserving(PreservedAnalyses::none(), f)
    }

    /// [`Analyzer::transform`] with a precise invalidation set: analyses
    /// named in `preserved` stay cached across the mutation. The caller
    /// asserts they still describe the mutated graph — preserving a stale
    /// analysis is as wrong as any other cache bug.
    pub fn transform_preserving<R>(
        &mut self,
        preserved: PreservedAnalyses,
        f: impl FnOnce(&mut AdderGraph) -> R,
    ) -> R {
        let result = f(self.graph.to_mut());
        self.cache.borrow_mut().retain(|id, _| preserved.keeps(id));
        result
    }

    /// Drops every cached analysis without touching the graph.
    pub fn invalidate_all(&mut self) {
        self.cache.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyses::{Depth, Fanout};
    use mrp_arch::Term;

    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        g.push_output("c0", Term::of(b), 29);
        g
    }

    #[test]
    fn second_request_hits_the_cache() {
        let g = chain();
        let az = Analyzer::new(&g, AnalysisContext::default());
        let first = az.get_analysis::<Depth>();
        let again = az.get_analysis::<Depth>();
        assert!(Rc::ptr_eq(&first, &again));
        assert_eq!(az.computed_count(), 1);
    }

    #[test]
    fn transform_invalidates_everything_by_default() {
        let g = chain();
        let mut az = Analyzer::new(&g, AnalysisContext::default());
        assert_eq!(az.get_analysis::<Depth>().max, 2);
        az.transform(|g| {
            let x = g.input();
            let b = mrp_arch::NodeId::from_index(2);
            let c = g.add(Term::shifted(b, 1), Term::of(x)).unwrap(); // 59
            g.push_output("c1", Term::of(c), 59);
        });
        assert!(!az.is_cached::<Depth>());
        assert_eq!(az.get_analysis::<Depth>().max, 3);
        // The borrowed original is untouched (copy-on-write).
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn preserved_analyses_survive_a_transform() {
        let g = chain();
        let mut az = Analyzer::new(&g, AnalysisContext::default());
        az.get_analysis::<Depth>();
        az.get_analysis::<Fanout>();
        assert_eq!(az.computed_count(), 2);
        // Relabeling an output does not move any node or edge: depth is
        // preserved; fanout counts nonzero outputs, so it is not.
        az.transform_preserving(PreservedAnalyses::none().preserve::<Depth>(), |g| {
            let t = Term::of(mrp_arch::NodeId::from_index(2));
            g.push_output("extra", t, 29);
        });
        assert!(az.is_cached::<Depth>());
        assert!(!az.is_cached::<Fanout>());
    }

    #[test]
    fn owned_analyzer_mutates_in_place() {
        let mut az = Analyzer::owned(chain(), AnalysisContext::default());
        az.transform(|g| {
            let x = g.input();
            g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        });
        assert_eq!(az.graph().len(), 4);
    }
}
