//! Pipelined netlists: an adder graph plus a stage assignment.
//!
//! [`mrp_arch`]'s cut analysis scores *where* a boundary is cheap; this
//! module carries the result of actually placing boundaries: every node
//! is assigned a pipeline stage, and every signal that crosses a stage
//! boundary owns a register per boundary crossed. The structure is
//! cycle-accurate — [`PipelinedNetlist::step`] evaluates one clock edge,
//! and [`PipelinedNetlist::verify_outputs_latency_adjusted`] replays the
//! combinational verification samples against a latency-shifted
//! reference, which is the equivalence gate retiming and pipelining
//! transforms must pass.
//!
//! Register bookkeeping is deliberately explicit (and mutable): a
//! *missing* register wires the signal through combinationally, exactly
//! like the hardware bug it models, so a mis-registered netlist fails the
//! latency-adjusted equivalence check instead of being unrepresentable.

use mrp_arch::{AdderGraph, Node, Term};

/// An adder graph with a pipeline stage per node and explicit registers.
///
/// Node `n` is computed combinationally in stage `stages[n]`. Boundary
/// `b` (for `b` in `1..=latency`) sits between stages `b - 1` and `b`;
/// a consumer in stage `t` reading a producer in stage `s` needs the
/// producer registered at every boundary `s+1..=t`. Outputs are sampled
/// after the last stage, i.e. at boundary `latency`, so the block
/// computes `y[t] = c · x[t - latency]`.
#[derive(Debug, Clone)]
pub struct PipelinedNetlist {
    /// The combinational structure.
    pub graph: AdderGraph,
    /// Pipeline stage per node, index = node index.
    pub stages: Vec<u32>,
    /// Number of pipeline boundaries (output latency in cycles).
    pub latency: u32,
    /// Boundary indices at which each node owns a register, sorted.
    pub registered: Vec<Vec<u32>>,
}

impl PipelinedNetlist {
    /// Builds a pipelined netlist from a graph and a stage assignment,
    /// deriving the latency (deepest stage) and the full register set.
    ///
    /// # Panics
    ///
    /// Panics if `stages` does not have one entry per node.
    pub fn new(graph: AdderGraph, stages: Vec<u32>) -> Self {
        assert_eq!(stages.len(), graph.len(), "one stage per node");
        let latency = stages.iter().copied().max().unwrap_or(0);
        let mut net = PipelinedNetlist {
            graph,
            stages,
            latency,
            registered: Vec::new(),
        };
        net.recompute_registers();
        net
    }

    /// Recomputes the register set from the current stage assignment,
    /// keeping `latency` as-is (retiming preserves latency; use
    /// [`PipelinedNetlist::new`] to re-derive it).
    pub fn recompute_registers(&mut self) {
        let n = self.graph.len();
        let words = self.latency as usize + 1;
        let mut need = vec![false; n * words];
        let mut cross = |src: usize, from: u32, to: u32| {
            for b in (from + 1)..=to {
                need[src * words + b as usize] = true;
            }
        };
        for (i, node) in self.graph.nodes().iter().enumerate() {
            if let Node::Add { lhs, rhs } = node {
                for t in [lhs, rhs] {
                    let j = t.node.index();
                    if j < i && self.stages[j] <= self.stages[i] {
                        cross(j, self.stages[j], self.stages[i]);
                    }
                }
            }
        }
        for o in self.graph.outputs() {
            let j = o.term.node.index();
            if o.expected != 0 && j < n && self.stages[j] <= self.latency {
                cross(j, self.stages[j], self.latency);
            }
        }
        self.registered = (0..n)
            .map(|i| {
                (1..=self.latency)
                    .filter(|&b| need[i * words + b as usize])
                    .collect()
            })
            .collect();
    }

    /// Total number of pipeline registers (fanout shares them: one
    /// register per signal per boundary, however many consumers).
    pub fn register_count(&self) -> usize {
        self.registered.iter().map(Vec::len).sum()
    }

    /// Combinational adder depth of every node *within its stage*.
    pub fn stage_depths(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.graph.len()];
        for (i, node) in self.graph.nodes().iter().enumerate() {
            if let Node::Add { lhs, rhs } = node {
                let of = |t: &Term| {
                    let j = t.node.index();
                    if j < i && self.stages[j] == self.stages[i] {
                        d[j]
                    } else {
                        0
                    }
                };
                d[i] = 1 + of(lhs).max(of(rhs));
            }
        }
        d
    }

    /// The deepest within-stage adder chain — the pipelined critical path.
    pub fn critical_stage_depth(&self) -> u32 {
        self.stage_depths().iter().copied().max().unwrap_or(0)
    }

    /// Structural legality of the stage assignment: the input sits in
    /// stage 0, no stage exceeds the latency, and no adder consumes a
    /// value from a *later* stage (which would need a value before it is
    /// produced — an illegal retiming cycle). When `max_stage_depth` is
    /// given, every stage's combinational depth must also stay within it.
    pub fn is_legal(&self, max_stage_depth: Option<u32>) -> bool {
        if self.stages.len() != self.graph.len() {
            return false;
        }
        if let Some(&s0) = self.stages.first() {
            if s0 != 0 {
                return false;
            }
        }
        if self.stages.iter().any(|&s| s > self.latency) {
            return false;
        }
        for (i, node) in self.graph.nodes().iter().enumerate() {
            if let Node::Add { lhs, rhs } = node {
                for t in [lhs, rhs] {
                    let j = t.node.index();
                    if j >= i || self.stages[j] > self.stages[i] {
                        return false;
                    }
                }
            }
        }
        match max_stage_depth {
            Some(m) => m >= 1 && self.critical_stage_depth() <= m,
            None => true,
        }
    }

    /// Removes one register (for fault-injection in tests and for the
    /// `MRP040` unregistered-crossing lint to have something to catch).
    /// Returns whether the register existed.
    pub fn drop_register(&mut self, node: usize, boundary: u32) -> bool {
        let Some(regs) = self.registered.get_mut(node) else {
            return false;
        };
        match regs.iter().position(|&b| b == boundary) {
            Some(k) => {
                regs.remove(k);
                true
            }
            None => false,
        }
    }

    /// Fresh all-zero register state for [`PipelinedNetlist::step`].
    pub fn new_state(&self) -> Vec<i64> {
        vec![0; self.graph.len() * (self.latency as usize + 1)]
    }

    /// Evaluates one clock edge: feeds `x` into stage 0 and returns the
    /// output values sampled after the last stage (one per registered
    /// output, `0` for `expected = 0` placeholders).
    ///
    /// `state` holds, per node, its value at each pipeline position
    /// `0..=latency`; registers sample the *previous* cycle's value one
    /// boundary earlier, while a position without a register wires the
    /// *current* value through — a missing register therefore skews the
    /// timing exactly as it would in hardware. Arithmetic wraps on `i64`
    /// overflow; the equivalence check compares against an exact `i128`
    /// reference, so overflow reads as a mismatch, never a false pass.
    pub fn step(&self, state: &mut Vec<i64>, x: i64) -> Vec<i64> {
        let w = self.latency as usize + 1;
        debug_assert_eq!(state.len(), self.graph.len() * w);
        let prev = std::mem::take(state);
        let mut cur = vec![0i64; prev.len()];
        for (i, node) in self.graph.nodes().iter().enumerate() {
            let s = self.stages[i] as usize;
            cur[i * w + s] = match node {
                Node::Input => x,
                Node::Add { lhs, rhs } => {
                    let term = |t: &Term| {
                        let j = t.node.index();
                        let v = if j < i { cur[j * w + s] as i128 } else { 0 };
                        let v = v << t.shift;
                        if t.negate {
                            -v
                        } else {
                            v
                        }
                    };
                    (term(lhs) + term(rhs)) as i64
                }
            };
            for b in (s + 1)..w {
                cur[i * w + b] = if self.registered[i].contains(&(b as u32)) {
                    prev[i * w + b - 1]
                } else {
                    cur[i * w + b - 1]
                };
            }
        }
        let outs = self
            .graph
            .outputs()
            .iter()
            .map(|o| {
                if o.expected == 0 {
                    return 0;
                }
                let j = o.term.node.index();
                let v = if j < self.graph.len() {
                    cur[j * w + (w - 1)] as i128
                } else {
                    0
                };
                let v = v << o.term.shift;
                (if o.term.negate { -v } else { v }) as i64
            })
            .collect();
        *state = cur;
        outs
    }

    /// Latency-adjusted coefficient equivalence: streams `samples` (then
    /// `latency` zeros to drain the pipe) and checks every nonzero output
    /// at cycle `t` equals `expected · x[t - latency]` (zero while the
    /// pipe fills). Returns the first failing `(label, x)`, or `None`.
    ///
    /// This is the pipelined counterpart of
    /// [`mrp_arch::AdderGraph::verify_outputs`] and the gate every
    /// pipelining/retiming transform must pass before acceptance.
    pub fn verify_outputs_latency_adjusted(&self, samples: &[i64]) -> Option<(String, i64)> {
        let l = self.latency as usize;
        let feed = |t: usize| samples.get(t).copied().unwrap_or(0);
        let mut state = self.new_state();
        for t in 0..samples.len() + l {
            let outs = self.step(&mut state, feed(t));
            let x_ref = if t >= l { feed(t - l) } else { 0 };
            for (o, &got) in self.graph.outputs().iter().zip(&outs) {
                if o.expected == 0 {
                    continue;
                }
                if got as i128 != o.expected as i128 * x_ref as i128 {
                    return Some((o.label.clone(), x_ref));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::Term;

    /// x -> a(7x, d1) -> b(29x, d2) -> c(117x, d3); outputs on a and c.
    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        let c = g.add(Term::shifted(b, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(a), 7);
        g.push_output("c1", Term::of(c), 117);
        g
    }

    #[test]
    fn register_set_covers_every_crossing() {
        // Stages 0,0 | 1,1: x crosses into stage 1 (boundary 1), b and c
        // are in stage 1, a feeds b across boundary 1 and the "c0" output
        // across boundary 1; outputs sampled at boundary 1.
        let net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 1]);
        assert_eq!(net.latency, 1);
        assert_eq!(net.registered, vec![vec![1], vec![1], vec![], vec![]]);
        assert_eq!(net.register_count(), 2);
        assert!(net.is_legal(Some(2)));
        assert_eq!(net.critical_stage_depth(), 2);
    }

    #[test]
    fn single_stage_matches_combinational() {
        let net = PipelinedNetlist::new(chain(), vec![0, 0, 0, 0]);
        assert_eq!(net.latency, 0);
        assert_eq!(net.register_count(), 0);
        let mut state = net.new_state();
        let outs = net.step(&mut state, 5);
        assert_eq!(outs, vec![35, 585]);
    }

    #[test]
    fn latency_adjusted_verification_passes_on_a_legal_pipeline() {
        for stages in [vec![0, 0, 1, 1], vec![0, 1, 1, 2], vec![0, 1, 2, 3]] {
            let net = PipelinedNetlist::new(chain(), stages.clone());
            assert!(net.is_legal(None), "stages {stages:?}");
            assert_eq!(
                net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]),
                None,
                "stages {stages:?}"
            );
        }
    }

    #[test]
    fn missing_register_fails_equivalence() {
        let mut net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 1]);
        assert!(net.drop_register(0, 1)); // x now wires through the boundary
        assert!(net
            .verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2])
            .is_some());
    }

    #[test]
    fn illegal_assignments_are_rejected() {
        // Operand in a later stage than its consumer.
        let net = PipelinedNetlist::new(chain(), vec![0, 1, 0, 1]);
        assert!(!net.is_legal(None));
        // Input off stage 0.
        let net = PipelinedNetlist::new(chain(), vec![1, 1, 1, 1]);
        assert!(!net.is_legal(None));
        // Stage depth bound.
        let net = PipelinedNetlist::new(chain(), vec![0, 0, 0, 1]);
        assert!(net.is_legal(Some(2)));
        assert!(!net.is_legal(Some(1)));
    }

    #[test]
    fn outputs_at_early_stages_are_delayed_to_the_end() {
        // a sits in stage 0 but "c0" must appear latency cycles later.
        let net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 2]);
        assert_eq!(net.latency, 2);
        // a needs registers at boundaries 1 (feeds b? no — b is stage 1,
        // a is stage 0 → boundary 1) and 2 (output sampling).
        assert_eq!(net.registered[1], vec![1, 2]);
        assert_eq!(net.verify_outputs_latency_adjusted(&[1, 2, 3, -5]), None);
    }
}
