//! Structural transforms: automatic pipelining and register retiming.
//!
//! Both transforms preserve the combinational structure (they never move
//! an adder, only the stage boundaries around it), so coefficient
//! correctness reduces to the latency-adjusted equivalence check on the
//! resulting [`PipelinedNetlist`]. Both are deterministic: node order and
//! candidate order are fixed, and ties never move a register.

use crate::analyses::Depth;
use crate::manager::Analyzer;
use crate::pipeline::PipelinedNetlist;

/// Before/after summary a transform reports alongside its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformDelta {
    /// Combinational critical path of the input graph (adder stages).
    pub combinational_depth: u32,
    /// Deepest within-stage adder chain after the transform.
    pub stage_depth: u32,
    /// Pipeline latency in cycles.
    pub latency: u32,
    /// Pipeline registers before retiming (straight depth slicing).
    pub registers_before: usize,
    /// Pipeline registers after retiming.
    pub registers_after: usize,
    /// Accepted retiming moves.
    pub retime_moves: usize,
}

/// Slices the graph into pipeline stages of at most `max_stage_depth`
/// adders: an adder at recomputed depth `d` lands in stage
/// `(d - 1) / max_stage_depth`, the input in stage 0. The result is
/// legal by construction and has latency
/// `ceil(combinational_depth / max_stage_depth) - 1` boundaries.
///
/// # Panics
///
/// Panics if `max_stage_depth` is 0.
pub fn pipeline_by_depth(az: &Analyzer<'_>, max_stage_depth: u32) -> PipelinedNetlist {
    assert!(max_stage_depth >= 1, "stage depth must be at least 1");
    let _span = mrp_obs::span("transform.pipeline");
    let depth = az.get_analysis::<Depth>();
    let stages = depth
        .depths
        .iter()
        .map(|&d| if d == 0 { 0 } else { (d - 1) / max_stage_depth })
        .collect();
    PipelinedNetlist::new(az.graph().clone(), stages)
}

/// Greedy register retiming: repeatedly tries moving each adder one
/// stage earlier or later (in node index order, earlier first) and keeps
/// the move iff the assignment stays legal — including the
/// `max_stage_depth` bound — and the total register count strictly
/// drops. Runs to a fixpoint; latency is preserved. Returns the number
/// of accepted moves.
pub fn retime(net: &mut PipelinedNetlist, max_stage_depth: u32) -> usize {
    let _span = mrp_obs::span("transform.retime");
    let mut moves = 0usize;
    loop {
        let mut improved = false;
        for n in 1..net.stages.len() {
            for delta in [-1i64, 1] {
                let old = net.stages[n];
                let cand = old as i64 + delta;
                if cand < 0 || cand > net.latency as i64 {
                    continue;
                }
                let before = net.register_count();
                net.stages[n] = cand as u32;
                net.recompute_registers();
                if net.is_legal(Some(max_stage_depth)) && net.register_count() < before {
                    moves += 1;
                    improved = true;
                } else {
                    net.stages[n] = old;
                    net.recompute_registers();
                }
            }
        }
        if !improved {
            return moves;
        }
    }
}

/// The full transform: depth-slice into stages of at most
/// `max_stage_depth` adders, then retime registers away. Returns the
/// netlist plus its [`TransformDelta`].
///
/// The caller owns acceptance: run the pipelined lint and the
/// latency-adjusted equivalence check before using the result.
///
/// # Panics
///
/// Panics if `max_stage_depth` is 0.
pub fn pipeline_and_retime(
    az: &Analyzer<'_>,
    max_stage_depth: u32,
) -> (PipelinedNetlist, TransformDelta) {
    let combinational_depth = az.get_analysis::<Depth>().max;
    let mut net = pipeline_by_depth(az, max_stage_depth);
    let registers_before = net.register_count();
    let retime_moves = retime(&mut net, max_stage_depth);
    let delta = TransformDelta {
        combinational_depth,
        stage_depth: net.critical_stage_depth(),
        latency: net.latency,
        registers_before,
        registers_after: net.register_count(),
        retime_moves,
    };
    (net, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::AnalysisContext;
    use mrp_arch::{AdderGraph, Term};

    /// A deep chain plus a shallow side node with high fanout.
    fn deep() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let mut prev = x;
        for _ in 0..6 {
            prev = g.add(Term::shifted(prev, 1), Term::of(x)).unwrap();
        }
        g.push_output("c0", Term::of(prev), g.value(prev));
        g
    }

    #[test]
    fn depth_slicing_is_legal_and_bounds_stage_depth() {
        let g = deep();
        let az = Analyzer::new(&g, AnalysisContext::default());
        for m in 1..=6 {
            let net = pipeline_by_depth(&az, m);
            assert!(net.is_legal(Some(m)), "m={m}");
            assert_eq!(net.latency, 6_u32.div_ceil(m) - 1, "m={m}");
            assert_eq!(
                net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]),
                None,
                "m={m}"
            );
        }
    }

    #[test]
    fn retime_never_increases_registers_and_stays_equivalent() {
        let g = deep();
        let az = Analyzer::new(&g, AnalysisContext::default());
        let mut net = pipeline_by_depth(&az, 2);
        let before = net.register_count();
        let latency = net.latency;
        retime(&mut net, 2);
        assert!(net.register_count() <= before);
        assert_eq!(net.latency, latency);
        assert!(net.is_legal(Some(2)));
        assert_eq!(
            net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]),
            None
        );
    }

    #[test]
    fn retime_finds_an_obvious_win() {
        // x -> a (stage 0), consumed only in stage 1 by b and c: placing
        // a in stage 1 saves its boundary register (x is registered
        // anyway). Build the bad assignment by hand.
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // 3
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 13
        let c = g.add(Term::shifted(a, 3), Term::negated(x)).unwrap(); // 23
        g.push_output("c0", Term::of(b), 13);
        g.push_output("c1", Term::of(c), 23);
        let mut net = PipelinedNetlist::new(g, vec![0, 0, 1, 1]);
        assert_eq!(net.register_count(), 2); // x and a cross boundary 1
        let moves = retime(&mut net, 2);
        assert_eq!(moves, 1);
        assert_eq!(net.stages, vec![0, 1, 1, 1]);
        assert_eq!(net.register_count(), 1); // only x crosses
        assert_eq!(
            net.verify_outputs_latency_adjusted(&[-3, -1, 0, 1, 2, 7, 100]),
            None
        );
    }

    #[test]
    fn pipeline_and_retime_reports_the_delta() {
        let g = deep();
        let az = Analyzer::new(&g, AnalysisContext::default());
        let (net, delta) = pipeline_and_retime(&az, 3);
        assert_eq!(delta.combinational_depth, 6);
        assert!(delta.stage_depth <= 3);
        assert_eq!(delta.latency, net.latency);
        assert!(delta.registers_after <= delta.registers_before);
        assert_eq!(delta.registers_after, net.register_count());
    }
}
