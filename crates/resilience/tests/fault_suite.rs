//! Seeded fault-injection suite over the example filters.
//!
//! Every injected fault — stage timeout, simulated panic, corrupted
//! netlist, overflow trigger — must still yield a lint-clean,
//! coefficient-equivalent netlist from a lower rung, with the degradation
//! recorded. No scenario depends on wall-clock time: timeouts are forced
//! by the injector, so the suite replays identically everywhere.

use mrp_filters::example_filters;
use mrp_lint::{lint_graph, LintConfig};
use mrp_numrep::{quantize, Scaling};
use mrp_resilience::{synthesize, FaultKind, FaultPlan, PipelineError, Rung, SynthConfig};

/// The paper's worked example plus two designed/quantized example
/// filters — enough diversity to hit MRP, CSE, and free-shift paths
/// while keeping the sweep fast.
fn example_coefficient_sets() -> Vec<Vec<i64>> {
    let mut sets = vec![vec![70, 66, 17, 9, 27, 41, 56, 11]];
    for ex in example_filters().iter().take(2) {
        let taps = ex.design().expect("example designs");
        let q = quantize(&taps, 12, Scaling::Uniform).expect("example quantizes");
        sets.push(q.values);
    }
    sets
}

fn assert_valid(coeffs: &[i64], out: &mrp_resilience::SynthOutcome, context: &str) {
    // Lint-clean (no error-severity findings).
    let report = lint_graph(&out.graph, &LintConfig::default());
    assert!(
        !report.has_errors(),
        "{context}: accepted netlist fails lint:\n{}",
        report.render_pretty()
    );
    // Coefficient-equivalent to the spec on a spread of inputs.
    assert_eq!(
        out.graph.verify_outputs(&[-9, -1, 0, 1, 5, 333]),
        None,
        "{context}: accepted netlist is not coefficient-equivalent"
    );
    assert_eq!(out.graph.outputs().len(), coeffs.len(), "{context}");
    for (i, o) in out.graph.outputs().iter().enumerate() {
        assert_eq!(
            o.expected, coeffs[i],
            "{context}: output {i} expected value"
        );
    }
}

#[test]
fn every_fault_kind_on_every_rung_still_synthesizes() {
    for coeffs in example_coefficient_sets() {
        for kind in FaultKind::ALL {
            for target in [Rung::MrpCse, Rung::Mrp, Rung::CseOnly] {
                let spec = format!("{}@{},seed=11", kind.name(), target.name());
                let cfg = SynthConfig {
                    faults: FaultPlan::parse(&spec).unwrap(),
                    ..SynthConfig::default()
                };
                let context = format!("fault `{spec}` on {} taps", coeffs.len());
                let out = synthesize(&coeffs, &cfg)
                    .unwrap_or_else(|e| panic!("{context}: ladder failed: {e}"));
                assert_valid(&coeffs, &out, &context);
                assert!(
                    out.rung < target || out.degradations.is_empty(),
                    "{context}: landed on {} without degrading below the faulted rung",
                    out.rung
                );
                // The degradation reason for the faulted rung is recorded.
                if let Some(d) = out.degradations.iter().find(|d| d.rung == target) {
                    let expected_kind = match kind {
                        FaultKind::Timeout => "timeout",
                        FaultKind::Panic => "panic",
                        FaultKind::Corrupt => "lint-rejected",
                        FaultKind::Overflow => "arch",
                    };
                    assert_eq!(
                        d.error.kind(),
                        expected_kind,
                        "{context}: wrong degradation reason: {}",
                        d.error
                    );
                }
            }
        }
    }
}

#[test]
fn wildcard_faults_land_on_spt() {
    let coeffs = example_coefficient_sets().remove(1);
    for kind in FaultKind::ALL {
        let spec = format!("{}@*,seed=3", kind.name());
        let cfg = SynthConfig {
            faults: FaultPlan::parse(&spec).unwrap(),
            ..SynthConfig::default()
        };
        let out = synthesize(&coeffs, &cfg)
            .unwrap_or_else(|e| panic!("wildcard `{spec}` exhausted the ladder: {e}"));
        assert_eq!(out.rung, Rung::Spt, "`{spec}` must fall through to spt");
        assert_eq!(out.degradations.len(), 3, "one degradation per upper rung");
        assert_valid(&coeffs, &out, &spec);
    }
}

#[test]
fn fault_outcomes_are_deterministic() {
    let coeffs = example_coefficient_sets().remove(0);
    let run = || {
        let cfg = SynthConfig {
            faults: FaultPlan::parse("corrupt@mrp+cse,panic@mrp,seed=99").unwrap(),
            ..SynthConfig::default()
        };
        synthesize(&coeffs, &cfg).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.rung, b.rung);
    assert_eq!(a.adders(), b.adders());
    assert_eq!(a.degradations.len(), b.degradations.len());
    for (da, db) in a.degradations.iter().zip(&b.degradations) {
        assert_eq!(
            da.error, db.error,
            "degradation reasons must replay exactly"
        );
    }
}

#[test]
fn corruption_is_caught_by_the_lint_gate_not_shipped() {
    let coeffs = example_coefficient_sets().remove(0);
    let cfg = SynthConfig {
        faults: FaultPlan::parse("corrupt@mrp+cse,corrupt@mrp,seed=5").unwrap(),
        ..SynthConfig::default()
    };
    let out = synthesize(&coeffs, &cfg).unwrap();
    assert_eq!(out.rung, Rung::CseOnly);
    for d in &out.degradations {
        assert!(
            matches!(d.error, PipelineError::LintRejected { .. }),
            "corruption must surface as a lint rejection, got {}",
            d.error
        );
    }
    // The accepted netlist carries no trace of the injected outputs.
    assert!(out
        .graph
        .outputs()
        .iter()
        .all(|o| !o.label.starts_with("injected_corruption")));
}

#[test]
fn faulting_the_terminal_rung_exhausts_the_ladder_with_full_history() {
    let coeffs = example_coefficient_sets().remove(0);
    let cfg = SynthConfig {
        faults: FaultPlan::parse("panic@*,panic@spt").unwrap(),
        ..SynthConfig::default()
    };
    match synthesize(&coeffs, &cfg) {
        Err(PipelineError::LadderExhausted(ds)) => {
            assert_eq!(ds.len(), 4, "every rung's failure is recorded");
            let rungs: Vec<Rung> = ds.iter().map(|d| d.rung).collect();
            assert_eq!(
                rungs,
                vec![Rung::MrpCse, Rung::Mrp, Rung::CseOnly, Rung::Spt]
            );
        }
        other => panic!("expected LadderExhausted, got {other:?}"),
    }
}

#[test]
fn aggressive_deadline_degrades_to_spt() {
    // A zero deadline is already expired when the first rung starts; the
    // three upper rungs time out without running and the terminal SPT
    // rung (which ignores the deadline) must still deliver.
    for coeffs in example_coefficient_sets() {
        let cfg = SynthConfig {
            budget: mrp_resilience::StageBudget {
                deadline_ms: Some(0),
                ..Default::default()
            },
            ..SynthConfig::default()
        };
        let out = synthesize(&coeffs, &cfg).unwrap();
        assert_eq!(out.rung, Rung::Spt);
        assert_eq!(out.degradations.len(), 3);
        for d in &out.degradations {
            assert!(
                matches!(
                    d.error,
                    PipelineError::Timeout {
                        injected: false,
                        ..
                    }
                ),
                "expected a real deadline timeout, got {}",
                d.error
            );
        }
        assert_valid(&coeffs, &out, "deadline_ms=0");
    }
}

#[test]
fn generous_deadline_changes_nothing() {
    let coeffs = example_coefficient_sets().remove(0);
    let cfg = SynthConfig {
        budget: mrp_resilience::StageBudget {
            deadline_ms: Some(600_000),
            ..Default::default()
        },
        ..SynthConfig::default()
    };
    let out = synthesize(&coeffs, &cfg).unwrap();
    assert_eq!(out.rung, Rung::MrpCse);
    assert!(!out.degraded());
    assert_valid(&coeffs, &out, "deadline_ms=600000");
}
