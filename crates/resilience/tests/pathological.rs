//! Pathological coefficient sets: the supervised driver must synthesize
//! each (possibly via fallback) into a lint-clean, coefficient-equivalent
//! netlist instead of panicking or returning nothing.

use mrp_lint::{lint_graph, LintConfig};
use mrp_resilience::{synthesize, PipelineError, SynthConfig};

fn synth_and_check(coeffs: &[i64], context: &str) -> mrp_resilience::SynthOutcome {
    let out = synthesize(coeffs, &SynthConfig::default())
        .unwrap_or_else(|e| panic!("{context}: failed to synthesize: {e}"));
    // Lint at an input width the coefficient magnitudes leave room for
    // within the linter's 63-bit analysis range (the driver's own gate
    // clamps the same way).
    let widest = coeffs
        .iter()
        .map(|c| 64 - c.unsigned_abs().leading_zeros())
        .max()
        .unwrap_or(0);
    let lint_cfg = LintConfig {
        input_width: 16.min(63u32.saturating_sub(widest + 2).max(1)),
        ..LintConfig::default()
    };
    let report = lint_graph(&out.graph, &lint_cfg);
    assert!(
        !report.has_errors(),
        "{context}: lint errors:\n{}",
        report.render_pretty()
    );
    assert_eq!(
        out.graph.verify_outputs(&[-7, -1, 0, 1, 2, 63]),
        None,
        "{context}: not coefficient-equivalent"
    );
    assert_eq!(out.graph.outputs().len(), coeffs.len(), "{context}");
    out
}

#[test]
fn empty_vector_yields_an_empty_block() {
    let out = synth_and_check(&[], "empty");
    assert_eq!(out.adders(), 0);
    assert!(out.graph.outputs().is_empty());
    // The MRP rungs reject an empty vector; the ladder records why.
    assert!(out.degraded());
}

#[test]
fn all_zero_coefficients() {
    let out = synth_and_check(&[0, 0, 0, 0], "all-zero");
    assert_eq!(out.adders(), 0, "zeros are free");
}

#[test]
fn single_coefficient() {
    for c in [1i64, 7, -255, 1024] {
        synth_and_check(&[c], &format!("single [{c}]"));
    }
}

#[test]
fn duplicated_coefficients() {
    synth_and_check(&[45, 45, 45, 45, 45, 45], "duplicated");
    synth_and_check(&[7, -7, 14, -14, 28, -28], "shift/sign duplicates");
}

#[test]
fn maximum_width_values_near_overflow() {
    // The supported magnitude ceiling is 2^48; widths this close to the
    // tracking limit stress shift/width handling in every rung.
    let near = (1i64 << 48) - 1;
    let out = synth_and_check(&[near, near - 2, (1 << 48) - 5], "near-overflow");
    assert!(out.adders() > 0);
    synth_and_check(&[1 << 48], "exactly 2^48 (a free shift)");
}

#[test]
fn out_of_range_coefficients_exhaust_the_ladder_cleanly() {
    // Beyond the supported range even SPT cannot realize the value; the
    // driver must report a structured ladder exhaustion, not panic.
    match synthesize(&[1 << 50], &SynthConfig::default()) {
        Err(PipelineError::LadderExhausted(ds)) => {
            assert_eq!(ds.len(), 4);
            assert!(ds.iter().all(|d| matches!(d.error, PipelineError::Mrp(_))));
        }
        other => panic!("expected LadderExhausted, got {other:?}"),
    }
}

#[test]
fn mixed_pathologies_at_once() {
    // Zeros, duplicates, signs, powers of two, and a wide value together.
    let coeffs = [0, 1, -1, 2, -2, 4096, 45, 45, -90, (1 << 40) + 1, 0];
    synth_and_check(&coeffs, "mixed");
}
