//! The [`PipelineError`] taxonomy.
//!
//! Every way a synthesis stage can fail — including ways that would
//! normally abort the process — is folded into one recoverable error type
//! so the supervising driver can record *why* a rung failed and descend
//! the fallback ladder instead of propagating a crash.

use std::fmt;

use mrp_arch::ArchError;
use mrp_core::MrpError;
use mrp_filters::DesignError;
use mrp_numrep::QuantizeError;

use crate::ladder::Rung;

/// One recorded rung failure: which rung was attempted and why it was
/// rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The rung that failed.
    pub rung: Rung,
    /// Why it failed.
    pub error: PipelineError,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rung.name(), self.error)
    }
}

/// Everything that can go wrong in a supervised synthesis pipeline.
///
/// The first four variants are produced by the supervision machinery
/// itself (budgets, panic isolation, the lint gate, output verification);
/// the wrapped variants carry errors surfaced by the underlying stages.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A stage exceeded its wall-clock budget (or a fault injector
    /// simulated that it did).
    Timeout {
        /// Stage that timed out (e.g. `synth[mrp+cse]`).
        stage: String,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
        /// `true` when forced by deterministic fault injection.
        injected: bool,
    },
    /// A stage panicked; the panic was caught at the stage boundary.
    Panic {
        /// Stage that panicked.
        stage: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A stage's iteration/node budget ran out without a usable result.
    BudgetExhausted {
        /// Stage whose budget ran out.
        stage: String,
        /// What was being counted.
        detail: String,
    },
    /// The produced netlist failed the `mrp-lint` gate.
    LintRejected {
        /// Stage whose output was rejected.
        stage: String,
        /// Error-severity finding count.
        errors: usize,
        /// The first error finding, verbatim.
        first: String,
    },
    /// The produced netlist is not coefficient-equivalent to the spec.
    NotEquivalent {
        /// Label of the first mismatching output.
        label: String,
        /// Input sample that exposed the mismatch.
        input: i64,
    },
    /// MRP optimization failed.
    Mrp(MrpError),
    /// Adder-graph construction failed (e.g. value overflow).
    Arch(ArchError),
    /// Coefficient quantization failed.
    Quantize(QuantizeError),
    /// Filter design failed.
    Design(DesignError),
    /// Driver configuration rejected.
    BadConfig(String),
    /// Every admissible rung of the fallback ladder failed; the record of
    /// each failure is attached.
    LadderExhausted(Vec<Degradation>),
}

impl PipelineError {
    /// Stable lowercase tag naming the variant, for JSON output and
    /// degradation summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            PipelineError::Timeout { .. } => "timeout",
            PipelineError::Panic { .. } => "panic",
            PipelineError::BudgetExhausted { .. } => "budget-exhausted",
            PipelineError::LintRejected { .. } => "lint-rejected",
            PipelineError::NotEquivalent { .. } => "not-equivalent",
            PipelineError::Mrp(_) => "mrp",
            PipelineError::Arch(_) => "arch",
            PipelineError::Quantize(_) => "quantize",
            PipelineError::Design(_) => "design",
            PipelineError::BadConfig(_) => "bad-config",
            PipelineError::LadderExhausted(_) => "ladder-exhausted",
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Timeout {
                stage,
                budget_ms,
                injected,
            } => {
                let how = if *injected { "injected" } else { "exceeded" };
                write!(f, "{stage}: {how} wall-clock budget of {budget_ms} ms")
            }
            PipelineError::Panic { stage, message } => {
                write!(f, "{stage}: panicked: {message}")
            }
            PipelineError::BudgetExhausted { stage, detail } => {
                write!(f, "{stage}: budget exhausted ({detail})")
            }
            PipelineError::LintRejected {
                stage,
                errors,
                first,
            } => {
                write!(
                    f,
                    "{stage}: lint gate rejected netlist ({errors} error(s); first: {first})"
                )
            }
            PipelineError::NotEquivalent { label, input } => {
                write!(
                    f,
                    "output `{label}` is not coefficient-equivalent (mismatch at x = {input})"
                )
            }
            PipelineError::Mrp(e) => write!(f, "mrp optimization failed: {e}"),
            PipelineError::Arch(e) => write!(f, "netlist construction failed: {e}"),
            PipelineError::Quantize(e) => write!(f, "quantization failed: {e}"),
            PipelineError::Design(e) => write!(f, "filter design failed: {e}"),
            PipelineError::BadConfig(msg) => write!(f, "invalid driver configuration: {msg}"),
            PipelineError::LadderExhausted(degradations) => {
                write!(f, "every fallback rung failed:")?;
                for d in degradations {
                    write!(f, "\n  - {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Mrp(e) => Some(e),
            PipelineError::Arch(e) => Some(e),
            PipelineError::Quantize(e) => Some(e),
            PipelineError::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MrpError> for PipelineError {
    fn from(e: MrpError) -> Self {
        // Unwrap the architecture layer so the taxonomy stays flat.
        match e {
            MrpError::Arch(a) => PipelineError::Arch(a),
            other => PipelineError::Mrp(other),
        }
    }
}

impl From<ArchError> for PipelineError {
    fn from(e: ArchError) -> Self {
        PipelineError::Arch(e)
    }
}

impl From<QuantizeError> for PipelineError {
    fn from(e: QuantizeError) -> Self {
        PipelineError::Quantize(e)
    }
}

impl From<DesignError> for PipelineError {
    fn from(e: DesignError) -> Self {
        PipelineError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_supervision_variants() {
        let t = PipelineError::Timeout {
            stage: "synth[mrp]".into(),
            budget_ms: 50,
            injected: true,
        };
        assert!(t.to_string().contains("injected"));
        assert!(t.to_string().contains("50 ms"));
        let p = PipelineError::Panic {
            stage: "synth[mrp+cse]".into(),
            message: "index out of bounds".into(),
        };
        assert!(p.to_string().contains("panicked"));
        assert_eq!(p.kind(), "panic");
    }

    #[test]
    fn mrp_arch_errors_are_flattened() {
        let e = PipelineError::from(MrpError::Arch(ArchError::ValueOverflow));
        assert_eq!(e, PipelineError::Arch(ArchError::ValueOverflow));
        assert_eq!(e.kind(), "arch");
    }

    #[test]
    fn ladder_exhausted_lists_rungs() {
        let e = PipelineError::LadderExhausted(vec![
            Degradation {
                rung: Rung::MrpCse,
                error: PipelineError::Mrp(MrpError::Empty),
            },
            Degradation {
                rung: Rung::Mrp,
                error: PipelineError::Mrp(MrpError::Empty),
            },
        ]);
        let text = e.to_string();
        assert!(text.contains("mrp+cse:"));
        assert!(text.contains("every fallback rung failed"));
    }

    #[test]
    fn source_chains_to_wrapped_errors() {
        use std::error::Error as _;
        assert!(PipelineError::Arch(ArchError::ValueOverflow)
            .source()
            .is_some());
        assert!(PipelineError::BadConfig("x".into()).source().is_none());
    }
}
