//! Stage budgets: wall-clock deadlines and node/iteration caps.
//!
//! The wall-clock side mirrors the in-tree timing harness
//! (`mrp-bench`'s `timing` module): plain [`std::time::Instant`], no
//! external dependency. Deterministic tests never rely on real clock
//! expiry — the fault-injection framework forces timeouts explicitly —
//! so the clock here only has to be monotonic, not mockable.

use std::time::{Duration, Instant};

/// Resource budget for one synthesis stage (or one whole ladder run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBudget {
    /// Wall-clock limit; `None` = unlimited.
    pub deadline_ms: Option<u64>,
    /// Node-expansion cap for the exact set-cover search.
    pub exact_nodes: usize,
    /// Node-expansion cap for the exact branch-and-bound MCM search
    /// (the `exact` rung, `mrp-exact`).
    pub mcm_nodes: usize,
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget {
            deadline_ms: None,
            exact_nodes: mrp_core::DEFAULT_NODE_BUDGET,
            mcm_nodes: mrp_exact::DEFAULT_MCM_NODE_BUDGET,
        }
    }
}

/// A running deadline: start instant plus optional limit.
///
/// All driver stages share one `Deadline`; each stage asks for the
/// remaining allowance when it starts.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// Starts the clock with an optional millisecond limit.
    pub fn start(limit_ms: Option<u64>) -> Self {
        Deadline {
            start: Instant::now(),
            limit: limit_ms.map(Duration::from_millis),
        }
    }

    /// The configured limit in milliseconds, if any.
    pub fn limit_ms(&self) -> Option<u64> {
        self.limit.map(|d| d.as_millis() as u64)
    }

    /// Milliseconds elapsed since the clock started.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Time left, or `None` when unlimited. `Some(Duration::ZERO)` means
    /// the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.limit
            .map(|limit| limit.saturating_sub(self.start.elapsed()))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Some(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::start(None);
        assert_eq!(d.remaining(), None);
        assert!(!d.expired());
        assert_eq!(d.limit_ms(), None);
    }

    #[test]
    fn zero_limit_expires_immediately() {
        let d = Deadline::start(Some(0));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.limit_ms(), Some(0));
    }

    #[test]
    fn generous_limit_not_expired_yet() {
        let d = Deadline::start(Some(3_600_000));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn default_budget_matches_exact_default() {
        let b = StageBudget::default();
        assert_eq!(b.exact_nodes, mrp_core::DEFAULT_NODE_BUDGET);
        assert_eq!(b.mcm_nodes, mrp_exact::DEFAULT_MCM_NODE_BUDGET);
        assert_eq!(b.deadline_ms, None);
    }
}
