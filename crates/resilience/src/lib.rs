//! Resilient synthesis: stage budgets, panic isolation, a fallback
//! ladder, and deterministic fault injection.
//!
//! The MRP pipeline is a multi-stage flow (SID graph → WMSC cover → root
//! selection → SEED network → overhead adds → netlist → RTL), and several
//! of its stages have pathological inputs: the exact set cover is
//! exponential, the greedy heuristics have adversarial corners, and any
//! stage bug would otherwise abort the whole request. This crate wraps
//! the flow in a supervisor that always produces *some* valid multiplier
//! block:
//!
//! * [`StageBudget`] / [`Deadline`] — wall-clock deadlines plus a node
//!   cap for the exact cover (`budget_exhausted` surfaces as best-so-far,
//!   not failure);
//! * [`PipelineError`] — one taxonomy for every failure mode: timeouts,
//!   caught panics, exhausted budgets, lint-gate rejections, equivalence
//!   failures, and the wrapped stage errors
//!   ([`MrpError`](mrp_core::MrpError), [`ArchError`](mrp_arch::ArchError),
//!   [`QuantizeError`](mrp_numrep::QuantizeError),
//!   [`DesignError`](mrp_filters::DesignError));
//! * [`Rung`] — the declarative fallback ladder `exact → mrp+cse → mrp →
//!   cse → spt`; per-coefficient SPT recoding is always constructible, so
//!   the ladder has a guaranteed floor, and the opt-in `exact` top rung
//!   (the `mrp-exact` branch-and-bound, seeded with the greedy result as
//!   incumbent) never delivers more adders than `mrp+cse` would;
//! * [`FaultPlan`] — seeded, wall-clock-free fault injection (forced
//!   timeouts, simulated panics, corrupted netlists the lint gate must
//!   catch, overflow-path triggers) so every degradation path is testable
//!   deterministically;
//! * [`synthesize`] — the supervised driver: every accepted netlist is
//!   `mrp-lint`-clean and verified coefficient-equivalent, and the
//!   [`SynthOutcome`] records which rung ran and why each higher rung was
//!   rejected.
//!
//! # Examples
//!
//! A panic injected into the best rung degrades one rung instead of
//! crashing, and the outcome says so:
//!
//! ```
//! use mrp_resilience::{synthesize, FaultPlan, Rung, SynthConfig};
//!
//! let cfg = SynthConfig {
//!     faults: FaultPlan::parse("panic@mrp+cse")?,
//!     ..SynthConfig::default()
//! };
//! let out = synthesize(&[70, 66, 17, 9, 27, 41, 56, 11], &cfg)?;
//! assert_eq!(out.rung, Rung::Mrp);
//! assert!(out.degraded());
//! assert_eq!(out.graph.verify_outputs(&[-1, 0, 3]), None);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod budget;
mod driver;
mod error;
mod fault;
mod ladder;

pub use budget::{Deadline, StageBudget};
pub use driver::{
    synthesize, synthesize_under, try_rung, ExactStats, PipelineSummary, RungAttempt, RungOutcome,
    SynthConfig, SynthOutcome,
};
pub use error::{Degradation, PipelineError};
pub use fault::{parse_spec_entries, Fault, FaultKind, FaultPlan, SpecEntry};
pub use ladder::Rung;
