//! The supervised synthesis driver.
//!
//! [`synthesize`] walks the fallback ladder from the configured start rung
//! downward. Each rung attempt is isolated: it runs under
//! [`catch_unwind`] (a panic degrades the ladder instead of crashing the
//! caller), under the shared wall-clock [`Deadline`] (a rung that cannot
//! start before the deadline is skipped; a rung that runs past it is
//! abandoned on a worker thread), and with the exact-cover node cap from
//! the [`StageBudget`]. Whatever a rung produces must pass the `mrp-lint`
//! gate and a coefficient-equivalence check before it is accepted; a
//! netlist that fails either is treated exactly like a rung failure.
//!
//! The terminal `spt` rung runs with no deadline: per-coefficient SPT
//! recoding is always constructible, so a supervised run ends with *some*
//! valid multiplier block unless the input itself is out of range or the
//! caller set a quality floor above the rungs that survived.
//!
//! In debug builds the MRP optimizer additionally lint-checks its own
//! output and panics on internal errors (`debug_assert`); under this
//! driver such a panic is caught at the rung boundary and degrades the
//! ladder like any other fault — the debug hook and the supervisor
//! compose.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use mrp_analysis::{pipeline_and_retime, AnalysisContext, Analyzer};
use mrp_arch::{AdderGraph, Term};
use mrp_core::{realize_cse, realize_simple, MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_exact::{realize_recipes, solve_mcm, McmConfig, McmProblem};
use mrp_lint::{lint_graph, lint_pipelined, LintConfig, Severity};
use mrp_numrep::Repr;

use crate::budget::{Deadline, StageBudget};
use crate::error::{Degradation, PipelineError};
use crate::fault::{FaultKind, FaultPlan};
use crate::ladder::Rung;

/// Input samples used for the coefficient-equivalence gate.
const VERIFY_SAMPLES: [i64; 7] = [-3, -1, 0, 1, 2, 7, 100];

/// Extended stream for the compiled-path re-simulation: the tree-walk
/// witness samples followed by deterministic pseudorandom samples, long
/// enough to exercise lane batching and chunk-boundary delay carries in
/// `mrp-exec` while staying far from `i64` overflow for any coefficient
/// the width gate admits.
fn verify_stream() -> Vec<i64> {
    let mut stream = VERIFY_SAMPLES.to_vec();
    let mut rng = mrp_ptest::Rng::new(0x5EED_51D0);
    while stream.len() < 256 {
        stream.push(rng.i64_in(-1000, 1000));
    }
    stream
}

/// Configuration of one supervised synthesis run.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Base MRP configuration shared by the MRP rungs.
    pub base: MrpConfig,
    /// Wall-clock and node budgets.
    pub budget: StageBudget,
    /// Rung to start from (default: the best, `mrp+cse`).
    pub start_rung: Rung,
    /// Quality floor: the driver refuses to degrade below this rung and
    /// reports [`PipelineError::LadderExhausted`] instead (default: `spt`,
    /// i.e. no floor).
    pub min_rung: Rung,
    /// Lint gate configuration.
    pub lint: LintConfig,
    /// Deterministic faults to inject (default: none).
    pub faults: FaultPlan,
    /// When set, every accepted netlist is additionally pipelined into
    /// stages of at most this many adders (then retimed), and must pass
    /// the pipelined lint plus the latency-adjusted equivalence gate; a
    /// gate failure degrades the ladder like any other rung fault.
    /// `None` keeps the driver purely combinational (default).
    pub pipeline_depth: Option<u32>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            base: MrpConfig::default(),
            budget: StageBudget::default(),
            start_rung: Rung::MrpCse,
            min_rung: Rung::Spt,
            lint: LintConfig::default(),
            faults: FaultPlan::none(),
            pipeline_depth: None,
        }
    }
}

/// What the pipeline gate measured on the accepted netlist, reported
/// alongside the combinational outcome when
/// [`SynthConfig::pipeline_depth`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSummary {
    /// Combinational critical path before pipelining (adder stages).
    pub combinational_depth: u32,
    /// Deepest within-stage adder chain after pipelining + retiming.
    pub stage_depth: u32,
    /// Pipeline latency in cycles.
    pub latency: u32,
    /// Pipeline registers after retiming.
    pub registers: usize,
    /// Retiming moves that were accepted.
    pub retime_moves: usize,
}

impl PipelineSummary {
    /// Critical-path reduction the pipeline bought, in percent.
    pub fn reduction_pct(&self) -> f64 {
        if self.combinational_depth == 0 {
            return 0.0;
        }
        100.0 * (self.combinational_depth - self.stage_depth) as f64
            / self.combinational_depth as f64
    }
}

/// What the exact branch-and-bound MCM search did inside an `exact` rung
/// attempt, reported alongside the attempt's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactStats {
    /// Nodes the branch-and-bound expanded (root included).
    pub nodes: usize,
    /// Whether the node budget (or deadline) clipped the search.
    pub budget_exhausted: bool,
    /// Whether the reported adder count is proved minimal over the
    /// bounded search space.
    pub proven_optimal: bool,
    /// Admissible lower bound on the optimal adder count.
    pub lower_bound: usize,
    /// Whether the search beat the greedy MRP+CSE incumbent (when it
    /// did not, the rung delivers the incumbent's verified netlist).
    pub improved: bool,
}

/// Wall-clock accounting of one attempted rung, whether it was accepted
/// or degraded past. Mirrors the per-rung trace spans (`rung[<name>]`)
/// the driver emits through `mrp-obs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungAttempt {
    /// The rung that was attempted.
    pub rung: Rung,
    /// Wall-clock time the attempt took, milliseconds.
    pub elapsed_ms: u64,
    /// Whether this attempt produced the accepted netlist.
    pub accepted: bool,
    /// Branch-and-bound accounting, for `exact` rung attempts that ran
    /// the search (`None` on every other rung, and on attempts that
    /// failed before the search finished).
    pub exact: Option<ExactStats>,
}

/// The result of a supervised synthesis run.
#[derive(Debug, Clone)]
pub struct SynthOutcome {
    /// The accepted multiplier block (lint-clean, coefficient-equivalent).
    pub graph: AdderGraph,
    /// The rung that produced it.
    pub rung: Rung,
    /// Every rung failure recorded on the way down, best rung first.
    pub degradations: Vec<Degradation>,
    /// Per-rung wall-clock accounting, in attempt order (the last entry
    /// is the accepted rung).
    pub attempts: Vec<RungAttempt>,
    /// Warning-severity lint findings on the accepted netlist.
    pub lint_warnings: usize,
    /// Wall-clock time of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Pipeline gate measurements, when a pipeline depth was requested.
    pub pipeline: Option<PipelineSummary>,
}

impl SynthOutcome {
    /// Whether the run landed below its starting rung.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Adders in the accepted block.
    pub fn adders(&self) -> usize {
        self.graph.adder_count()
    }

    /// Human-readable report: rung, size, and each degradation reason.
    pub fn render_pretty(&self) -> String {
        let mut out = format!(
            "rung used: {}{}\nadders: {}\ncritical path: {}\nlint: clean ({} warning(s))\nelapsed: {} ms\n",
            self.rung,
            if self.degraded() { " (degraded)" } else { "" },
            self.adders(),
            self.graph.max_depth(),
            self.lint_warnings,
            self.elapsed_ms,
        );
        if let Some(p) = &self.pipeline {
            out.push_str(&format!(
                "pipeline: latency {} cycle(s), stage depth {} (from {}), \
                 {} register(s), {} retime move(s)\n",
                p.latency, p.stage_depth, p.combinational_depth, p.registers, p.retime_moves,
            ));
        }
        if !self.attempts.is_empty() {
            out.push_str("attempts:\n");
            for a in &self.attempts {
                let exact = match &a.exact {
                    None => String::new(),
                    Some(e) => format!(
                        "; search: {} node(s), lower bound {}{}{}",
                        e.nodes,
                        e.lower_bound,
                        if e.budget_exhausted {
                            ", budget exhausted"
                        } else {
                            ""
                        },
                        if e.proven_optimal {
                            ", proven optimal"
                        } else {
                            ""
                        },
                    ),
                };
                out.push_str(&format!(
                    "  - {}: {} ms ({}{})\n",
                    a.rung,
                    a.elapsed_ms,
                    if a.accepted { "accepted" } else { "failed" },
                    exact
                ));
            }
        }
        if self.degraded() {
            out.push_str("degradations:\n");
            for d in &self.degradations {
                out.push_str(&format!("  - {d}\n"));
            }
        }
        out
    }

    /// Machine-readable report mirroring [`SynthOutcome::render_pretty`].
    pub fn render_json(&self) -> String {
        let degradations: Vec<String> = self
            .degradations
            .iter()
            .map(|d| {
                format!(
                    "{{\"rung\":\"{}\",\"kind\":\"{}\",\"reason\":\"{}\"}}",
                    d.rung,
                    d.error.kind(),
                    json_escape(&d.error.to_string())
                )
            })
            .collect();
        let attempts: Vec<String> = self
            .attempts
            .iter()
            .map(|a| {
                let exact = match &a.exact {
                    None => String::new(),
                    Some(e) => format!(
                        ",\"nodes\":{},\"budget_exhausted\":{},\"proven_optimal\":{},\
                         \"lower_bound\":{},\"improved\":{}",
                        e.nodes, e.budget_exhausted, e.proven_optimal, e.lower_bound, e.improved
                    ),
                };
                format!(
                    "{{\"rung\":\"{}\",\"elapsed_ms\":{},\"accepted\":{}{}}}",
                    a.rung, a.elapsed_ms, a.accepted, exact
                )
            })
            .collect();
        let pipeline = match &self.pipeline {
            None => String::new(),
            Some(p) => format!(
                ",\"pipeline\":{{\"latency\":{},\"stage_depth\":{},\
                 \"combinational_depth\":{},\"registers\":{},\"retime_moves\":{}}}",
                p.latency, p.stage_depth, p.combinational_depth, p.registers, p.retime_moves
            ),
        };
        format!(
            "{{\"rung\":\"{}\",\"degraded\":{},\"adders\":{},\"critical_path\":{},\"lint_warnings\":{},\"elapsed_ms\":{}{},\"attempts\":[{}],\"degradations\":[{}]}}",
            self.rung,
            self.degraded(),
            self.adders(),
            self.graph.max_depth(),
            self.lint_warnings,
            self.elapsed_ms,
            pipeline,
            attempts.join(","),
            degradations.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Synthesizes `coeffs` under supervision, degrading down the fallback
/// ladder until a rung produces a lint-clean, coefficient-equivalent
/// netlist.
///
/// # Errors
///
/// * [`PipelineError::BadConfig`] when `start_rung < min_rung`;
/// * [`PipelineError::LadderExhausted`] when every admissible rung failed
///   (out-of-range coefficients, a quality floor above the surviving
///   rungs, or faults injected into the terminal rung).
///
/// # Examples
///
/// ```
/// use mrp_resilience::{synthesize, Rung, SynthConfig};
///
/// let out = synthesize(&[70, 66, 17, 9, 27, 41, 56, 11], &SynthConfig::default())?;
/// assert_eq!(out.rung, Rung::MrpCse);
/// assert!(!out.degraded());
/// # Ok::<(), mrp_resilience::PipelineError>(())
/// ```
pub fn synthesize(coeffs: &[i64], config: &SynthConfig) -> Result<SynthOutcome, PipelineError> {
    synthesize_under(coeffs, config, Deadline::start(config.budget.deadline_ms))
}

/// [`synthesize`] with a caller-owned [`Deadline`].
///
/// The plain driver starts its clock when it is called; a long-running
/// front end (e.g. `mrpf serve`) instead starts the deadline the moment
/// a request is *admitted*, so time spent queued behind other work counts
/// against the request's budget rather than silently extending it. The
/// outcome's `elapsed_ms` is measured on the same clock, so it includes
/// any such queue wait.
///
/// # Errors
///
/// Same taxonomy as [`synthesize`].
pub fn synthesize_under(
    coeffs: &[i64],
    config: &SynthConfig,
    deadline: Deadline,
) -> Result<SynthOutcome, PipelineError> {
    if config.start_rung < config.min_rung {
        return Err(PipelineError::BadConfig(format!(
            "start rung `{}` is below the quality floor `{}`",
            config.start_rung, config.min_rung
        )));
    }
    if config.pipeline_depth == Some(0) {
        return Err(PipelineError::BadConfig(
            "pipeline depth must be at least 1 adder per stage".to_string(),
        ));
    }
    let _span = mrp_obs::span("synth");
    let mut degradations = Vec::new();
    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut rung = config.start_rung;
    loop {
        // The rung span brackets the attempt on the supervisor thread;
        // stage spans from an isolated worker land on that worker's
        // track but share the same trace clock.
        let rung_span = mrp_obs::span_dyn(format!("rung[{rung}]"));
        let attempt_start = Instant::now();
        let result = attempt_rung(coeffs, rung, config, &deadline);
        let elapsed_ms = rung_span
            .elapsed_ns()
            .map(|ns| ns / 1_000_000)
            .unwrap_or_else(|| attempt_start.elapsed().as_millis() as u64);
        drop(rung_span);
        match result {
            Ok((graph, lint_warnings, pipeline, exact)) => {
                attempts.push(RungAttempt {
                    rung,
                    elapsed_ms,
                    accepted: true,
                    exact,
                });
                return Ok(SynthOutcome {
                    graph,
                    rung,
                    degradations,
                    attempts,
                    lint_warnings,
                    elapsed_ms: deadline.elapsed_ms(),
                    pipeline,
                });
            }
            Err(error) => {
                attempts.push(RungAttempt {
                    rung,
                    elapsed_ms,
                    accepted: false,
                    exact: None,
                });
                mrp_obs::instant_dyn(format!("degrade[{rung}]: {}", error.kind()));
                degradations.push(Degradation { rung, error });
            }
        }
        match rung.next_lower() {
            Some(lower) if lower >= config.min_rung => rung = lower,
            _ => return Err(PipelineError::LadderExhausted(degradations)),
        }
    }
}

/// Result of one successful rung attempt made through [`try_rung`].
#[derive(Debug, Clone)]
pub struct RungOutcome {
    /// The lint-clean, coefficient-equivalent netlist the rung produced.
    pub graph: AdderGraph,
    /// Warning-severity lint findings on the accepted netlist.
    pub lint_warnings: usize,
    /// Pipeline gate measurements, when a pipeline depth was requested.
    pub pipeline: Option<PipelineSummary>,
    /// Branch-and-bound accounting when the rung was `exact`.
    pub exact: Option<ExactStats>,
}

/// Attempts a single rung of the fallback ladder end to end — budgeted,
/// panic-isolated build, then the lint and coefficient-equivalence gates
/// — without walking the ladder on failure. This is the building block
/// concurrent drivers (e.g. `mrp-batch`'s racing mode) use to run
/// independent rung attempts in parallel under the same per-stage
/// budgets the sequential [`synthesize`] driver enforces.
///
/// # Errors
///
/// Returns the same [`PipelineError`] taxonomy as [`synthesize`]; the
/// caller decides whether to degrade, retry, or fail.
pub fn try_rung(
    coeffs: &[i64],
    rung: Rung,
    config: &SynthConfig,
    deadline: &Deadline,
) -> Result<RungOutcome, PipelineError> {
    attempt_rung(coeffs, rung, config, deadline).map(|(graph, lint_warnings, pipeline, exact)| {
        RungOutcome {
            graph,
            lint_warnings,
            pipeline,
            exact,
        }
    })
}

/// Attempts one rung end to end: fault checks, budgeted + isolated build,
/// injected corruption, lint gate, equivalence gate.
fn attempt_rung(
    coeffs: &[i64],
    rung: Rung,
    config: &SynthConfig,
    deadline: &Deadline,
) -> Result<
    (
        AdderGraph,
        usize,
        Option<PipelineSummary>,
        Option<ExactStats>,
    ),
    PipelineError,
> {
    let stage = format!("synth[{rung}]");
    if config.faults.armed(FaultKind::Timeout, rung) {
        return Err(PipelineError::Timeout {
            stage,
            budget_ms: deadline.limit_ms().unwrap_or(0),
            injected: true,
        });
    }
    // The terminal rung ignores the deadline: it is the guaranteed floor,
    // and SPT recoding is cheap enough that running it late beats
    // returning nothing.
    let remaining = if rung == Rung::Spt {
        None
    } else {
        deadline.remaining()
    };
    if remaining == Some(Duration::ZERO) {
        return Err(PipelineError::Timeout {
            stage,
            budget_ms: deadline.limit_ms().unwrap_or(0),
            injected: false,
        });
    }
    let mut rung_cfg = config.base;
    rung_cfg.exact_node_budget = config.budget.exact_nodes;
    rung_cfg.seed_optimizer = match rung {
        // The exact rung seeds its incumbent from the best greedy
        // combination, so it shares the MRP+CSE configuration.
        Rung::Exact | Rung::MrpCse => SeedOptimizer::Cse,
        _ => SeedOptimizer::Direct,
    };
    let mcm_nodes = config.budget.mcm_nodes;
    let mcm_deadline = remaining.map(|d| Instant::now() + d);
    let inject_panic = config.faults.armed(FaultKind::Panic, rung);
    let inject_overflow = config.faults.armed(FaultKind::Overflow, rung);
    let owned = coeffs.to_vec();
    let build = move || -> Result<(AdderGraph, Option<ExactStats>), PipelineError> {
        if inject_panic {
            panic!("injected fault: panic at rung {}", rung.name());
        }
        let mut exact_stats = None;
        let mut graph = match rung {
            Rung::Exact => {
                let (graph, stats) = build_exact(&owned, rung_cfg, mcm_nodes, mcm_deadline)?;
                exact_stats = Some(stats);
                graph
            }
            Rung::MrpCse | Rung::Mrp => MrpOptimizer::new(rung_cfg).optimize(&owned)?.graph,
            Rung::CseOnly => realize_cse(&owned)?,
            Rung::Spt => realize_simple(&owned, Repr::Spt)?,
        };
        if inject_overflow {
            // A real overflow path: 2^62·x + 2^62·x exceeds the i64 value
            // tracking range, so `add` reports `ArchError::ValueOverflow`.
            let x = graph.input();
            graph
                .add(Term::shifted(x, 62), Term::shifted(x, 62))
                .map_err(PipelineError::Arch)?;
        }
        Ok((graph, exact_stats))
    };
    let (mut graph, exact_stats) = run_isolated(&stage, remaining, deadline.limit_ms(), build)??;
    if config.faults.armed(FaultKind::Corrupt, rung) {
        config.faults.corrupt_netlist(&mut graph, rung);
    }
    accept(&stage, &graph, config)
        .map(|(graph, lint_warnings, pipeline)| (graph, lint_warnings, pipeline, exact_stats))
}

/// The `exact` rung build: run the greedy MRP+CSE pipeline for an
/// incumbent, then the `mrp-exact` branch-and-bound seeded with its adder
/// count. A strictly better solution is replayed into a netlist; on a
/// standing incumbent (including every budget-exhausted search that found
/// nothing better) the greedy graph itself is delivered, so the rung
/// never fails for budget reasons — only for the same faults that would
/// fail `mrp+cse`.
fn build_exact(
    coeffs: &[i64],
    rung_cfg: MrpConfig,
    mcm_nodes: usize,
    mcm_deadline: Option<Instant>,
) -> Result<(AdderGraph, ExactStats), PipelineError> {
    let greedy = MrpOptimizer::new(rung_cfg).optimize(coeffs)?.graph;
    let incumbent = greedy.adder_count();
    let problem = McmProblem::from_coeffs(coeffs)?;
    let mcm_cfg = McmConfig {
        node_cap: mcm_nodes,
        workers: rung_cfg.exact_workers.max(1),
        incumbent: Some(incumbent),
        depth_limit: rung_cfg.max_depth,
        deadline: mcm_deadline,
    };
    let out = solve_mcm(&problem, &mcm_cfg);
    let stats = ExactStats {
        nodes: out.nodes_expanded,
        budget_exhausted: out.budget_exhausted,
        proven_optimal: out.proven_optimal,
        lower_bound: out.lower_bound,
        improved: out.solution.is_some(),
    };
    let graph = match out.solution {
        Some(sol) => realize_recipes(coeffs, &sol.recipes)?,
        None => greedy,
    };
    Ok((graph, stats))
}

/// Runs `f` with panic isolation, and — when a deadline remains — on a
/// worker thread so a stage that overruns can be abandoned. An abandoned
/// worker keeps running detached until it finishes on its own; its result
/// is discarded.
fn run_isolated<T: Send + 'static>(
    stage: &str,
    remaining: Option<Duration>,
    budget_ms: Option<u64>,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T, PipelineError> {
    let Some(remaining) = remaining else {
        // No deadline: isolate panics in-thread.
        return catch_unwind(AssertUnwindSafe(f)).map_err(|payload| PipelineError::Panic {
            stage: stage.to_string(),
            message: panic_message(payload.as_ref()),
        });
    };
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()));
        // The receiver may have given up; a dead channel is fine.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(remaining) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(message)) => Err(PipelineError::Panic {
            stage: stage.to_string(),
            message,
        }),
        Err(_) => Err(PipelineError::Timeout {
            stage: stage.to_string(),
            budget_ms: budget_ms.unwrap_or(0),
            injected: false,
        }),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The lint configuration actually used for `graph`: the configured one,
/// with `input_width` clamped so that the widest constant in the graph
/// still fits the linter's 63-bit analysis range. Without the clamp a
/// maximum-magnitude coefficient set (|c| near 2^48) would be rejected as
/// unanalyzable at the default 16-bit input width even though the netlist
/// is perfectly valid at a narrower one.
fn effective_lint(graph: &AdderGraph, lint: &LintConfig) -> LintConfig {
    let mut widest: u32 = 0;
    for idx in 0..graph.len() {
        let v = graph.value(mrp_arch::NodeId::from_index(idx));
        widest = widest.max(64 - v.unsigned_abs().leading_zeros());
    }
    for o in graph.outputs() {
        widest = widest.max(64 - o.expected.unsigned_abs().leading_zeros());
    }
    let available = 63u32.saturating_sub(widest).max(1);
    LintConfig {
        input_width: lint.input_width.min(available),
        ..*lint
    }
}

/// The acceptance gate: the netlist must be lint-error-free and
/// coefficient-equivalent on the verification samples; with a pipeline
/// depth configured it must additionally survive the pipeline gate.
fn accept(
    stage: &str,
    graph: &AdderGraph,
    config: &SynthConfig,
) -> Result<(AdderGraph, usize, Option<PipelineSummary>), PipelineError> {
    let lint_span = mrp_obs::span("gate.lint");
    let report = lint_graph(graph, &effective_lint(graph, &config.lint));
    drop(lint_span);
    if report.has_errors() {
        let first = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .unwrap_or_default();
        return Err(PipelineError::LintRejected {
            stage: stage.to_string(),
            errors: report.error_count(),
            first,
        });
    }
    let equiv_span = mrp_obs::span("gate.equiv");
    let verdict = graph.verify_outputs(&VERIFY_SAMPLES);
    drop(equiv_span);
    if let Some((label, input)) = verdict {
        return Err(PipelineError::NotEquivalent { label, input });
    }
    // Compiled-path re-simulation over a longer stream: the tree walk
    // above stays the differential oracle; the lowered program is what
    // production verification runs at scale, so it must agree too.
    let compiled_span = mrp_obs::span("gate.equiv.compiled");
    let stream = verify_stream();
    let verdict = mrp_exec::verify_block_compiled(graph, &stream);
    mrp_obs::counter_add("gate.equiv.compiled_samples", stream.len() as u64);
    drop(compiled_span);
    if let Some((label, input)) = verdict {
        return Err(PipelineError::NotEquivalent { label, input });
    }
    let pipeline = match config.pipeline_depth {
        None => None,
        Some(m) => Some(pipeline_gate(stage, graph, config, m)?),
    };
    mrp_obs::counter_add("synth.adders", graph.adder_count() as u64);
    Ok((graph.clone(), report.warning_count(), pipeline))
}

/// The pipeline gate: slice the accepted netlist into stages of at most
/// `max_stage_depth` adders, retime, and require the result to pass both
/// the static `MRP04x` lint and the dynamic latency-adjusted equivalence
/// check. A failure is reported like a rung fault so the ladder degrades.
fn pipeline_gate(
    stage: &str,
    graph: &AdderGraph,
    config: &SynthConfig,
    max_stage_depth: u32,
) -> Result<PipelineSummary, PipelineError> {
    let _span = mrp_obs::span("gate.pipeline");
    let lint_cfg = effective_lint(graph, &config.lint);
    let az = Analyzer::new(
        graph,
        AnalysisContext {
            input_width: lint_cfg.input_width,
        },
    );
    let (net, delta) = pipeline_and_retime(&az, max_stage_depth);
    let report = lint_pipelined(&net, &lint_cfg);
    if report.has_errors() {
        let first = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .unwrap_or_default();
        return Err(PipelineError::LintRejected {
            stage: format!("{stage}/pipeline"),
            errors: report.error_count(),
            first,
        });
    }
    if let Some((label, input)) = net.verify_outputs_latency_adjusted(&VERIFY_SAMPLES) {
        return Err(PipelineError::NotEquivalent { label, input });
    }
    // Latency-adjusted re-simulation through the compiled pipelined
    // program (the tree-walk `step` above remains the oracle).
    let compiled_span = mrp_obs::span("gate.equiv.compiled");
    let stream = verify_stream();
    let verdict = mrp_exec::verify_pipelined_compiled(&net, &stream);
    mrp_obs::counter_add("gate.equiv.compiled_samples", stream.len() as u64);
    drop(compiled_span);
    if let Some((label, input)) = verdict {
        return Err(PipelineError::NotEquivalent { label, input });
    }
    Ok(PipelineSummary {
        combinational_depth: delta.combinational_depth,
        stage_depth: delta.stage_depth,
        latency: delta.latency,
        registers: delta.registers_after,
        retime_moves: delta.retime_moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    #[test]
    fn accept_gate_runs_the_compiled_resimulation() {
        mrp_obs::enable();
        let before = mrp_obs::counter_value("gate.equiv.compiled_samples").unwrap_or(0);
        let out = synthesize(&PAPER, &SynthConfig::default()).unwrap();
        assert!(!out.degraded());
        let after = mrp_obs::counter_value("gate.equiv.compiled_samples").unwrap_or(0);
        assert!(
            after >= before + 256,
            "compiled re-simulation should stream >= 256 samples ({before} -> {after})"
        );
    }

    #[test]
    fn healthy_run_uses_best_rung() {
        let out = synthesize(&PAPER, &SynthConfig::default()).unwrap();
        assert_eq!(out.rung, Rung::MrpCse);
        assert!(!out.degraded());
        assert!(out.adders() > 0);
        assert_eq!(out.graph.verify_outputs(&VERIFY_SAMPLES), None);
        assert_eq!(out.attempts.len(), 1);
        assert!(out.attempts[0].accepted);
        assert_eq!(out.attempts[0].rung, Rung::MrpCse);
    }

    #[test]
    fn exact_rung_is_never_worse_than_greedy() {
        let greedy = synthesize(&PAPER, &SynthConfig::default()).unwrap();
        let cfg = SynthConfig {
            start_rung: Rung::Exact,
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(out.rung, Rung::Exact);
        assert!(!out.degraded());
        assert!(
            out.adders() <= greedy.adders(),
            "{} > {}",
            out.adders(),
            greedy.adders()
        );
        assert_eq!(out.graph.verify_outputs(&VERIFY_SAMPLES), None);
        let stats = out.attempts[0].exact.expect("exact attempt carries stats");
        assert!(stats.lower_bound <= out.adders());
        let json = out.render_json();
        assert!(json.contains("\"rung\":\"exact\""), "{json}");
        assert!(json.contains("\"nodes\":"), "{json}");
        assert!(json.contains("\"budget_exhausted\":"), "{json}");
    }

    #[test]
    fn exhausted_mcm_budget_still_accepts_the_incumbent() {
        let cfg = SynthConfig {
            start_rung: Rung::Exact,
            budget: StageBudget {
                mcm_nodes: 1,
                ..StageBudget::default()
            },
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(out.rung, Rung::Exact, "budget exhaustion must not degrade");
        assert!(!out.degraded());
        assert_eq!(out.graph.verify_outputs(&VERIFY_SAMPLES), None);
        let stats = out.attempts[0].exact.expect("stats present");
        assert!(stats.nodes <= 1);
    }

    #[test]
    fn panic_at_exact_degrades_to_mrp_cse() {
        let cfg = SynthConfig {
            start_rung: Rung::Exact,
            faults: FaultPlan::parse("panic@exact").unwrap(),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(out.rung, Rung::MrpCse);
        assert_eq!(out.degradations.len(), 1);
        assert_eq!(out.degradations[0].rung, Rung::Exact);
        assert!(
            out.attempts[0].exact.is_none(),
            "failed attempt carries no stats"
        );
    }

    #[test]
    fn attempts_record_every_rung_tried() {
        let cfg = SynthConfig {
            faults: FaultPlan::parse("panic@mrp+cse,panic@mrp").unwrap(),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(out.rung, Rung::CseOnly);
        let rungs: Vec<Rung> = out.attempts.iter().map(|a| a.rung).collect();
        assert_eq!(rungs, vec![Rung::MrpCse, Rung::Mrp, Rung::CseOnly]);
        assert_eq!(
            out.attempts.iter().filter(|a| a.accepted).count(),
            1,
            "exactly the last attempt is accepted"
        );
        assert!(out.attempts.last().unwrap().accepted);
        // Per-attempt elapsed never exceeds the whole run.
        for a in &out.attempts {
            assert!(a.elapsed_ms <= out.elapsed_ms + 1, "{a:?}");
        }
        let json = out.render_json();
        assert!(
            json.contains("\"attempts\":[{\"rung\":\"mrp+cse\""),
            "{json}"
        );
        assert!(json.contains("\"accepted\":true"), "{json}");
        let pretty = out.render_pretty();
        assert!(pretty.contains("attempts:"), "{pretty}");
        assert!(pretty.contains("(accepted)"), "{pretty}");
    }

    #[test]
    fn caller_owned_deadline_counts_queue_wait() {
        // A deadline that expired before the driver even starts models a
        // request that burned its whole budget waiting in a queue: every
        // deadline-bound rung is skipped and the spt floor still delivers.
        let cfg = SynthConfig {
            budget: StageBudget {
                deadline_ms: Some(0),
                ..StageBudget::default()
            },
            ..SynthConfig::default()
        };
        let out = synthesize_under(&PAPER, &cfg, Deadline::start(Some(0))).unwrap();
        assert_eq!(out.rung, Rung::Spt);
        assert!(out.degraded());
        assert!(out
            .degradations
            .iter()
            .all(|d| matches!(d.error, PipelineError::Timeout { .. })));
    }

    #[test]
    fn quality_floor_above_start_is_rejected() {
        let cfg = SynthConfig {
            start_rung: Rung::CseOnly,
            min_rung: Rung::MrpCse,
            ..SynthConfig::default()
        };
        assert!(matches!(
            synthesize(&PAPER, &cfg),
            Err(PipelineError::BadConfig(_))
        ));
    }

    #[test]
    fn injected_panic_degrades_one_rung() {
        let cfg = SynthConfig {
            faults: FaultPlan::parse("panic@mrp+cse").unwrap(),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(out.rung, Rung::Mrp);
        assert_eq!(out.degradations.len(), 1);
        assert!(matches!(
            out.degradations[0].error,
            PipelineError::Panic { .. }
        ));
    }

    #[test]
    fn floor_turns_degradation_into_exhaustion() {
        let cfg = SynthConfig {
            faults: FaultPlan::parse("panic@mrp+cse").unwrap(),
            min_rung: Rung::MrpCse,
            ..SynthConfig::default()
        };
        match synthesize(&PAPER, &cfg) {
            Err(PipelineError::LadderExhausted(ds)) => {
                assert_eq!(ds.len(), 1);
                assert_eq!(ds[0].rung, Rung::MrpCse);
            }
            other => panic!("expected LadderExhausted, got {other:?}"),
        }
    }

    #[test]
    fn renders_are_well_formed() {
        let cfg = SynthConfig {
            faults: FaultPlan::parse("corrupt@mrp+cse").unwrap(),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        let pretty = out.render_pretty();
        assert!(pretty.contains("rung used: mrp (degraded)"), "{pretty}");
        assert!(
            pretty.contains("lint-rejected") || pretty.contains("lint gate"),
            "{pretty}"
        );
        let json = out.render_json();
        assert!(json.contains("\"rung\":\"mrp\""), "{json}");
        assert!(json.contains("\"kind\":\"lint-rejected\""), "{json}");
    }

    #[test]
    fn json_escape_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn pipeline_gate_reports_a_summary_and_reduces_the_path() {
        let cfg = SynthConfig {
            pipeline_depth: Some(1),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert!(!out.degraded());
        let p = out.pipeline.expect("pipeline summary");
        assert_eq!(p.combinational_depth, out.graph.max_depth());
        assert!(p.stage_depth <= 1);
        assert_eq!(p.latency, p.combinational_depth.saturating_sub(1));
        assert!(p.reduction_pct() > 0.0);
        let pretty = out.render_pretty();
        assert!(pretty.contains("pipeline: latency"), "{pretty}");
        let json = out.render_json();
        assert!(json.contains("\"pipeline\":{\"latency\":"), "{json}");
    }

    #[test]
    fn unpipelined_reports_are_unchanged() {
        let out = synthesize(&PAPER, &SynthConfig::default()).unwrap();
        assert!(out.pipeline.is_none());
        assert!(!out.render_pretty().contains("pipeline:"));
        assert!(!out.render_json().contains("\"pipeline\""));
    }

    #[test]
    fn zero_pipeline_depth_is_rejected() {
        let cfg = SynthConfig {
            pipeline_depth: Some(0),
            ..SynthConfig::default()
        };
        assert!(matches!(
            synthesize(&PAPER, &cfg),
            Err(PipelineError::BadConfig(_))
        ));
    }

    #[test]
    fn corruption_still_degrades_with_the_pipeline_gate_on() {
        // The combinational gates run before the pipeline gate, so a
        // corrupted netlist degrades exactly as without pipelining, and
        // the accepted lower rung still carries a pipeline summary.
        let cfg = SynthConfig {
            faults: FaultPlan::parse("corrupt@mrp+cse").unwrap(),
            pipeline_depth: Some(2),
            ..SynthConfig::default()
        };
        let out = synthesize(&PAPER, &cfg).unwrap();
        assert!(out.degraded());
        let p = out.pipeline.expect("pipeline summary");
        assert!(p.stage_depth <= 2);
    }
}
