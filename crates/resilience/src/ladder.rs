//! The fallback ladder: an ordered list of synthesis schemes from the
//! paper's best combination down to the always-constructible baseline.

use std::fmt;

/// One rung of the fallback ladder, ordered by quality: `Spt` is the
/// guaranteed last resort, `MrpCse` the paper's headline combination,
/// `Exact` the opt-in branch-and-bound top rung above it.
///
/// `Ord` follows quality: `Rung::Spt < Rung::CseOnly < Rung::Mrp <
/// Rung::MrpCse < Rung::Exact`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Per-coefficient SPT digit recoding (the paper's "simple" scheme).
    /// Always constructible for in-range coefficients.
    Spt,
    /// Hartley CSE over the primaries, no MRP decomposition.
    CseOnly,
    /// MRP with a direct SEED network.
    Mrp,
    /// MRP with CSE on the SEED network (the paper's best combination).
    MrpCse,
    /// Exact branch-and-bound MCM (`mrp-exact`), seeded with the MRP+CSE
    /// result as incumbent — never worse than `MrpCse`, but bounded by a
    /// node budget rather than guaranteed fast. Opt-in: the default
    /// ladder still starts at `MrpCse`.
    Exact,
}

impl Rung {
    /// The full ladder, best rung first.
    pub const LADDER: [Rung; 5] = [
        Rung::Exact,
        Rung::MrpCse,
        Rung::Mrp,
        Rung::CseOnly,
        Rung::Spt,
    ];

    /// Short stable name, as accepted by [`Rung::parse`] and printed in
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::MrpCse => "mrp+cse",
            Rung::Mrp => "mrp",
            Rung::CseOnly => "cse",
            Rung::Spt => "spt",
        }
    }

    /// The next rung down the ladder, or `None` from the last rung.
    pub fn next_lower(self) -> Option<Rung> {
        match self {
            Rung::Exact => Some(Rung::MrpCse),
            Rung::MrpCse => Some(Rung::Mrp),
            Rung::Mrp => Some(Rung::CseOnly),
            Rung::CseOnly => Some(Rung::Spt),
            Rung::Spt => None,
        }
    }

    /// Parses a rung name (`exact`, `mrp+cse`/`mrpcse`, `mrp`, `cse`,
    /// `spt`/`simple`).
    pub fn parse(s: &str) -> Option<Rung> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Some(Rung::Exact),
            "mrp+cse" | "mrpcse" | "mrp-cse" => Some(Rung::MrpCse),
            "mrp" => Some(Rung::Mrp),
            "cse" => Some(Rung::CseOnly),
            "spt" | "simple" => Some(Rung::Spt),
            _ => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_by_quality() {
        let mut prev: Option<Rung> = None;
        for r in Rung::LADDER {
            if let Some(p) = prev {
                assert!(r < p, "{r} not below {p}");
                assert_eq!(p.next_lower(), Some(r));
            }
            prev = Some(r);
        }
        assert_eq!(Rung::Spt.next_lower(), None);
    }

    #[test]
    fn names_round_trip() {
        for r in Rung::LADDER {
            assert_eq!(Rung::parse(r.name()), Some(r));
        }
        assert_eq!(Rung::parse("simple"), Some(Rung::Spt));
        assert_eq!(Rung::parse("MRPCSE"), Some(Rung::MrpCse));
        assert_eq!(Rung::parse("nope"), None);
    }
}
