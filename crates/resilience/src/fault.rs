//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes faults to force into a supervised synthesis
//! run: stage timeouts, simulated panics, corrupted intermediate netlists
//! (which the lint gate must catch), and overflow-path triggers. Plans are
//! parsed from a compact spec string, are fully seeded, and never depend
//! on wall-clock time, so every injected failure replays exactly.
//!
//! # Spec format
//!
//! Comma-separated entries:
//!
//! ```text
//! <kind>@<rung>   inject <kind> when <rung> is attempted
//! <kind>@*        inject <kind> at every rung except the last (spt)
//! seed=<N>        seed for corruption details (default 0)
//! ```
//!
//! Kinds: `timeout`, `panic`, `corrupt`, `overflow`. Rungs: `mrp+cse`,
//! `mrp`, `cse`, `spt` (see [`Rung::parse`] for aliases). Example:
//! `timeout@mrp+cse,corrupt@mrp,seed=7`.
//!
//! The `*` wildcard deliberately excludes the terminal `spt` rung so a
//! wildcard plan still lets the ladder land somewhere; target `spt`
//! explicitly to test ladder exhaustion.

use mrp_arch::{AdderGraph, Term};
use mrp_ptest::Rng;

use crate::ladder::Rung;

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Force the stage to report a wall-clock timeout without running.
    Timeout,
    /// Panic inside the stage (exercises `catch_unwind` isolation).
    Panic,
    /// Corrupt the produced netlist (the lint gate must reject it).
    Corrupt,
    /// Drive a real overflow path in netlist construction.
    Overflow,
}

impl FaultKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::Panic => "panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Overflow => "overflow",
        }
    }

    /// All kinds, for exhaustive test sweeps.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Timeout,
        FaultKind::Panic,
        FaultKind::Corrupt,
        FaultKind::Overflow,
    ];

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "timeout" => Some(FaultKind::Timeout),
            "panic" => Some(FaultKind::Panic),
            "corrupt" => Some(FaultKind::Corrupt),
            "overflow" => Some(FaultKind::Overflow),
            _ => None,
        }
    }
}

/// One armed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// Which rung to inject at; `None` = every rung except the terminal
    /// `spt` rung.
    pub rung: Option<Rung>,
}

/// A parsed, seeded set of faults to inject into one driver run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Seed for deterministic corruption details.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit faults.
    pub fn new(faults: Vec<Fault>, seed: u64) -> FaultPlan {
        FaultPlan { faults, seed }
    }

    /// Parses the spec format described in the module docs
    /// (`kind@rung` entries plus an optional `seed=N`, comma-separated).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("`{seed}` is not a valid fault seed"))?;
                continue;
            }
            let (kind_str, rung_str) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry `{entry}` is not of the form kind@rung"))?;
            let kind = FaultKind::parse(kind_str).ok_or_else(|| {
                format!("unknown fault kind `{kind_str}` (use timeout|panic|corrupt|overflow)")
            })?;
            let rung = if rung_str == "*" {
                None
            } else {
                Some(Rung::parse(rung_str).ok_or_else(|| {
                    format!("unknown rung `{rung_str}` (use mrp+cse|mrp|cse|spt|*)")
                })?)
            };
            plan.faults.push(Fault { kind, rung });
        }
        Ok(plan)
    }

    /// Whether no faults are armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The armed faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether `kind` fires when `rung` is attempted.
    pub fn armed(&self, kind: FaultKind, rung: Rung) -> bool {
        self.faults.iter().any(|f| {
            f.kind == kind
                && match f.rung {
                    Some(r) => r == rung,
                    None => rung != Rung::Spt,
                }
        })
    }

    /// Corrupts `graph` deterministically: registers an output whose
    /// expected coefficient disagrees with the value its term computes.
    /// The lint equivalence pass (`MRP020`) is required to catch this.
    ///
    /// Corruption details (shift, bogus coefficient) derive from the plan
    /// seed and the rung, so the same plan corrupts the same way every
    /// run.
    pub fn corrupt_netlist(&self, graph: &mut AdderGraph, rung: Rung) {
        let mut rng = Rng::new(self.seed ^ ((rung as u64 + 1) << 32));
        let x = graph.input();
        let shift = rng.u32_in(0, 8);
        // 2^shift is what the term computes; expect something it cannot be.
        let bogus = (1i64 << shift) + 1 + rng.i64_in(0, 1000) * 2;
        graph.push_output(
            format!("injected_corruption_{}", rung.name()),
            Term::shifted(x, shift),
            bogus,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse("timeout@mrp+cse, panic@mrp ,corrupt@cse,seed=42").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.faults().len(), 3);
        assert!(plan.armed(FaultKind::Timeout, Rung::MrpCse));
        assert!(plan.armed(FaultKind::Panic, Rung::Mrp));
        assert!(plan.armed(FaultKind::Corrupt, Rung::CseOnly));
        assert!(!plan.armed(FaultKind::Corrupt, Rung::Mrp));
        assert!(!plan.armed(FaultKind::Overflow, Rung::MrpCse));
    }

    #[test]
    fn wildcard_spares_the_terminal_rung() {
        let plan = FaultPlan::parse("panic@*").unwrap();
        assert!(plan.armed(FaultKind::Panic, Rung::MrpCse));
        assert!(plan.armed(FaultKind::Panic, Rung::Mrp));
        assert!(plan.armed(FaultKind::Panic, Rung::CseOnly));
        assert!(!plan.armed(FaultKind::Panic, Rung::Spt));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(FaultPlan::parse("explode@mrp").is_err());
        assert!(FaultPlan::parse("panic@orbit").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn corruption_is_deterministic_and_wrong() {
        let plan = FaultPlan::parse("corrupt@mrp,seed=7").unwrap();
        let mut a = AdderGraph::new();
        let mut b = AdderGraph::new();
        plan.corrupt_netlist(&mut a, Rung::Mrp);
        plan.corrupt_netlist(&mut b, Rung::Mrp);
        assert_eq!(a.outputs(), b.outputs(), "same seed, same corruption");
        let out = &a.outputs()[0];
        assert_ne!(
            a.term_value(out.term),
            out.expected,
            "must be a real corruption"
        );
    }
}
