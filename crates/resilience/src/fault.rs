//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes faults to force into a supervised synthesis
//! run: stage timeouts, simulated panics, corrupted intermediate netlists
//! (which the lint gate must catch), and overflow-path triggers. Plans are
//! parsed from a compact spec string, are fully seeded, and never depend
//! on wall-clock time, so every injected failure replays exactly.
//!
//! # Spec format
//!
//! Comma-separated entries:
//!
//! ```text
//! <kind>@<rung>   inject <kind> when <rung> is attempted
//! <kind>@*        inject <kind> at every rung except the last (spt)
//! seed=<N>        seed for corruption details (default 0)
//! ```
//!
//! Kinds: `timeout`, `panic`, `corrupt`, `overflow`. Rungs: `mrp+cse`,
//! `mrp`, `cse`, `spt` (see [`Rung::parse`] for aliases). Example:
//! `timeout@mrp+cse,corrupt@mrp,seed=7`.
//!
//! The `*` wildcard deliberately excludes the terminal `spt` rung so a
//! wildcard plan still lets the ladder land somewhere; target `spt`
//! explicitly to test ladder exhaustion.

use mrp_arch::{AdderGraph, Term};
use mrp_ptest::Rng;

use crate::ladder::Rung;

/// One raw `kind@target` entry of a fault-spec string, before any
/// domain-specific validation of the kind or the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEntry {
    /// Text left of the `@`.
    pub kind: String,
    /// Text right of the `@` (`*` conventionally means "everywhere").
    pub target: String,
}

/// Splits the shared fault-spec grammar — comma-separated `kind@target`
/// entries plus an optional `seed=N` — without interpreting kinds or
/// targets.
///
/// This is the vocabulary every fault plan in the workspace speaks:
/// [`FaultPlan::parse`] validates the entries against pipeline rungs,
/// and `mrp-store`'s disk fault plan validates them against I/O
/// operations, so `timeout@mrp+cse,seed=7` and `enospc@append,seed=7`
/// read the same way.
///
/// # Errors
///
/// Returns a message naming the malformed entry or seed.
pub fn parse_spec_entries(spec: &str) -> Result<(Vec<SpecEntry>, u64), String> {
    let mut entries = Vec::new();
    let mut seed = 0u64;
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if let Some(raw) = entry.strip_prefix("seed=") {
            seed = raw
                .parse()
                .map_err(|_| format!("`{raw}` is not a valid fault seed"))?;
            continue;
        }
        let (kind, target) = entry
            .split_once('@')
            .ok_or_else(|| format!("fault entry `{entry}` is not of the form kind@target"))?;
        entries.push(SpecEntry {
            kind: kind.to_string(),
            target: target.to_string(),
        });
    }
    Ok((entries, seed))
}

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Force the stage to report a wall-clock timeout without running.
    Timeout,
    /// Panic inside the stage (exercises `catch_unwind` isolation).
    Panic,
    /// Corrupt the produced netlist (the lint gate must reject it).
    Corrupt,
    /// Drive a real overflow path in netlist construction.
    Overflow,
}

impl FaultKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::Panic => "panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Overflow => "overflow",
        }
    }

    /// All kinds, for exhaustive test sweeps.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Timeout,
        FaultKind::Panic,
        FaultKind::Corrupt,
        FaultKind::Overflow,
    ];

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "timeout" => Some(FaultKind::Timeout),
            "panic" => Some(FaultKind::Panic),
            "corrupt" => Some(FaultKind::Corrupt),
            "overflow" => Some(FaultKind::Overflow),
            _ => None,
        }
    }
}

/// One armed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// Which rung to inject at; `None` = every rung except the terminal
    /// `spt` rung.
    pub rung: Option<Rung>,
}

/// A parsed, seeded set of faults to inject into one driver run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Seed for deterministic corruption details.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit faults.
    pub fn new(faults: Vec<Fault>, seed: u64) -> FaultPlan {
        FaultPlan { faults, seed }
    }

    /// Parses the spec format described in the module docs
    /// (`kind@rung` entries plus an optional `seed=N`, comma-separated).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (entries, seed) = parse_spec_entries(spec)?;
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        for entry in entries {
            let kind = FaultKind::parse(&entry.kind).ok_or_else(|| {
                format!(
                    "unknown fault kind `{}` (use timeout|panic|corrupt|overflow)",
                    entry.kind
                )
            })?;
            let rung = if entry.target == "*" {
                None
            } else {
                Some(Rung::parse(&entry.target).ok_or_else(|| {
                    format!(
                        "unknown rung `{}` (use mrp+cse|mrp|cse|spt|*)",
                        entry.target
                    )
                })?)
            };
            plan.faults.push(Fault { kind, rung });
        }
        Ok(plan)
    }

    /// Whether no faults are armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The armed faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether `kind` fires when `rung` is attempted.
    pub fn armed(&self, kind: FaultKind, rung: Rung) -> bool {
        self.faults.iter().any(|f| {
            f.kind == kind
                && match f.rung {
                    Some(r) => r == rung,
                    None => rung != Rung::Spt,
                }
        })
    }

    /// Corrupts `graph` deterministically: registers an output whose
    /// expected coefficient disagrees with the value its term computes.
    /// The lint equivalence pass (`MRP020`) is required to catch this.
    ///
    /// Corruption details (shift, bogus coefficient) derive from the plan
    /// seed and the rung, so the same plan corrupts the same way every
    /// run.
    pub fn corrupt_netlist(&self, graph: &mut AdderGraph, rung: Rung) {
        let mut rng = Rng::new(self.seed ^ ((rung as u64 + 1) << 32));
        let x = graph.input();
        let shift = rng.u32_in(0, 8);
        // 2^shift is what the term computes; expect something it cannot be.
        let bogus = (1i64 << shift) + 1 + rng.i64_in(0, 1000) * 2;
        graph.push_output(
            format!("injected_corruption_{}", rung.name()),
            Term::shifted(x, shift),
            bogus,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse("timeout@mrp+cse, panic@mrp ,corrupt@cse,seed=42").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.faults().len(), 3);
        assert!(plan.armed(FaultKind::Timeout, Rung::MrpCse));
        assert!(plan.armed(FaultKind::Panic, Rung::Mrp));
        assert!(plan.armed(FaultKind::Corrupt, Rung::CseOnly));
        assert!(!plan.armed(FaultKind::Corrupt, Rung::Mrp));
        assert!(!plan.armed(FaultKind::Overflow, Rung::MrpCse));
    }

    #[test]
    fn wildcard_spares_the_terminal_rung() {
        let plan = FaultPlan::parse("panic@*").unwrap();
        assert!(plan.armed(FaultKind::Panic, Rung::MrpCse));
        assert!(plan.armed(FaultKind::Panic, Rung::Mrp));
        assert!(plan.armed(FaultKind::Panic, Rung::CseOnly));
        assert!(!plan.armed(FaultKind::Panic, Rung::Spt));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(FaultPlan::parse("explode@mrp").is_err());
        assert!(FaultPlan::parse("panic@orbit").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
    }

    #[test]
    fn shared_spec_vocabulary_splits_entries() {
        // The same grammar mrp-store's disk fault plan consumes: kinds
        // and targets are opaque at this layer.
        let (entries, seed) = parse_spec_entries("enospc@append, eio@read ,seed=9").unwrap();
        assert_eq!(seed, 9);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "enospc");
        assert_eq!(entries[0].target, "append");
        assert_eq!(entries[1].kind, "eio");
        assert_eq!(entries[1].target, "read");
        assert!(parse_spec_entries("lonely").is_err());
        assert!(parse_spec_entries("seed=banana").is_err());
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn corruption_is_deterministic_and_wrong() {
        let plan = FaultPlan::parse("corrupt@mrp,seed=7").unwrap();
        let mut a = AdderGraph::new();
        let mut b = AdderGraph::new();
        plan.corrupt_netlist(&mut a, Rung::Mrp);
        plan.corrupt_netlist(&mut b, Rung::Mrp);
        assert_eq!(a.outputs(), b.outputs(), "same seed, same corruption");
        let out = &a.outputs()[0];
        assert_ne!(
            a.term_value(out.term),
            out.expected,
            "must be a real corruption"
        );
    }
}
