//! Tiny dependency-free argument parser for the `mrpf` CLI.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    /// Remaining positional tokens.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error for malformed command lines or option values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parses raw tokens (without the program name).
    ///
    /// Tokens starting with `--` become options when followed by a
    /// non-`--` token, flags otherwise; everything else is positional.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when no subcommand is present.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_cli::args::Args;
    /// let a = Args::parse(["design", "--order", "32", "--verbose"].map(String::from))?;
    /// assert_eq!(a.command, "design");
    /// assert_eq!(a.get_usize("order", 0)?, 32);
    /// assert!(a.flag("verbose"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, ParseArgsError> {
        let mut tokens = tokens.into_iter().peekable();
        let command = tokens
            .next()
            .ok_or_else(|| ParseArgsError("missing subcommand".into()))?;
        if command.starts_with("--") {
            return Err(ParseArgsError(format!(
                "expected a subcommand, found option {command}"
            )));
        }
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(tok) = tokens.next() {
            if let Some(name) = tok.strip_prefix("--") {
                match tokens.next_if(|next| !next.starts_with("--")) {
                    Some(value) => {
                        args.options.insert(name.to_string(), value);
                    }
                    None => args.flags.push(name.to_string()),
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Whether `--name` appeared as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// `usize` option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the value is not an integer.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ParseArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name} expects an integer, got {v}"))),
        }
    }

    /// `f64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the value is not a number.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ParseArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name} expects a number, got {v}"))),
        }
    }

    /// String option with a default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_required() {
        assert!(Args::parse(std::iter::empty()).is_err());
        assert!(Args::parse(["--oops".to_string()]).is_err());
    }

    #[test]
    fn options_and_flags() {
        let a = parse(&["optimize", "7,9,11", "--w", "12", "--cse"]);
        assert_eq!(a.command, "optimize");
        assert_eq!(a.get_usize("w", 16).unwrap(), 12);
        assert!(a.flag("cse"));
        assert_eq!(a.positional, vec!["7,9,11"]);
        // An option followed by a value token consumes it.
        let b = parse(&["optimize", "--depth", "3", "7,9"]);
        assert_eq!(b.get_usize("depth", 0).unwrap(), 3);
        assert_eq!(b.positional, vec!["7,9"]);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["design"]);
        assert_eq!(a.get_usize("order", 32).unwrap(), 32);
        assert_eq!(a.get_f64("beta", 0.5).unwrap(), 0.5);
        assert_eq!(a.get_str("scaling", "uniform"), "uniform");
    }

    #[test]
    fn bad_numbers_are_reported() {
        let a = parse(&["design", "--order", "many"]);
        assert!(a.get_usize("order", 0).is_err());
    }

    #[test]
    fn negative_values_parse_as_option_values() {
        // "-0.5" does not start with "--", so it is a value.
        let a = parse(&["x", "--gain", "-0.5"]);
        assert_eq!(a.get_f64("gain", 0.0).unwrap(), -0.5);
    }
}
