//! Subcommand implementations.

use std::fmt;

use mrp_analysis::{
    pipeline_and_retime, AnalysisContext, Analyzer, ConeOfInfluence, CriticalPath, Depth,
    Dominators, Fanout, PipelinedNetlist, TransformDelta, WidthMap,
};
use mrp_arch::{emit_verilog, to_dot_labeled, NodeId};
use mrp_batch::{parse_specs, run_batch, BatchOptions};
use mrp_core::{adder_report, MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_filters::{butterworth_fir, least_squares, remez, FilterSpec};
use mrp_lint::{lint_graph, lint_verilog, LintConfig};
use mrp_numrep::{quantize, Repr, Scaling};
use mrp_resilience::{synthesize, FaultPlan, Rung, StageBudget, SynthConfig};
use mrp_serve::{run_chaos, run_load, ChaosOptions, LoadOptions, ServeOptions, Server};

use crate::args::{Args, ParseArgsError};

/// CLI-level errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(e: ParseArgsError) -> Self {
        CliError(e.0)
    }
}

macro_rules! bail {
    ($($t:tt)*) => { return Err(CliError(format!($($t)*))) };
}

/// Usage text shown by `mrpf help` and on errors.
pub const USAGE: &str = "\
mrpf — multiplierless FIR synthesis (MRPF reproduction)

USAGE:
  mrpf design   --kind lowpass|highpass|bandpass|bandstop --fp F --fs F
                [--fp2 F --fs2 F] [--order N] [--method pm|ls|bw]
                [--w BITS --scaling uniform|maximal]
  mrpf optimize C0,C1,...  [--repr spt|sm] [--beta B] [--depth D]
                [--seed direct|cse|recursive] [--exact]
  mrpf emit     C0,C1,...  [--name MODULE] [--width BITS] [--seed ...]
  mrpf compare  C0,C1,...
  mrpf respond  C0,C1,...  [--points N] (magnitude response table)
  mrpf lint     C0,C1,...  [--width BITS] [--fanout N] [--growth-bound BITS]
                [--json] [--seed ...]
  mrpf analyze  C0,C1,...  [--width BITS] [--json] [--pipeline-depth N]
                [--dot depth|fanout|width|cone|dom|stage] [--seed ...]
                (cached netlist analyses over the synthesized block:
                 depth, fanout, widths, critical path, cones, dominators;
                 --pipeline-depth pipelines + retimes and reports the
                 delta; --dot prints Graphviz with the chosen overlay)
  mrpf sim      C0,C1,...  [--samples N] [--compiled] [--lanes N]
                [--pipeline-depth N] [--noise-seed N] [--amp A] [--json]
                [--repr ...] [--beta B] [--depth D] [--seed ...]
                (simulate the synthesized netlist over N deterministic
                 noise samples: compiles it to the mrp-exec linear IR and
                 executes in SIMD-batched lanes, cross-checked against
                 the tree-walk oracle; --compiled restricts the oracle to
                 a prefix so million-sample runs stay fast;
                 --pipeline-depth simulates the pipelined netlist with
                 latency-adjusted equivalence; reports samples/sec)
  mrpf synth    C0,C1,...  [--deadline-ms MS] [--min-quality RUNG]
                [--start RUNG] [--faults SPEC] [--exact-nodes N]
                [--exact] [--exact-node-cap N]
                [--width BITS] [--json] [--repr ...] [--beta B] [--depth D]
                [--pipeline-depth N] [--trace FILE] [--metrics FILE]
                (supervised synthesis with fallback ladder
                 exact > mrp+cse > mrp > cse > spt; RUNG is one of those
                 names; the default start is mrp+cse — the exact
                 branch-and-bound top rung is opt-in via --exact or
                 --start exact, with --exact-node-cap bounding its
                 search (it falls back to the greedy result, never
                 fails, on exhaustion); SPEC e.g.
                 panic@mrp+cse,timeout@mrp,seed=7;
                 --trace writes a Chrome trace_event JSON loadable in
                 chrome://tracing or Perfetto, --metrics a flat
                 counters/gauges/histograms JSON)
  mrpf batch    SPECS.json [--jobs N] [--racing] [--json] [--out FILE]
                [--deadline-ms MS] [--min-quality RUNG] [--start RUNG]
                [--faults SPEC] [--exact-nodes N] [--width BITS]
                [--trace FILE] [--metrics FILE]
                (synthesize every filter in a JSON spec file on a
                 work-stealing pool; identical normalized coefficient
                 vectors share one synthesis, and the report bytes are
                 identical for any --jobs value; see docs/batch.md)
  mrpf serve    [--addr HOST:PORT] [--jobs N] [--queue N] [--racing]
                [--store DIR] [--deadline-ms MS] [--min-quality RUNG]
                [--start RUNG] [--exact-nodes N] [--width BITS]
                [--repr ...] [--beta B] [--trace FILE] [--metrics FILE]
                (long-running HTTP service over the batch engine:
                 POST /synth, POST /batch, GET /healthz, GET /metricsz;
                 a bounded queue answers 503 with a load-derived
                 Retry-After when full, identical concurrent POSTs
                 coalesce onto one synthesis, every request runs under
                 --deadline-ms, and ctrl-c drains in-flight work before
                 exiting; --store DIR adds a crash-safe persistent
                 synthesis cache that degrades to memory-only on disk
                 failure; see docs/serve.md and docs/store.md)
  mrpf chaos    [--addr HOST:PORT] [--requests N] [--seed N] [--json]
                (torture a running mrpf serve with a seeded storm of
                 hostile connections — slowloris, truncated bodies,
                 garbage, resets, header floods — interleaved with
                 well-formed probes; fails, with nonzero exit, if any
                 probe's bytes diverge from the pre-storm baseline or
                 the server is unhealthy afterwards)
  mrpf load     [--addr HOST:PORT] [--rate RPS] [--duration-ms MS]
                [--synth-pct P] [--seed N] [--jobs N] [--json]
                [--out FILE]
                (open-loop load generator against a running mrpf serve:
                 requests depart on a fixed arrival schedule so measured
                 latency includes any server-induced delay — no
                 coordinated omission; mixes POST /synth and POST /batch
                 per --synth-pct, reports throughput and p50/p90/p99/
                 p999 per route, and verifies every response carries an
                 X-Request-Id; --out writes the BENCH_serve.json report;
                 nonzero exit on any error or missing request ID)
  mrpf help

Anywhere a C0,C1,... coefficient list is expected, suite:N (N in 1..=12)
substitutes the Nth paper example filter quantized to 12 bits.
";

/// Runs one parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for any invalid input.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "design" => design(args),
        "optimize" => optimize(args),
        "emit" => emit(args),
        "compare" => compare(args),
        "respond" => respond(args),
        "lint" => lint(args),
        "analyze" => analyze(args),
        "sim" => sim(args),
        "synth" => synth(args),
        "batch" => batch(args),
        "serve" => serve(args),
        "chaos" => chaos(args),
        "load" => load(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => bail!("unknown subcommand `{other}`\n\n{USAGE}"),
    }
}

fn parse_coeffs(args: &Args) -> Result<Vec<i64>, CliError> {
    let Some(raw) = args.positional.first() else {
        bail!("expected a comma-separated coefficient list (e.g. 70,66,17,9) or suite:N");
    };
    // `suite:N` resolves to the Nth paper example filter, designed and
    // uniformly quantized to 12 bits — the same inputs the benchmark and
    // the CI analysis gate sweep.
    if let Some(n) = raw.strip_prefix("suite:") {
        let suite = mrp_filters::example_filters();
        let index: usize = n.parse().map_err(|_| {
            CliError(format!(
                "`{n}` is not a suite index (use suite:1..={})",
                suite.len()
            ))
        })?;
        if index == 0 || index > suite.len() {
            bail!("suite index {index} out of range 1..={}", suite.len());
        }
        let taps = suite[index - 1]
            .design()
            .map_err(|e| CliError(format!("suite filter design failed: {e}")))?;
        let q = quantize(&taps, 12, Scaling::Uniform).map_err(|e| CliError(e.to_string()))?;
        return Ok(q.values);
    }
    raw.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<i64>()
                .map_err(|_| CliError(format!("`{tok}` is not an integer coefficient")))
        })
        .collect()
}

fn parse_config(args: &Args) -> Result<MrpConfig, CliError> {
    let repr = match args.get_str("repr", "spt").as_str() {
        "spt" | "csd" => Repr::Spt,
        "sm" => Repr::SignMagnitude,
        "binary" => Repr::TwosComplement,
        other => bail!("unknown representation `{other}` (use spt|sm|binary)"),
    };
    let seed_optimizer = match args.get_str("seed", "direct").as_str() {
        "direct" => SeedOptimizer::Direct,
        "cse" => SeedOptimizer::Cse,
        "recursive" => SeedOptimizer::Recursive { levels: 2 },
        other => bail!("unknown seed optimizer `{other}` (use direct|cse|recursive)"),
    };
    let depth = args.get_usize("depth", 0)?;
    Ok(MrpConfig {
        repr,
        beta: args.get_f64("beta", 0.5)?,
        max_shift: None,
        max_depth: if depth == 0 { None } else { Some(depth as u32) },
        seed_optimizer,
        exact_cover: args.flag("exact"),
        ..MrpConfig::default()
    })
}

fn design(args: &Args) -> Result<String, CliError> {
    let fp = args.get_f64("fp", 0.1)?;
    let fs = args.get_f64("fs", 0.2)?;
    let rp = args.get_f64("rp", 0.5)?;
    let rs = args.get_f64("rs", 50.0)?;
    let spec = match args.get_str("kind", "lowpass").as_str() {
        "lowpass" => FilterSpec::lowpass(fp, fs, rp, rs),
        "highpass" => FilterSpec::highpass(fs, fp, rp, rs),
        "bandpass" => FilterSpec::bandpass(
            fs,
            fp,
            args.get_f64("fp2", 0.3)?,
            args.get_f64("fs2", 0.4)?,
            rp,
            rs,
        ),
        "bandstop" => FilterSpec::bandstop(
            fp,
            fs,
            args.get_f64("fs2", 0.3)?,
            args.get_f64("fp2", 0.4)?,
            rp,
            rs,
        ),
        other => bail!("unknown filter kind `{other}`"),
    };
    let order = args.get_usize("order", 40)?;
    let taps = match args.get_str("method", "pm").as_str() {
        "pm" => remez(order, &spec.to_bands()),
        "ls" => least_squares(order, &spec.to_bands()),
        "bw" => butterworth_fir(order, 6, (fp + fs) / 2.0),
        other => bail!("unknown design method `{other}` (use pm|ls|bw)"),
    }
    .map_err(|e| CliError(format!("design failed: {e}")))?;
    let w = args.get_usize("w", 0)?;
    if w == 0 {
        // Float output.
        let rows: Vec<String> = taps.iter().map(|t| format!("{t:.10}")).collect();
        return Ok(rows.join("\n"));
    }
    let scaling = match args.get_str("scaling", "uniform").as_str() {
        "uniform" => Scaling::Uniform,
        "maximal" => Scaling::Maximal,
        other => bail!("unknown scaling `{other}` (use uniform|maximal)"),
    };
    let q = quantize(&taps, w as u32, scaling).map_err(|e| CliError(e.to_string()))?;
    let rows: Vec<String> = q.values.iter().map(i64::to_string).collect();
    Ok(rows.join(","))
}

fn optimize(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_config(args)?;
    let result = MrpOptimizer::new(cfg)
        .optimize(&coeffs)
        .map_err(|e| CliError(e.to_string()))?;
    let (roots, colors) = result.seed_size();
    Ok(format!(
        "taps: {}\nSEED roots: {:?}\nSEED colors: {:?}\nSEED size: ({roots},{colors})\n\
         adders: seed {} + overhead {} = {}\ntree height: {}\nverified: bit-exact",
        coeffs.len(),
        result.seed_roots,
        result.seed_colors,
        result.stats.seed_adders,
        result.stats.overhead_adders,
        result.total_adders(),
        result.stats.tree_height,
    ))
}

fn emit(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_config(args)?;
    let result = MrpOptimizer::new(cfg)
        .optimize(&coeffs)
        .map_err(|e| CliError(e.to_string()))?;
    let width = args.get_usize("width", 16)? as u32;
    if width == 0 || width > 48 {
        bail!("--width must be within 1..=48");
    }
    let name = args.get_str("name", "mrpf_block");
    Ok(emit_verilog(&result.graph, &name, width))
}

fn compare(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let rep = adder_report(&coeffs, &MrpConfig::default()).map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "scheme      adders\nsimple      {:>6}\nCSE         {:>6}\nMRPF        {:>6}\nMRPF+CSE    {:>6}\n\
         (primaries: {}, SEED {:?})",
        rep.simple, rep.cse, rep.mrp, rep.mrp_cse, rep.primaries, rep.seed
    ))
}

fn lint(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_config(args)?;
    let result = MrpOptimizer::new(cfg)
        .optimize(&coeffs)
        .map_err(|e| CliError(e.to_string()))?;
    let width = args.get_usize("width", 16)? as u32;
    if width == 0 || width > 48 {
        bail!("--width must be within 1..=48");
    }
    let fanout = args.get_usize("fanout", 0)?;
    let growth = args.get_usize("growth-bound", 0)?;
    let lint_cfg = LintConfig {
        input_width: width,
        expected_depth: None,
        fanout_warn: if fanout == 0 { None } else { Some(fanout) },
        width_growth_bound: if growth == 0 {
            None
        } else {
            Some(growth as u32)
        },
    };
    let mut report = lint_graph(&result.graph, &lint_cfg);
    if result.graph.outputs().iter().any(|o| o.expected != 0) {
        let src = emit_verilog(&result.graph, "lint_dut", width);
        report.merge(lint_verilog(&result.graph, &src, &lint_cfg));
    }
    let rendered = if args.flag("json") {
        report.render_json()
    } else {
        report.render_pretty()
    };
    if report.has_errors() {
        return Err(CliError(rendered));
    }
    Ok(rendered)
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_config(args)?;
    let result = MrpOptimizer::new(cfg)
        .optimize(&coeffs)
        .map_err(|e| CliError(e.to_string()))?;
    let width = args.get_usize("width", 16)? as u32;
    if width == 0 || width > 48 {
        bail!("--width must be within 1..=48");
    }
    let pipeline_depth = args.get_usize("pipeline-depth", 0)? as u32;
    if pipeline_depth > 64 {
        bail!("--pipeline-depth must be within 1..=64 (0/absent disables pipelining)");
    }
    let graph = result.graph;
    let az = Analyzer::new(&graph, AnalysisContext { input_width: width });
    let pipelined = if pipeline_depth > 0 {
        Some(pipeline_and_retime(&az, pipeline_depth))
    } else {
        None
    };
    if let Some(overlay) = args.get("dot") {
        return analyze_dot(&az, overlay, pipelined.as_ref());
    }

    let depth = az.get_analysis::<Depth>();
    let fanout = az.get_analysis::<Fanout>();
    let wm = az.get_analysis::<WidthMap>();
    let cp = az.get_analysis::<CriticalPath>();
    let cone = az.get_analysis::<ConeOfInfluence>();
    let dom = az.get_analysis::<Dominators>();

    let n = graph.len();
    let outputs = graph.outputs().iter().filter(|o| o.expected != 0).count();
    let widest_cone = (0..n).map(|i| cone.cone_size(i)).max().unwrap_or(0);
    let input_dominated = dom.idom.iter().filter(|d| **d == Some(0)).count();
    let path_nodes: Vec<String> = cp.path.iter().map(|&i| format!("n{i}")).collect();
    let path_values: Vec<String> = cp
        .path
        .iter()
        .map(|&i| format!("{}·x", graph.value(NodeId::from_index(i))))
        .collect();

    if args.flag("json") {
        let path_json: Vec<String> = cp.path.iter().map(usize::to_string).collect();
        let pipeline_json = match &pipelined {
            None => String::new(),
            Some((net, delta)) => format!(
                ",\"pipeline\":{{\"latency\":{},\"stage_depth\":{},\
                 \"combinational_depth\":{},\"registers\":{},\"retime_moves\":{}}}",
                delta.latency,
                delta.stage_depth,
                delta.combinational_depth,
                net.register_count(),
                delta.retime_moves
            ),
        };
        let computed: Vec<String> = az
            .computed_names()
            .iter()
            .map(|name| format!("\"{name}\""))
            .collect();
        return Ok(format!(
            "{{\"nodes\":{n},\"adders\":{},\"outputs\":{outputs},\
             \"depth\":{},\"critical_path\":[{}],\"max_fanout\":{},\
             \"input_width\":{width},\"min_safe_width\":{},\
             \"largest_cone\":{widest_cone},\"input_dominated\":{input_dominated}\
             {pipeline_json},\"analyses\":[{}]}}",
            graph.adder_count(),
            depth.max,
            path_json.join(","),
            fanout.max,
            wm.min_safe,
            computed.join(",")
        ));
    }

    let mut out = format!(
        "nodes: {n} ({} adder(s)), {outputs} output(s)\n\
         combinational depth: {}\n\
         critical path: {} ({})\n\
         max fanout: {}\n\
         min safe width: {} bit(s) at input width {width}\n\
         largest input cone: {widest_cone} node(s)\n\
         immediately input-dominated: {input_dominated} node(s)\n",
        graph.adder_count(),
        depth.max,
        path_nodes.join(" → "),
        path_values.join(" → "),
        fanout.max,
        wm.min_safe,
    );
    if let Some((net, delta)) = &pipelined {
        out.push_str(&format!(
            "pipeline (≤{pipeline_depth} adder(s)/stage): latency {} cycle(s), \
             stage depth {} (from {}), {} register(s), {} retime move(s)\n",
            delta.latency,
            delta.stage_depth,
            delta.combinational_depth,
            net.register_count(),
            delta.retime_moves,
        ));
    }
    out.push_str(&format!("analyses: {}\n", az.computed_names().join(", ")));
    Ok(out)
}

/// Renders the analyzed graph as Graphviz DOT with one analysis overlaid
/// on the node labels.
fn analyze_dot(
    az: &Analyzer<'_>,
    overlay: &str,
    pipelined: Option<&(PipelinedNetlist, TransformDelta)>,
) -> Result<String, CliError> {
    let graph = az.graph();
    let name = "mrpf_analyze";
    match overlay {
        "depth" => {
            let d = az.get_analysis::<Depth>();
            Ok(to_dot_labeled(graph, name, |n| {
                Some(format!("depth {}", d.depths[n.index()]))
            }))
        }
        "fanout" => {
            let f = az.get_analysis::<Fanout>();
            Ok(to_dot_labeled(graph, name, |n| {
                Some(format!("fanout {}", f.counts[n.index()]))
            }))
        }
        "width" => {
            let w = az.get_analysis::<WidthMap>();
            Ok(to_dot_labeled(graph, name, |n| {
                Some(format!("{} bit(s)", w.widths[n.index()]))
            }))
        }
        "cone" => {
            let c = az.get_analysis::<ConeOfInfluence>();
            Ok(to_dot_labeled(graph, name, |n| {
                Some(format!("cone {}", c.cone_size(n.index())))
            }))
        }
        "dom" => {
            let d = az.get_analysis::<Dominators>();
            Ok(to_dot_labeled(graph, name, |n| {
                d.idom[n.index()].map(|j| format!("idom n{j}"))
            }))
        }
        "stage" => {
            let Some((net, _)) = pipelined else {
                bail!("--dot stage requires --pipeline-depth N");
            };
            Ok(to_dot_labeled(graph, name, |n| {
                Some(format!("stage {}", net.stages[n.index()]))
            }))
        }
        other => bail!("unknown overlay `{other}` (use depth|fanout|width|cone|dom|stage)"),
    }
}

/// Simulates the synthesized netlist through the compiled linear-IR path
/// (`mrp-exec`), cross-checked against the tree-walk oracle, and reports
/// throughput for both (`docs/sim.md`).
fn sim(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_config(args)?;
    let result = MrpOptimizer::new(cfg)
        .optimize(&coeffs)
        .map_err(|e| CliError(e.to_string()))?;
    let samples = args.get_usize("samples", 100_000)?;
    if samples == 0 {
        bail!("--samples must be at least 1");
    }
    let lanes = args.get_usize("lanes", mrp_exec::DEFAULT_LANES)?;
    if !(mrp_exec::MIN_LANES..=mrp_exec::MAX_LANES).contains(&lanes) {
        bail!(
            "--lanes must be within {}..={}",
            mrp_exec::MIN_LANES,
            mrp_exec::MAX_LANES
        );
    }
    let pipeline_depth = args.get_usize("pipeline-depth", 0)? as u32;
    if pipeline_depth > 64 {
        bail!("--pipeline-depth must be within 1..=64 (0/absent disables pipelining)");
    }
    let amp = args.get_usize("amp", 1 << 10)? as i64;
    if amp == 0 || amp > 1 << 20 {
        bail!("--amp must be within 1..=1048576 (keeps the oracle overflow-free)");
    }
    let noise_seed = args.get_usize("noise-seed", 1)? as u64;
    let input = mrp_sim::signal::white_noise(samples, amp, noise_seed);
    // With --compiled the tree-walk oracle only re-checks a prefix, so
    // million-sample throughput runs are not bounded by the slow path.
    let oracle_len = if args.flag("compiled") {
        samples.min(65_536)
    } else {
        samples
    };
    let graph = result.graph;

    let (mode, latency, program, compiled, tree, elapsed_compiled, elapsed_tree);
    if pipeline_depth > 0 {
        let az = Analyzer::new(&graph, AnalysisContext::default());
        let (net, _) = pipeline_and_retime(&az, pipeline_depth);
        program = mrp_exec::compile_pipelined(&net);
        let mut machine = mrp_exec::Machine::with_lanes(program.clone(), lanes);
        let t0 = std::time::Instant::now();
        let outs = machine.run(&input);
        elapsed_compiled = t0.elapsed();
        let t0 = std::time::Instant::now();
        let mut state = vec![0i64; net.graph.len() * (net.latency as usize + 1)];
        let want: Vec<Vec<i64>> = input[..oracle_len]
            .iter()
            .map(|&x| net.step(&mut state, x))
            .collect();
        elapsed_tree = t0.elapsed();
        // Transpose the per-cycle oracle rows into per-output streams so
        // both sides compare in the machine's layout.
        let mut tree_outs = vec![Vec::with_capacity(oracle_len); program.outputs.len()];
        for row in &want {
            for (k, &v) in row.iter().enumerate() {
                tree_outs[k].push(v);
            }
        }
        let got: Vec<Vec<i64>> = outs.iter().map(|o| o[..oracle_len].to_vec()).collect();
        mode = "pipelined";
        latency = net.latency;
        compiled = got;
        tree = tree_outs;
    } else {
        let f = mrp_arch::FirFilter::new(graph);
        program = mrp_exec::compile_fir(&f);
        let mut machine = mrp_exec::Machine::with_lanes(program.clone(), lanes);
        let t0 = std::time::Instant::now();
        let y = machine.run_single(&input);
        elapsed_compiled = t0.elapsed();
        let t0 = std::time::Instant::now();
        let want = f.filter(&input[..oracle_len]);
        elapsed_tree = t0.elapsed();
        mode = "combinational";
        latency = 0;
        compiled = vec![y[..oracle_len].to_vec()];
        tree = vec![want];
    }

    if compiled != tree {
        bail!(
            "compiled execution diverged from the tree-walk oracle \
             (taps {coeffs:?}, mode {mode}, lanes {lanes})"
        );
    }
    let rate = |n: usize, d: std::time::Duration| n as f64 / d.as_secs_f64().max(1e-9);
    let compiled_rate = rate(samples, elapsed_compiled);
    let tree_rate = rate(oracle_len, elapsed_tree);
    let speedup = compiled_rate / tree_rate.max(1e-9);

    if args.flag("json") {
        return Ok(format!(
            "{{\"taps\":{},\"mode\":\"{mode}\",\"samples\":{samples},\
             \"oracle_samples\":{oracle_len},\"lanes\":{lanes},\
             \"latency\":{latency},\"insts\":{},\
             \"compiled_samples_per_sec\":{compiled_rate:.1},\
             \"tree_samples_per_sec\":{tree_rate:.1},\
             \"speedup\":{speedup:.2},\"equivalent\":true}}",
            coeffs.len(),
            program.insts.len(),
        ));
    }
    Ok(format!(
        "taps: {} ({mode}, latency {latency} cycle(s))\n\
         program: {} instruction(s) ({} add(s), {} delay(s)), {lanes} lane(s)\n\
         compiled: {samples} sample(s) at {compiled_rate:.0} samples/sec\n\
         tree-walk: {oracle_len} sample(s) at {tree_rate:.0} samples/sec\n\
         speedup: {speedup:.2}x\nequivalent: bit-exact over {oracle_len} sample(s)",
        coeffs.len(),
        program.insts.len(),
        program.adds(),
        program.delays(),
    ))
}

fn parse_rung(args: &Args, option: &str, default: &str) -> Result<Rung, CliError> {
    let raw = args.get_str(option, default);
    match Rung::parse(&raw) {
        Some(r) => Ok(r),
        None => bail!("unknown rung `{raw}` for --{option} (use exact|mrp+cse|mrp|cse|spt)"),
    }
}

/// Builds the supervised-synthesis configuration shared by `synth` and
/// `batch` from the common option set.
fn parse_synth_config(args: &Args) -> Result<SynthConfig, CliError> {
    let base = parse_config(args)?;
    let width = args.get_usize("width", 16)? as u32;
    if width == 0 || width > 48 {
        bail!("--width must be within 1..=48");
    }
    let deadline_ms = match args.get("deadline-ms") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            CliError(format!(
                "--deadline-ms expects a millisecond count, got {v}"
            ))
        })?),
    };
    let exact_nodes = args.get_usize("exact-nodes", mrp_core::DEFAULT_NODE_BUDGET)?;
    if exact_nodes == 0 {
        bail!("--exact-nodes must be at least 1");
    }
    let mcm_nodes = args.get_usize("exact-node-cap", mrp_exact::DEFAULT_MCM_NODE_BUDGET)?;
    if mcm_nodes == 0 {
        bail!("--exact-node-cap must be at least 1");
    }
    let faults = FaultPlan::parse(&args.get_str("faults", "")).map_err(CliError)?;
    let pipeline_depth = args.get_usize("pipeline-depth", 0)?;
    if pipeline_depth > 64 {
        bail!("--pipeline-depth must be within 1..=64 (0/absent disables pipelining)");
    }
    Ok(SynthConfig {
        base,
        budget: StageBudget {
            deadline_ms,
            exact_nodes,
            mcm_nodes,
        },
        // `--exact` starts the ladder at the branch-and-bound rung (and
        // also turns on the exact set cover inside the greedy incumbent,
        // via `parse_config`); an explicit `--start` still wins.
        start_rung: parse_rung(
            args,
            "start",
            if args.flag("exact") {
                "exact"
            } else {
                "mrp+cse"
            },
        )?,
        min_rung: parse_rung(args, "min-quality", "spt")?,
        lint: LintConfig {
            input_width: width,
            ..LintConfig::default()
        },
        faults,
        pipeline_depth: if pipeline_depth == 0 {
            None
        } else {
            Some(pipeline_depth as u32)
        },
    })
}

fn synth(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let cfg = parse_synth_config(args)?;
    let trace_path = args.get("trace").map(str::to_string);
    let metrics_path = args.get("metrics").map(str::to_string);
    if trace_path.is_some() || metrics_path.is_some() {
        mrp_obs::enable();
        mrp_obs::reset();
    }
    // The driver catches stage panics at rung boundaries; silence the
    // default hook while it runs so an isolated (recovered) panic does
    // not spray a backtrace over the report.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = synthesize(&coeffs, &cfg);
    std::panic::set_hook(previous_hook);
    // Export before error handling: a failed run's trace is the one you
    // most want to look at.
    if let Some(path) = &trace_path {
        write_observability_file(path, &mrp_obs::export_chrome_trace())?;
    }
    if let Some(path) = &metrics_path {
        write_observability_file(path, &mrp_obs::export_metrics_json())?;
    }
    if trace_path.is_some() || metrics_path.is_some() {
        mrp_obs::disable();
        mrp_obs::reset();
    }
    let outcome = result.map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    Ok(if args.flag("json") {
        outcome.render_json()
    } else {
        outcome.render_pretty()
    })
}

fn batch(args: &Args) -> Result<String, CliError> {
    let Some(path) = args.positional.first() else {
        bail!("expected a spec file, e.g. mrpf batch specs.json --jobs 4");
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read spec file `{path}`: {e}")))?;
    let specs = parse_specs(&text).map_err(CliError)?;
    let jobs = args.get_usize("jobs", 1)?;
    if jobs == 0 || jobs > 256 {
        bail!("--jobs must be within 1..=256");
    }
    let options = BatchOptions {
        jobs,
        racing: args.flag("racing"),
        synth: parse_synth_config(args)?,
    };
    let trace_path = args.get("trace").map(str::to_string);
    let metrics_path = args.get("metrics").map(str::to_string);
    if trace_path.is_some() || metrics_path.is_some() {
        mrp_obs::enable();
        mrp_obs::reset();
    }
    // Same panic-hook discipline as `synth`: failed rungs are isolated
    // and reported as degradations, not backtraces.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_batch(&specs, &options);
    std::panic::set_hook(previous_hook);
    if let Some(path) = &trace_path {
        write_observability_file(path, &mrp_obs::export_chrome_trace())?;
    }
    if let Some(path) = &metrics_path {
        write_observability_file(path, &mrp_obs::export_metrics_json())?;
    }
    if trace_path.is_some() || metrics_path.is_some() {
        mrp_obs::disable();
        mrp_obs::reset();
    }
    let rendered = if args.flag("json") {
        report.render_json()
    } else {
        report.render_pretty()
    };
    if let Some(out) = args.get("out") {
        std::fs::write(out, &rendered)
            .map_err(|e| CliError(format!("cannot write report `{out}`: {e}")))?;
        return Ok(format!(
            "wrote {} result(s) ({} unique, {} cache hit(s), {} failed) to {out}",
            report.rows.len(),
            report.unique,
            report.cache_hits(),
            report.failed()
        ));
    }
    if report.failed() == report.rows.len() {
        return Err(CliError(rendered));
    }
    Ok(rendered)
}

fn serve(args: &Args) -> Result<String, CliError> {
    let addr = args.get_str("addr", "127.0.0.1:7878");
    let jobs = args.get_usize("jobs", 2)?;
    if jobs == 0 || jobs > 256 {
        bail!("--jobs must be within 1..=256");
    }
    let queue = args.get_usize("queue", (jobs * 8).max(8))?;
    if queue == 0 || queue > 4096 {
        bail!("--queue must be within 1..=4096");
    }
    let store_dir = args.get("store").map(str::to_string);
    let options = ServeOptions {
        addr: addr.clone(),
        jobs,
        queue,
        racing: args.flag("racing"),
        store_dir: store_dir.clone(),
        synth: parse_synth_config(args)?,
    };
    let trace_path = args.get("trace").map(str::to_string);
    let metrics_path = args.get("metrics").map(str::to_string);
    let server =
        Server::bind(options).map_err(|e| CliError(format!("cannot bind `{addr}`: {e}")))?;
    if let (Some(dir), Some(recovery)) = (&store_dir, server.store_recovery()) {
        println!(
            "mrpf serve: store {dir}: recovered {} record(s) ({} corrupt skipped{}{})",
            recovery.records,
            recovery.corrupt,
            if recovery.torn_tail {
                ", torn tail truncated"
            } else {
                ""
            },
            if recovery.compacted {
                ", compacted"
            } else {
                ""
            },
        );
    }
    // A server runs indefinitely: keep the bounded metrics registry live
    // for /metricsz, but leave the unbounded event buffer off unless the
    // operator explicitly asked for a trace file.
    if trace_path.is_some() {
        mrp_obs::enable();
    } else {
        mrp_obs::enable_metrics_only();
    }
    mrp_obs::reset();
    println!(
        "mrpf serve: listening on http://{} (jobs {jobs}, queue {queue}); ctrl-c drains and exits",
        server.local_addr()
    );
    let _ = std::io::Write::flush(&mut std::io::stdout());
    mrp_serve::install_interrupt_handler();
    // Same panic-hook discipline as `synth`/`batch`: failed rungs are
    // isolated and reported as degradations, not backtraces.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let summary = server.run();
    std::panic::set_hook(previous_hook);
    if let Some(path) = &trace_path {
        write_observability_file(path, &mrp_obs::export_chrome_trace())?;
    }
    if let Some(path) = &metrics_path {
        write_observability_file(path, &mrp_obs::export_metrics_json())?;
    }
    mrp_obs::disable();
    mrp_obs::reset();
    let latency = if summary.served == 0 {
        String::new()
    } else {
        format!(
            "; latency ms: p50 {:.3} p90 {:.3} p99 {:.3} p999 {:.3}",
            summary.latency.p50, summary.latency.p90, summary.latency.p99, summary.latency.p999
        )
    };
    Ok(format!(
        "drained: served {} request(s) ({} coalesced), rejected {} under backpressure; \
         cache: {} entr{} ({} hit(s), {} miss(es)){}{latency}",
        summary.served,
        summary.coalesced,
        summary.rejected,
        summary.cache_entries,
        if summary.cache_entries == 1 {
            "y"
        } else {
            "ies"
        },
        summary.cache_hits,
        summary.cache_misses,
        match (&store_dir, summary.store_degraded) {
            (None, _) => "",
            (Some(_), false) => "; store: persistent",
            (Some(_), true) => "; store: DEGRADED to memory-only",
        }
    ))
}

fn chaos(args: &Args) -> Result<String, CliError> {
    let requests = args.get_usize("requests", 100)?;
    if requests == 0 || requests > 100_000 {
        bail!("--requests must be within 1..=100000");
    }
    let options = ChaosOptions {
        addr: args.get_str("addr", "127.0.0.1:7878"),
        requests,
        seed: args.get_usize("seed", 1)? as u64,
    };
    let report = run_chaos(&options).map_err(CliError)?;
    let rendered = if args.flag("json") {
        report.render_json()
    } else {
        report.render_pretty()
    };
    // A failed soak is a nonzero exit: CI can gate on `mrpf chaos`.
    if report.passed() {
        Ok(rendered)
    } else {
        Err(CliError(rendered))
    }
}

fn load(args: &Args) -> Result<String, CliError> {
    let rate = args.get_f64("rate", 20.0)?;
    if !(rate.is_finite() && rate > 0.0 && rate <= 10_000.0) {
        bail!("--rate must be within (0, 10000] requests/second");
    }
    let duration_ms = args.get_usize("duration-ms", 2000)? as u64;
    if duration_ms == 0 || duration_ms > 600_000 {
        bail!("--duration-ms must be within 1..=600000");
    }
    let synth_pct = args.get_usize("synth-pct", 70)? as u32;
    if synth_pct > 100 {
        bail!("--synth-pct must be within 0..=100");
    }
    let jobs = args.get_usize("jobs", 2)?;
    if jobs == 0 || jobs > 256 {
        bail!("--jobs must be within 1..=256");
    }
    let options = LoadOptions {
        addr: args.get_str("addr", "127.0.0.1:7878"),
        rate,
        duration_ms,
        synth_pct,
        seed: args.get_usize("seed", 1)? as u64,
        jobs,
    };
    let report = run_load(&options).map_err(CliError)?;
    if let Some(out) = args.get("out") {
        std::fs::write(out, report.render_json())
            .map_err(|e| CliError(format!("cannot write report `{out}`: {e}")))?;
    }
    let rendered = if args.flag("json") {
        report.render_json()
    } else {
        report.render_pretty()
    };
    // Like `chaos`, a failed run is a nonzero exit so CI can gate on it.
    if report.passed() {
        Ok(rendered)
    } else {
        Err(CliError(rendered))
    }
}

fn write_observability_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError(format!("cannot write observability file `{path}`: {e}")))
}

fn respond(args: &Args) -> Result<String, CliError> {
    let coeffs = parse_coeffs(args)?;
    let points = args.get_usize("points", 16)?;
    if !(2..=4096).contains(&points) {
        bail!("--points must be within 2..=4096");
    }
    let taps: Vec<f64> = coeffs.iter().map(|&c| c as f64).collect();
    let dc: f64 = taps.iter().sum::<f64>().abs().max(1e-12);
    let mut out = String::from("f        |H| (norm)   dB\n");
    for i in 0..points {
        let f = 0.5 * i as f64 / (points - 1) as f64;
        let m = mrp_filters::response::magnitude(&taps, f) / dc;
        out.push_str(&format!(
            "{f:<8.4} {m:<12.5} {:>7.1}\n",
            20.0 * m.max(1e-12).log10()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, CliError> {
        let args = Args::parse(line.split_whitespace().map(String::from))?;
        run(&args)
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_line("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_line("frobnicate").is_err());
    }

    #[test]
    fn optimize_paper_example() {
        let out = run_line("optimize 70,66,17,9,27,41,56,11").unwrap();
        assert!(out.contains("bit-exact"));
        assert!(out.contains("SEED size"));
    }

    #[test]
    fn optimize_rejects_garbage_coeffs() {
        assert!(run_line("optimize 1,2,three").is_err());
        assert!(run_line("optimize").is_err());
    }

    #[test]
    fn emit_produces_verilog() {
        let out = run_line("emit 7,9,45 --name blk --width 12").unwrap();
        assert!(out.contains("module blk"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn emit_validates_width() {
        assert!(run_line("emit 7 --width 99").is_err());
    }

    #[test]
    fn compare_lists_all_schemes() {
        let out = run_line("compare 70,66,17,9,27,41,56,11").unwrap();
        for scheme in ["simple", "CSE", "MRPF", "MRPF+CSE"] {
            assert!(out.contains(scheme), "missing {scheme}");
        }
    }

    #[test]
    fn design_float_output() {
        let out = run_line("design --kind lowpass --fp 0.1 --fs 0.2 --order 20").unwrap();
        assert_eq!(out.lines().count(), 21);
    }

    #[test]
    fn design_quantized_output_chains_into_optimize() {
        let out = run_line("design --kind lowpass --fp 0.1 --fs 0.2 --order 24 --w 12").unwrap();
        let opt = run_line(&format!("optimize {out}")).unwrap();
        assert!(opt.contains("bit-exact"));
    }

    #[test]
    fn design_rejects_bad_method() {
        assert!(run_line("design --method magic").is_err());
    }

    #[test]
    fn lint_reports_clean_block() {
        let out = run_line("lint 70,66,17,9,27,41,56,11").unwrap();
        assert!(out.contains("0 error(s)"), "unexpected: {out}");
    }

    #[test]
    fn lint_json_output() {
        let out = run_line("lint 7,9,45 --json --width 12").unwrap();
        assert!(out.contains("\"diagnostics\""), "unexpected: {out}");
        assert!(out.contains("\"stats\""), "unexpected: {out}");
    }

    #[test]
    fn lint_validates_width() {
        assert!(run_line("lint 7,9 --width 99").is_err());
    }

    #[test]
    fn lint_growth_bound_flags_wide_adders() {
        let clean = run_line("lint 7,9,45").unwrap();
        assert!(!clean.contains("MRP042"), "unexpected: {clean}");
        let out = run_line("lint 7,9,45 --growth-bound 1").unwrap();
        assert!(out.contains("MRP042"), "unexpected: {out}");
    }

    #[test]
    fn suite_coefficients_resolve_to_a_paper_filter() {
        let out = run_line("lint suite:1").unwrap();
        assert!(out.contains("0 error(s)"), "unexpected: {out}");
        assert!(run_line("lint suite:0").is_err());
        assert!(run_line("lint suite:99").is_err());
        assert!(run_line("lint suite:x").is_err());
    }

    #[test]
    fn analyze_reports_the_critical_path() {
        let out = run_line("analyze 7,23,0,105").unwrap();
        assert!(out.contains("combinational depth:"), "unexpected: {out}");
        assert!(out.contains("critical path: n0"), "unexpected: {out}");
        assert!(out.contains("min safe width:"), "unexpected: {out}");
    }

    #[test]
    fn analyze_json_includes_pipeline_delta() {
        let out = run_line("analyze 7,23,0,105 --json --pipeline-depth 1").unwrap();
        assert!(out.contains("\"critical_path\":["), "unexpected: {out}");
        assert!(
            out.contains("\"pipeline\":{\"latency\":"),
            "unexpected: {out}"
        );
        assert!(out.contains("\"analyses\":["), "unexpected: {out}");
    }

    #[test]
    fn analyze_dot_overlays_render() {
        for overlay in ["depth", "fanout", "width", "cone", "dom"] {
            let out = run_line(&format!("analyze 7,23 --dot {overlay}")).unwrap();
            assert!(out.starts_with("digraph"), "{overlay}: {out}");
        }
        let out = run_line("analyze 7,23 --dot stage --pipeline-depth 1").unwrap();
        assert!(out.contains("stage "), "unexpected: {out}");
    }

    #[test]
    fn analyze_rejects_bad_inputs() {
        assert!(run_line("analyze 7,23 --dot stage").is_err());
        assert!(run_line("analyze 7,23 --dot nonsense").is_err());
        assert!(run_line("analyze 7,23 --width 99").is_err());
        assert!(run_line("analyze 7,23 --pipeline-depth 65").is_err());
    }

    #[test]
    fn synth_pipeline_depth_reports_the_summary() {
        let out = run_line("synth 70,66,17,9,27,41,56,11 --pipeline-depth 1").unwrap();
        assert!(out.contains("pipeline: latency"), "unexpected: {out}");
        let json = run_line("synth 70,66,17,9,27,41,56,11 --pipeline-depth 1 --json").unwrap();
        assert!(
            json.contains("\"pipeline\":{\"latency\":"),
            "unexpected: {json}"
        );
        assert!(run_line("synth 7,9 --pipeline-depth 0").is_ok());
    }

    #[test]
    fn synth_healthy_run_reports_best_rung() {
        let out = run_line("synth 70,66,17,9,27,41,56,11").unwrap();
        assert!(out.contains("rung used: mrp+cse"), "unexpected: {out}");
        assert!(!out.contains("degraded"), "unexpected: {out}");
        assert!(out.contains("lint: clean"), "unexpected: {out}");
    }

    #[test]
    fn synth_json_output() {
        let out = run_line("synth 70,66,17,9,27,41,56,11 --json").unwrap();
        assert!(out.contains("\"rung\":\"mrp+cse\""), "unexpected: {out}");
        assert!(out.contains("\"degraded\":false"), "unexpected: {out}");
    }

    #[test]
    fn synth_exact_flag_starts_at_the_exact_rung() {
        let out = run_line("synth 70,66,17,9,27,41,56,11 --exact --json").unwrap();
        assert!(out.contains("\"rung\":\"exact\""), "unexpected: {out}");
        assert!(out.contains("\"nodes\":"), "unexpected: {out}");
        assert!(out.contains("\"budget_exhausted\":"), "unexpected: {out}");
        assert!(out.contains("\"lower_bound\":"), "unexpected: {out}");
        // An explicit --start still wins over --exact.
        let out = run_line("synth 70,66,17,9 --exact --start mrp --json").unwrap();
        assert!(out.contains("\"rung\":\"mrp\""), "unexpected: {out}");
    }

    #[test]
    fn synth_exact_node_cap_exhaustion_still_delivers() {
        let out = run_line("synth 70,66,17,9,27,41,56,11 --exact --exact-node-cap 1").unwrap();
        assert!(out.contains("rung used: exact"), "unexpected: {out}");
        assert!(!out.contains("degraded"), "unexpected: {out}");
        assert!(run_line("synth 7,9 --exact --exact-node-cap 0").is_err());
    }

    #[test]
    fn synth_reports_degradations_from_injected_faults() {
        let out = run_line("synth 70,66,17,9 --faults panic@mrp+cse,seed=3").unwrap();
        assert!(
            out.contains("rung used: mrp (degraded)"),
            "unexpected: {out}"
        );
        assert!(out.contains("panic"), "unexpected: {out}");
    }

    #[test]
    fn synth_zero_deadline_lands_on_spt() {
        let out = run_line("synth 70,66,17,9 --deadline-ms 0").unwrap();
        assert!(
            out.contains("rung used: spt (degraded)"),
            "unexpected: {out}"
        );
    }

    #[test]
    fn synth_quality_floor_turns_fault_into_failure() {
        let err = run_line("synth 70,66,17,9 --faults panic@* --min-quality mrp").unwrap_err();
        assert!(
            err.0.contains("every fallback rung failed"),
            "unexpected: {err}"
        );
    }

    #[test]
    fn synth_json_includes_attempts() {
        let out = run_line("synth 70,66,17,9 --faults panic@mrp+cse,seed=3 --json").unwrap();
        assert!(out.contains("\"attempts\":["), "unexpected: {out}");
        assert!(
            out.contains("\"rung\":\"mrp+cse\",\"elapsed_ms\":"),
            "unexpected: {out}"
        );
        assert!(out.contains("\"accepted\":true"), "unexpected: {out}");
        assert!(out.contains("\"accepted\":false"), "unexpected: {out}");
    }

    // Tests that pass --trace/--metrics share the process-global
    // collector; serialize them so one test's reset cannot clear
    // another's events between run and export.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn synth_trace_and_metrics_files_cover_the_pipeline() {
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir();
        let trace_path = dir.join("mrpf_cli_test_trace.json");
        let metrics_path = dir.join("mrpf_cli_test_metrics.json");
        let line = format!(
            "synth 70,66,17,9,27,41,56,11 --exact --trace {} --metrics {}",
            trace_path.display(),
            metrics_path.display()
        );
        run_line(&line).unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        // Every pipeline stage shows up as a span, rungs included.
        for span in [
            "\"name\":\"synth\"",
            "\"name\":\"rung[exact]\"",
            "\"name\":\"exact.mcm\"",
            "\"name\":\"core.optimize\"",
            "\"name\":\"core.graph\"",
            "\"name\":\"core.wmsc\"",
            "\"name\":\"core.exact\"",
            "\"name\":\"core.forest\"",
            "\"name\":\"core.apsp\"",
            "\"name\":\"core.realize.seed\"",
            "\"name\":\"core.realize.overhead\"",
            "\"name\":\"cse.hartley\"",
            "\"name\":\"lint.graph\"",
            "\"name\":\"gate.lint\"",
            "\"name\":\"gate.equiv\"",
            "\"name\":\"gate.equiv.compiled\"",
            "\"name\":\"exec.lower\"",
            "\"name\":\"exec.run\"",
        ] {
            assert!(trace.contains(span), "missing {span} in trace");
        }
        // Spans are nested (parent attribution recorded) and balanced.
        assert!(
            trace.contains("\"args\":{\"parent\":"),
            "no nesting: {trace}"
        );
        assert_eq!(
            trace.matches("\"ph\":\"B\"").count(),
            trace.matches("\"ph\":\"E\"").count(),
            "unbalanced spans"
        );
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        for counter in [
            "\"core.wmsc.iterations\":",
            "\"core.exact.nodes\":",
            "\"exact.mcm.nodes\":",
            "\"core.adders\":",
            "\"synth.adders\":",
            "\"exec.lower.insts\":",
            "\"exec.run.lanes\":",
            "\"gate.equiv.compiled_samples\":",
        ] {
            assert!(metrics.contains(counter), "missing {counter} in {metrics}");
        }
        assert!(
            metrics.contains("\"core.wmsc.benefit_f\":{\"count\":"),
            "missing benefit histogram in {metrics}"
        );
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn synth_trace_bad_path_is_reported() {
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let err = run_line("synth 70,66 --trace /nonexistent-dir-zz/trace.json").unwrap_err();
        assert!(err.0.contains("cannot write"), "unexpected: {err}");
    }

    #[test]
    fn synth_rejects_bad_inputs() {
        assert!(run_line("synth 70,66 --faults explode@mrp").is_err());
        assert!(run_line("synth 70,66 --min-quality orbit").is_err());
        assert!(run_line("synth 70,66 --deadline-ms soon").is_err());
        assert!(run_line("synth 70,66 --exact-nodes 0").is_err());
        assert!(run_line("synth 70,66 --width 99").is_err());
        assert!(run_line("synth").is_err());
    }

    fn write_temp_specs(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(
            &path,
            r#"{"filters": [
                {"name": "a", "coeffs": [70, 66, 17, 9]},
                {"name": "a2x", "coeffs": [140, 132, 34, 18]},
                {"name": "b", "coeffs": [23, 45, 77]}
            ]}"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn batch_runs_spec_file_with_cache_hits() {
        let path = write_temp_specs("mrpf_cli_test_batch.json");
        let out = run_line(&format!("batch {}", path.display())).unwrap();
        assert!(out.contains("3 spec(s), 2 unique, 1 cache hit(s)"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_json_identical_across_jobs_and_racing() {
        let path = write_temp_specs("mrpf_cli_test_batch_jobs.json");
        let base = run_line(&format!("batch {} --json --jobs 1", path.display())).unwrap();
        assert!(base.contains("\"cache_hits\":1"), "{base}");
        for extra in ["--jobs 4", "--jobs 2 --racing"] {
            let other = run_line(&format!("batch {} --json {extra}", path.display())).unwrap();
            assert_eq!(base, other, "{extra} changed the report bytes");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_writes_report_file() {
        let spec = write_temp_specs("mrpf_cli_test_batch_out.json");
        let out_path = std::env::temp_dir().join("mrpf_cli_test_batch_report.json");
        let msg = run_line(&format!(
            "batch {} --json --out {}",
            spec.display(),
            out_path.display()
        ))
        .unwrap();
        assert!(msg.contains("wrote 3 result(s)"), "{msg}");
        let written = std::fs::read_to_string(&out_path).unwrap();
        assert!(written.contains("\"batch\":{\"specs\":3"), "{written}");
        let _ = std::fs::remove_file(&spec);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        assert!(run_line("batch").is_err());
        assert!(run_line("batch /nonexistent-dir-zz/specs.json").is_err());
        let path = write_temp_specs("mrpf_cli_test_batch_badjobs.json");
        assert!(run_line(&format!("batch {} --jobs 0", path.display())).is_err());
        assert!(run_line(&format!("batch {} --jobs 999", path.display())).is_err());
        let _ = std::fs::remove_file(&path);
    }

    // A *valid* serve invocation blocks on the accept loop, so only the
    // argument-validation paths are reachable from unit tests; the live
    // server is exercised by crates/serve/tests/http.rs and the CI
    // serve-smoke job.
    #[test]
    fn serve_rejects_bad_inputs() {
        assert!(run_line("serve --jobs 0").is_err());
        assert!(run_line("serve --jobs 999").is_err());
        assert!(run_line("serve --queue 0").is_err());
        assert!(run_line("serve --queue 9999").is_err());
        assert!(run_line("serve --width 99").is_err());
        let err = run_line("serve --addr not-an-address").unwrap_err();
        assert!(err.0.contains("cannot bind"), "unexpected: {err}");
    }

    // Like `serve`, a chaos run against a live server is exercised by
    // the integration tests and the CI chaos-smoke job; from unit tests
    // only validation and the no-server setup error are reachable.
    #[test]
    fn chaos_rejects_bad_inputs_and_reports_dead_targets() {
        assert!(run_line("chaos --requests 0").is_err());
        assert!(run_line("chaos --requests 999999").is_err());
        assert!(run_line("chaos --seed abc").is_err());
        // Port 1 is never our server: the baseline probe must fail fast
        // with a setup error rather than report a finding.
        let err = run_line("chaos --addr 127.0.0.1:1 --requests 1").unwrap_err();
        assert!(err.0.contains("baseline probe failed"), "unexpected: {err}");
    }

    // Like `chaos`, a load run needs a live server; unit tests reach
    // only validation and the health-probe setup error.
    #[test]
    fn load_rejects_bad_inputs_and_reports_dead_targets() {
        assert!(run_line("load --rate 0").is_err());
        assert!(run_line("load --rate 99999").is_err());
        assert!(run_line("load --duration-ms 0").is_err());
        assert!(run_line("load --synth-pct 101").is_err());
        assert!(run_line("load --jobs 0").is_err());
        let err = run_line("load --addr 127.0.0.1:1 --duration-ms 100").unwrap_err();
        assert!(err.0.contains("health probe"), "unexpected: {err}");
    }

    #[test]
    fn usage_covers_every_subcommand() {
        for name in [
            "design", "optimize", "emit", "compare", "respond", "lint", "analyze", "sim", "synth",
            "batch", "serve", "chaos", "load",
        ] {
            assert!(USAGE.contains(&format!("mrpf {name}")), "missing {name}");
        }
    }

    #[test]
    fn sim_reports_bit_exact_equivalence() {
        let out = run_line("sim 70,66,17,9 --samples 2000").unwrap();
        assert!(
            out.contains("equivalent: bit-exact over 2000 sample(s)"),
            "{out}"
        );
        assert!(out.contains("speedup:"), "{out}");
    }

    #[test]
    fn sim_json_compiled_checks_a_prefix_oracle() {
        let out =
            run_line("sim 70,66,17,9,27,41,56,11 --compiled --samples 200000 --json").unwrap();
        assert!(out.contains("\"equivalent\":true"), "{out}");
        assert!(out.contains("\"samples\":200000"), "{out}");
        assert!(out.contains("\"oracle_samples\":65536"), "{out}");
        assert!(out.contains("\"mode\":\"combinational\""), "{out}");
    }

    #[test]
    fn sim_pipelined_matches_the_cycle_oracle() {
        let out = run_line("sim suite:3 --pipeline-depth 2 --samples 3000 --json").unwrap();
        assert!(out.contains("\"mode\":\"pipelined\""), "{out}");
        assert!(out.contains("\"equivalent\":true"), "{out}");
        let latency: u64 = out
            .split("\"latency\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(latency >= 1, "{out}");
    }

    #[test]
    fn sim_respects_lanes_and_noise_seed() {
        let a = run_line("sim 70,66,17,9 --samples 1500 --lanes 8 --noise-seed 7 --json").unwrap();
        let b = run_line("sim 70,66,17,9 --samples 1500 --lanes 64 --noise-seed 7 --json").unwrap();
        for out in [&a, &b] {
            assert!(out.contains("\"equivalent\":true"), "{out}");
        }
        assert!(a.contains("\"lanes\":8"), "{a}");
        assert!(b.contains("\"lanes\":64"), "{b}");
    }

    #[test]
    fn sim_rejects_bad_inputs() {
        assert!(run_line("sim 70,66 --samples 0").is_err());
        assert!(run_line("sim 70,66 --lanes 4").is_err());
        assert!(run_line("sim 70,66 --lanes 128").is_err());
        assert!(run_line("sim 70,66 --pipeline-depth 65").is_err());
        assert!(run_line("sim 70,66 --amp 0").is_err());
        assert!(run_line("sim").is_err());
    }

    #[test]
    fn seed_and_repr_options() {
        let out =
            run_line("optimize 70,66,17,9,27,41,56,11 --seed cse --repr sm --depth 3").unwrap();
        assert!(out.contains("adders"));
    }
}
#[cfg(test)]
mod respond_tests {
    use super::*;
    use crate::args::Args;

    fn run_line(line: &str) -> Result<String, CliError> {
        let args = Args::parse(line.split_whitespace().map(String::from))?;
        run(&args)
    }

    #[test]
    fn respond_prints_table() {
        let out = run_line("respond 1,2,3,2,1 --points 8").unwrap();
        assert_eq!(out.lines().count(), 9);
        // DC row is normalized to 1.
        assert!(out.lines().nth(1).unwrap().contains("1.00000"));
    }

    #[test]
    fn respond_validates_points() {
        assert!(run_line("respond 1,2 --points 1").is_err());
        assert!(run_line("respond 1,2 --points 9999").is_err());
    }
}
