//! `mrpf` — command-line front end for the MRPF reproduction.

use mrp_cli::args::Args;
use mrp_cli::run;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", mrp_cli::USAGE_HINT);
            std::process::exit(2);
        }
    };
    match run(&parsed) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
