//! Library backing the `mrpf` command-line tool.
//!
//! The CLI wires the whole reproduction together for interactive use:
//!
//! ```text
//! mrpf design   --kind lowpass --fp 0.1 --fs 0.2 --order 40 [--method pm|ls|bw]
//! mrpf optimize <c0,c1,...>   [--repr spt|sm] [--beta B] [--depth D] [--seed direct|cse|recursive]
//! mrpf emit     <c0,c1,...>   [--name module] [--width W] (Verilog to stdout)
//! mrpf compare  <c0,c1,...>   (adder counts under every scheme)
//! mrpf lint     <c0,c1,...>   [--width W] [--json] (static analysis report)
//! mrpf synth    <c0,c1,...>   [--deadline-ms MS] [--min-quality RUNG] [--faults SPEC]
//!                             (supervised synthesis with the fallback ladder)
//! ```
//!
//! All subcommands are implemented as library functions returning strings,
//! so they are unit-testable without spawning processes.

#![warn(missing_docs)]

pub mod args;
mod commands;

pub use commands::{run, CliError, USAGE};

/// Short hint appended to argument-parsing errors.
pub const USAGE_HINT: &str = "run `mrpf help` for usage";
