//! Chrome `trace_event` JSON exporter.
//!
//! Emits the JSON-object flavor of the [trace event format] so the output
//! loads directly in `chrome://tracing` and [Perfetto]. Span begin/end
//! pairs become `"B"`/`"E"` events (the viewers nest them by timestamp
//! within a track); instants become `"i"`. Timestamps are microseconds
//! with sub-µs precision kept as decimals, as the format expects.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::collector::{Event, Phase};

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn phase_str(phase: Phase) -> &'static str {
    match phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    }
}

/// Renders recorded events as a Chrome-trace JSON document.
pub(crate) fn export(events: &[Event]) -> String {
    let mut rows = Vec::with_capacity(events.len());
    for e in events {
        let ts_us = e.ts_ns as f64 / 1000.0;
        let mut row = format!(
            "{{\"name\":\"{}\",\"cat\":\"mrpf\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            json_escape(&e.name),
            phase_str(e.phase),
            e.tid,
            ts_us
        );
        if e.phase == Phase::Instant {
            // Thread-scoped instant marks.
            row.push_str(",\"s\":\"t\"");
        }
        if let Some(parent) = e.parent {
            row.push_str(&format!(
                ",\"args\":{{\"parent\":\"{}\"}}",
                json_escape(parent)
            ));
        }
        row.push('}');
        rows.push(row);
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"producer\":\"mrp-obs\"}}}}",
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, phase: Phase, ts_ns: u64, parent: Option<&'static str>) -> Event {
        Event {
            name: name.to_string(),
            phase,
            ts_ns,
            tid: 0,
            parent,
        }
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn export_shape() {
        let events = [
            ev("outer", Phase::Begin, 1_500, None),
            ev("mark", Phase::Instant, 2_000, Some("outer")),
            ev("outer", Phase::End, 3_000, None),
        ];
        let json = export(&events);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"args\":{\"parent\":\"outer\"}"), "{json}");
        assert!(json.ends_with("}"), "{json}");
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = export(&[]);
        assert!(json.contains("\"traceEvents\":[]"), "{json}");
    }
}
