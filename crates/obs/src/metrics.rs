//! Counter / gauge / histogram registry.
//!
//! Metrics are flat, named aggregates — the complement of the event
//! trace. A counter accumulates, a gauge holds the last value, and a
//! histogram is a mergeable log-bucketed [`Histogram`] keeping
//! count/min/max/sum plus deterministic p50/p90/p99/p999 at bounded
//! relative error (see `histogram.rs`). Export is a single flat JSON
//! document, designed to be trivially diffable across runs
//! (`BENCH_*.json` style).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::histogram::{Histogram, Quantiles};

/// Aggregated histogram state, as reported by
/// [`histogram_summary`](crate::histogram_summary): no samples, just the
/// running summary. Quantiles are read separately via
/// [`histogram_quantiles`](crate::histogram_quantiles) or the full
/// [`histogram_snapshot`](crate::histogram_snapshot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Sum of all recorded values.
    pub sum: f64,
}

impl HistogramSummary {
    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry behind the global collector. `BTreeMap` keeps the
/// export deterministically ordered.
pub(crate) struct MetricsRegistry {
    inner: Mutex<MetricsInner>,
}

impl MetricsRegistry {
    pub(crate) fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(MetricsInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn counter_add(&self, name: &str, delta: u64) {
        let mut m = self.lock();
        match m.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                m.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub(crate) fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    pub(crate) fn histogram_record(&self, name: &str, value: f64) {
        let mut m = self.lock();
        match m.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                m.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Folds a locally-accumulated histogram into the named registry
    /// entry — the bulk path for code that records on its own
    /// [`Histogram`] (no registry lock per sample) and publishes
    /// periodically.
    pub(crate) fn histogram_merge(&self, name: &str, other: &Histogram) {
        let mut m = self.lock();
        match m.histograms.get_mut(name) {
            Some(h) => h.merge(other),
            None => {
                m.histograms.insert(name.to_string(), other.clone());
            }
        }
    }

    pub(crate) fn counter_value(&self, name: &str) -> Option<u64> {
        self.lock().counters.get(name).copied()
    }

    pub(crate) fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    pub(crate) fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.lock().histograms.get(name).map(|h| HistogramSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            sum: h.sum(),
        })
    }

    pub(crate) fn histogram_quantiles(&self, name: &str) -> Option<Quantiles> {
        self.lock().histograms.get(name).map(Histogram::quantiles)
    }

    pub(crate) fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    pub(crate) fn clear(&self) {
        let mut m = self.lock();
        m.counters.clear();
        m.gauges.clear();
        m.histograms.clear();
    }

    /// Flat machine-readable export: `{"counters":{…},"gauges":{…},
    /// "histograms":{name:{count,min,max,sum,mean,quantiles:{p50,p90,
    /// p99,p999}}}}`.
    pub(crate) fn export_json(&self) -> String {
        let m = self.lock();
        let mut out = String::from("{\"counters\":{");
        let counters: Vec<String> = m
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", crate::chrome::json_escape(k)))
            .collect();
        out.push_str(&counters.join(","));
        out.push_str("},\"gauges\":{");
        let gauges: Vec<String> = m
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", crate::chrome::json_escape(k), json_number(*v)))
            .collect();
        out.push_str(&gauges.join(","));
        out.push_str("},\"histograms\":{");
        let hists: Vec<String> = m
            .histograms
            .iter()
            .map(|(k, h)| {
                let q = h.quantiles();
                format!(
                    "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"mean\":{},\
                     \"quantiles\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}}}",
                    crate::chrome::json_escape(k),
                    h.count(),
                    json_number(h.min()),
                    json_number(h.max()),
                    json_number(h.sum()),
                    json_number(h.mean()),
                    json_number(q.p50),
                    json_number(q.p90),
                    json_number(q.p99),
                    json_number(q.p999),
                )
            })
            .collect();
        out.push_str(&hists.join(","));
        out.push_str("}}");
        out
    }
}

/// Renders an `f64` as valid JSON (JSON has no NaN/Infinity literals).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = MetricsRegistry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter_value("a"), Some(5));
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter_value("a"), Some(u64::MAX));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn gauges_hold_last_value() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.0);
        assert_eq!(r.gauge_value("g"), Some(-2.0));
    }

    #[test]
    fn histogram_summarizes() {
        let r = MetricsRegistry::new();
        for v in [2.0, 4.0, 6.0] {
            r.histogram_record("h", v);
        }
        let h = r.histogram_summary("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
        let q = r.histogram_quantiles("h").unwrap();
        assert!((q.p50 - 4.0).abs() <= 4.0 / 32.0, "{q:?}");
        assert!(q.p999 <= 6.0, "{q:?}");
        assert_eq!(r.histogram_quantiles("missing"), None);
    }

    #[test]
    fn histogram_merge_matches_direct_records() {
        let r = MetricsRegistry::new();
        let mut local = Histogram::new();
        for v in [1.0, 10.0, 100.0] {
            r.histogram_record("m", v);
            local.record(v);
        }
        r.histogram_merge("m", &local);
        let h = r.histogram_summary("m").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        // Merging into an absent name clones the source.
        r.histogram_merge("fresh", &local);
        assert_eq!(r.histogram_summary("fresh").unwrap().count, 3);
        assert_eq!(r.histogram_snapshot("fresh").unwrap(), local);
    }

    #[test]
    fn export_is_valid_shaped_json() {
        let r = MetricsRegistry::new();
        r.counter_add("c\"x", 1);
        r.gauge_set("g", f64::NAN);
        r.histogram_record("h", 3.0);
        let json = r.export_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"c\\\"x\":1"), "{json}");
        assert!(json.contains("\"g\":null"), "{json}");
        assert!(json.contains("\"mean\":3"), "{json}");
        assert!(json.contains("\"quantiles\":{\"p50\":3"), "{json}");
    }
}
