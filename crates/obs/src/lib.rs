//! `mrp-obs` — structured tracing and metrics for the MRPF synthesis
//! pipeline.
//!
//! The pipeline (SID graph → WMSC cover → root selection → SEED network →
//! overhead adds → lint → RTL) is a multi-stage search whose interesting
//! behavior — greedy iterations, branch-and-bound nodes, degradation
//! events — is invisible from the outside. This crate provides the
//! instrumentation layer: a process-global collector with
//!
//! * **spans** — RAII guards ([`span`] / [`span_dyn`]) recording
//!   begin/end pairs with monotonic nanosecond timestamps and
//!   parent-span attribution via a per-thread stack;
//! * **instants** — point events ([`instant`] / [`instant_dyn`]) for
//!   things that happen rather than last (a degradation, a budget
//!   exhaustion);
//! * **metrics** — named counters, gauges, and mergeable log-bucketed
//!   histograms with deterministic p50/p90/p99/p999 at bounded relative
//!   error ([`counter_add`], [`gauge_set`], [`histogram_record`],
//!   [`histogram_quantiles`]; see [`Histogram`] and
//!   [`RELATIVE_ERROR_BOUND`]);
//! * **exporters** — [`export_chrome_trace`] (loadable in
//!   `chrome://tracing` / Perfetto) and [`export_metrics_json`] (flat
//!   machine-readable JSON).
//!
//! # Cheap when off
//!
//! The collector is disabled by default. Every instrumentation site —
//! span creation, instant, metric update — starts with one relaxed
//! atomic load and returns immediately when disabled: no allocation, no
//! lock, no clock read. `benches/overhead.rs` measures the disabled
//! cost per site (the budget is ≤ 5 ns).
//!
//! # Bounded when serving
//!
//! [`enable`] records everything, which is right for a run that ends
//! (the event buffer is bounded by the run). A process that runs
//! indefinitely — `mrpf serve` — calls [`enable_metrics_only`] instead:
//! the bounded metrics registry stays live and exportable on demand
//! ([`export_metrics_json`]), while spans and instants stay inert so the
//! event buffer cannot grow without bound.
//!
//! # Span naming convention
//!
//! Dotted lowercase paths, crate first: `core.optimize`, `core.wmsc`,
//! `core.exact`, `core.apsp`, `core.realize.seed`, `cse.hartley`,
//! `lint.graph`, `gate.lint`. Dynamic instances carry their parameter in
//! brackets: `rung[mrp+cse]`. See `docs/observability.md`.
//!
//! # Examples
//!
//! ```
//! mrp_obs::enable();
//! mrp_obs::reset();
//! {
//!     let _run = mrp_obs::span("demo.run");
//!     mrp_obs::counter_add("demo.widgets", 3);
//! }
//! let trace = mrp_obs::export_chrome_trace();
//! assert!(trace.contains("\"demo.run\""));
//! let metrics = mrp_obs::export_metrics_json();
//! assert!(metrics.contains("\"demo.widgets\":3"));
//! mrp_obs::disable();
//! mrp_obs::reset();
//! ```

#![warn(missing_docs)]

mod chrome;
mod collector;
mod histogram;
mod metrics;

pub use collector::{
    disable, enable, enable_metrics_only, events_enabled, is_enabled, reset, SpanGuard,
};
pub use histogram::{Histogram, Quantiles, RELATIVE_ERROR_BOUND};
pub use metrics::HistogramSummary;

use collector::{collector, Phase};

/// Opens a span with a static name. The returned guard records the end
/// event when dropped; while open, the name is the parent of any span or
/// instant recorded on the same thread. Inert (one atomic load) when the
/// collector is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !events_enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::begin(name.to_string(), Some(name))
}

/// Opens a span with a runtime-built name (e.g. `rung[mrp+cse]`).
/// Dynamic spans record parents but are not themselves pushed on the
/// parent stack (their name has no `'static` lifetime).
#[inline]
pub fn span_dyn(name: String) -> SpanGuard {
    if !events_enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::begin(name, None)
}

/// Records an instant event with a static name.
#[inline]
pub fn instant(name: &'static str) {
    if !events_enabled() {
        return;
    }
    collector().record(
        name.to_string(),
        Phase::Instant,
        collector::current_parent(),
    );
}

/// Records an instant event with a runtime-built name.
#[inline]
pub fn instant_dyn(name: String) {
    if !events_enabled() {
        return;
    }
    collector().record(name, Phase::Instant, collector::current_parent());
}

/// Adds `delta` to the named counter (created at 0 on first touch;
/// saturating).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    collector().metrics.counter_add(name, delta);
}

/// Sets the named gauge to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    collector().metrics.gauge_set(name, value);
}

/// Records one sample into the named summary histogram.
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    collector().metrics.histogram_record(name, value);
}

/// Current value of a counter, if it exists. Reads work even while the
/// collector is disabled (recorded data is kept until [`reset`]).
pub fn counter_value(name: &str) -> Option<u64> {
    collector().metrics.counter_value(name)
}

/// Current value of a gauge, if it exists.
pub fn gauge_value(name: &str) -> Option<f64> {
    collector().metrics.gauge_value(name)
}

/// Folds a locally-accumulated [`Histogram`] into the named registry
/// histogram — the bulk path for code that records on a local histogram
/// (no global lock per sample) and publishes periodically. Merging is
/// deterministic: any partition of samples, merged in any order, yields
/// the same buckets and quantiles.
#[inline]
pub fn histogram_merge(name: &str, other: &Histogram) {
    if !is_enabled() {
        return;
    }
    collector().metrics.histogram_merge(name, other);
}

/// Summary of a histogram, if it exists.
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    collector().metrics.histogram_summary(name)
}

/// Deterministic p50/p90/p99/p999 of a histogram, if it exists. Each
/// estimate is within [`RELATIVE_ERROR_BOUND`] relative error of the
/// exact sorted-sample value at the same rank.
pub fn histogram_quantiles(name: &str) -> Option<Quantiles> {
    collector().metrics.histogram_quantiles(name)
}

/// Full snapshot (clone) of a named histogram, if it exists — for
/// callers that want to merge registry state into their own aggregates.
pub fn histogram_snapshot(name: &str) -> Option<Histogram> {
    collector().metrics.histogram_snapshot(name)
}

/// Exports every recorded event as a Chrome `trace_event` JSON document
/// (object form, `traceEvents` array). Loadable in `chrome://tracing`
/// and Perfetto.
pub fn export_chrome_trace() -> String {
    chrome::export(&collector().events_snapshot())
}

/// Exports all metrics as one flat JSON document:
/// `{"counters":{…},"gauges":{…},"histograms":{…}}`.
pub fn export_metrics_json() -> String {
    collector().metrics.export_json()
}

/// Number of events currently recorded (spans count twice: begin + end).
pub fn event_count() -> usize {
    collector().events_snapshot().len()
}
