//! The global collector: an enabled flag, an event buffer, and thread
//! bookkeeping.
//!
//! Everything funnels through one process-wide [`Collector`] so that a
//! synthesis run spread over several crates (and, under the resilient
//! driver, several threads) lands in one coherent trace. The cardinal
//! design rule is *cheap when off*: every instrumentation site begins
//! with a single relaxed atomic load, and a disabled site allocates
//! nothing, locks nothing, and reads no clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Whether the global collector records anything. Relaxed is sufficient:
/// the flag gates best-effort telemetry, not synchronization.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether trace *events* (spans and instants) are recorded. Metrics are
/// gated by [`ENABLED`] alone; events additionally require this flag, so
/// a long-running process (e.g. `mrpf serve`) can keep the bounded
/// counter/gauge/histogram registry live without the unbounded event
/// buffer growing for the lifetime of the process.
static EVENTS: AtomicBool = AtomicBool::new(false);

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

thread_local! {
    /// Per-thread stack of open span names (for parent attribution).
    /// RAII guards drop in LIFO order, which keeps it consistent.
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Event {
    /// Event name (span or instant label).
    pub name: String,
    /// Phase: span begin, span end, or instant.
    pub phase: Phase,
    /// Nanoseconds since the collector epoch.
    pub ts_ns: u64,
    /// Small sequential thread id.
    pub tid: u64,
    /// Parent span name at emission time (begin/instant events only).
    pub parent: Option<&'static str>,
}

/// Chrome-trace phase of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant event (`"i"`).
    Instant,
}

/// The process-wide trace/metrics collector.
pub(crate) struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
    pub(crate) metrics: MetricsRegistry,
    tids: Mutex<HashMap<ThreadId, u64>>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
            tids: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Small stable id for the calling thread (0, 1, 2, … in first-seen
    /// order).
    fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut map = self.tids.lock().unwrap_or_else(|e| e.into_inner());
        let next = map.len() as u64;
        *map.entry(id).or_insert(next)
    }

    pub(crate) fn record(&self, name: String, phase: Phase, parent: Option<&'static str>) -> u64 {
        let ts_ns = self.now_ns();
        let event = Event {
            name,
            phase,
            ts_ns,
            tid: self.tid(),
            parent,
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
        ts_ns
    }

    pub(crate) fn events_snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.metrics.clear();
    }
}

pub(crate) fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Turns recording on. Instrumentation sites in every crate start
/// contributing spans, events, and metric updates.
pub fn enable() {
    // Materialize the collector (and its epoch) up front so the first
    // recorded timestamp is not also paying initialization.
    let _ = collector();
    EVENTS.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns on the metrics registry only: counters, gauges, and histograms
/// record, but spans and instants stay inert. This is the mode for
/// processes that run indefinitely (e.g. `mrpf serve`): the metrics
/// registry is bounded by the number of distinct metric names, while the
/// event buffer grows with every span and would otherwise leak for the
/// lifetime of the process. Call [`enable`] instead when a full trace is
/// wanted (and bounded by the run).
pub fn enable_metrics_only() {
    let _ = collector();
    EVENTS.store(false, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded data is kept; instrumentation
/// sites go back to a single atomic load.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    EVENTS.store(false, Ordering::Relaxed);
}

/// Whether the collector is currently recording (metrics at minimum).
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether spans and instants are currently recorded (full [`enable`]
/// mode, as opposed to [`enable_metrics_only`]).
#[inline(always)]
pub fn events_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && EVENTS.load(Ordering::Relaxed)
}

/// Clears all recorded events and metrics (the enabled flag is left
/// unchanged). Intended for tests and for reusing one process for
/// several traced runs.
pub fn reset() {
    if let Some(c) = COLLECTOR.get() {
        c.clear();
    }
}

/// RAII span guard: records a begin event on creation and the matching
/// end event on drop. Obtained from [`span`](crate::span) /
/// [`span_dyn`](crate::span_dyn); a guard created while the collector is
/// disabled is inert and costs one branch to drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// Static name pushed on the thread-local parent stack (`None` for
    /// dynamic names, which never become parents).
    stacked: Option<&'static str>,
    /// Name to emit on the end event; `None` marks an inert guard.
    name: Option<String>,
    start_ns: u64,
}

impl SpanGuard {
    pub(crate) const INERT: SpanGuard = SpanGuard {
        stacked: None,
        name: None,
        start_ns: 0,
    };

    pub(crate) fn begin(name: String, stacked: Option<&'static str>) -> SpanGuard {
        let parent = current_parent();
        if let Some(s) = stacked {
            SPAN_STACK.with(|st| st.borrow_mut().push(s));
        }
        let start_ns = collector().record(name.clone(), Phase::Begin, parent);
        SpanGuard {
            stacked,
            name: Some(name),
            start_ns,
        }
    }

    /// Whether the guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.name.is_some()
    }

    /// Nanoseconds since the span began, or `None` for an inert guard.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.name
            .as_ref()
            .map(|_| collector().now_ns().saturating_sub(self.start_ns))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        if self.stacked.is_some() {
            SPAN_STACK.with(|st| {
                st.borrow_mut().pop();
            });
        }
        collector().record(name, Phase::End, None);
    }
}

/// The innermost open static-named span on this thread, if any.
pub(crate) fn current_parent() -> Option<&'static str> {
    SPAN_STACK.with(|st| st.borrow().last().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize tests touching it.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_guard_is_inert() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        reset();
        let g = crate::span("should.not.record");
        assert!(!g.is_active());
        assert_eq!(g.elapsed_ns(), None);
        drop(g);
        assert!(collector().events_snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        reset();
        {
            let _a = crate::span("outer");
            {
                let _b = crate::span("inner");
                crate::instant("tick");
            }
        }
        disable();
        let events = collector().events_snapshot();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].parent, Some("outer"));
        assert_eq!(events[2].name, "tick");
        assert_eq!(events[2].parent, Some("inner"));
        // Ends come back in LIFO order.
        assert_eq!(events[3].name, "inner");
        assert_eq!(events[3].phase, Phase::End);
        assert_eq!(events[4].name, "outer");
        // Timestamps are monotonic.
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        reset();
    }

    #[test]
    fn metrics_only_mode_records_no_events() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable_metrics_only();
        reset();
        assert!(is_enabled());
        assert!(!events_enabled());
        {
            let g = crate::span("serve.request");
            assert!(!g.is_active());
            crate::instant("serve.tick");
            crate::counter_add("serve.requests", 2);
            crate::gauge_set("serve.inflight", 1.0);
            crate::histogram_record("serve.latency_ms", 3.0);
        }
        assert!(collector().events_snapshot().is_empty());
        assert_eq!(crate::counter_value("serve.requests"), Some(2));
        assert_eq!(crate::gauge_value("serve.inflight"), Some(1.0));
        assert_eq!(
            crate::histogram_summary("serve.latency_ms").unwrap().count,
            1
        );
        // Full enable() restores event recording.
        enable();
        {
            let g = crate::span("traced.again");
            assert!(g.is_active());
        }
        assert_eq!(collector().events_snapshot().len(), 2);
        disable();
        reset();
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        reset();
        let _a = crate::span("main.side");
        std::thread::spawn(|| {
            let _b = crate::span("worker.side");
        })
        .join()
        .unwrap();
        disable();
        let events = collector().events_snapshot();
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "expected two distinct thread ids");
        reset();
    }
}
