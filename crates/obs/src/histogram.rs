//! Mergeable log-bucketed (HDR-style) histograms with deterministic
//! quantiles at bounded relative error.
//!
//! The old summary histogram kept only count/min/max/sum — enough for a
//! mean, useless for a tail. This histogram additionally sorts every
//! sample into a *log-linear bucket*: the bucket index is derived
//! directly from the IEEE-754 bit pattern (exponent plus the top
//! [`SUB_BUCKET_BITS`] mantissa bits), which makes bucketing exact,
//! platform-independent, and free of any floating-point log call. Each
//! octave `[2^e, 2^(e+1))` is split into [`SUB_BUCKETS`] equal-width
//! sub-buckets, so a bucket's width is at most `1/32` of its lower edge
//! and the mid-bucket representative returned by [`Histogram::quantile`]
//! is within [`RELATIVE_ERROR_BOUND`] (= 1/64 ≈ 1.6 %) of the true
//! sample at that rank.
//!
//! Buckets are globally aligned (the key is a pure function of the
//! value), so two histograms over disjoint sample sets can be
//! [`merge`](Histogram::merge)d by adding counts — the result is
//! identical whatever the interleaving of records and merges, which is
//! what lets per-thread histograms collapse into one deterministic
//! summary.

use std::collections::BTreeMap;

/// Mantissa bits used for the sub-bucket index.
const SUB_BUCKET_BITS: u32 = 5;
/// Sub-buckets per octave (`2^SUB_BUCKET_BITS`).
const SUB_BUCKETS: i32 = 1 << SUB_BUCKET_BITS;
/// Bucket key for values ≤ 0 (and NaN): latencies and sizes are
/// non-negative, so everything non-positive collapses into one bucket
/// whose representative is 0.
const FLOOR_KEY: i32 = i32::MIN;

/// Worst-case relative error of a quantile estimate against the exact
/// sample at the same rank: half of one sub-bucket's relative width.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (2 * SUB_BUCKETS) as f64;

/// The standard quantile set exported everywhere: p50/p90/p99/p999.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// A mergeable log-bucketed histogram.
///
/// # Examples
///
/// ```
/// use mrp_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 2.0).abs() <= 2.0 * mrp_obs::RELATIVE_ERROR_BOUND);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    /// Sparse bucket-key → count. `BTreeMap` keeps buckets in value
    /// order, which is what makes quantile walks and JSON export
    /// deterministic.
    buckets: BTreeMap<i32, u64>,
}

/// Bucket key for a value: `exponent * SUB_BUCKETS + sub_bucket`,
/// taken straight from the IEEE-754 representation so the mapping is
/// exact and identical on every platform.
fn bucket_key(value: f64) -> i32 {
    if value == f64::INFINITY {
        return i32::MAX;
    }
    // ≤ 0 and NaN (which fails `is_finite`) collapse into the floor
    // bucket.
    if value <= 0.0 || !value.is_finite() {
        return FLOOR_KEY;
    }
    let bits = value.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as i32;
    exponent * SUB_BUCKETS + sub
}

/// Mid-bucket representative value for a key.
fn representative(key: i32) -> f64 {
    if key == FLOOR_KEY {
        return 0.0;
    }
    if key == i32::MAX {
        return f64::MAX;
    }
    let exponent = key.div_euclid(SUB_BUCKETS);
    let sub = key.rem_euclid(SUB_BUCKETS);
    let base = 2f64.powi(exponent);
    base * (1.0 + (sub as f64 + 0.5) / SUB_BUCKETS as f64)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_key(value)).or_insert(0) += 1;
    }

    /// Folds `other`'s samples into `self`. Buckets are globally
    /// aligned, so merging is pure count addition: any partition of a
    /// sample set across histograms, merged in any order, yields
    /// identical buckets and therefore identical quantiles.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (key, n) in &other.buckets {
            *self.buckets.entry(*key).or_insert(0) += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the mid-bucket
    /// representative of the bucket holding the sample of rank
    /// `ceil(q·count)`, clamped into `[min, max]`. Returns 0 when
    /// empty. The estimate is within [`RELATIVE_ERROR_BOUND`] relative
    /// error of the exact sorted-sample value at the same rank.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (key, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return representative(*key).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The standard p50/p90/p99/p999 set.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(7.25);
        // Clamping to [min, max] collapses a one-sample histogram onto
        // the sample itself at every quantile.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.25, "q={q}");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let q = h.quantiles();
        assert!(
            (q.p50 - 500.0).abs() / 500.0 <= RELATIVE_ERROR_BOUND,
            "{q:?}"
        );
        assert!(
            (q.p90 - 900.0).abs() / 900.0 <= RELATIVE_ERROR_BOUND,
            "{q:?}"
        );
        assert!(
            (q.p99 - 990.0).abs() / 990.0 <= RELATIVE_ERROR_BOUND,
            "{q:?}"
        );
        assert!(
            (q.p999 - 999.0).abs() / 999.0 <= RELATIVE_ERROR_BOUND,
            "{q:?}"
        );
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.p999, "{q:?}");
    }

    #[test]
    fn non_positive_and_non_finite_samples_are_bounded() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(5.0);
        assert_eq!(h.count(), 5);
        // Everything lands in a bucket; the floor bucket clamps to min.
        let p50 = h.quantile(0.5);
        assert!(p50.is_finite(), "{p50}");
    }

    #[test]
    fn merge_equals_recording_directly() {
        let samples: Vec<f64> = (0..200).map(|i| ((i * 37) % 997) as f64 + 1.0).collect();
        let mut whole = Histogram::new();
        for v in &samples {
            whole.record(*v);
        }
        let (a_half, b_half) = samples.split_at(61);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in a_half {
            a.record(*v);
        }
        for v in b_half {
            b.record(*v);
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        let mut reversed = Histogram::new();
        reversed.merge(&b);
        reversed.merge(&a);
        assert_eq!(reversed, whole);
    }

    #[test]
    fn bucket_keys_are_monotone_in_value() {
        let mut last = i32::MIN;
        for i in 1..100_000u64 {
            let key = bucket_key(i as f64 / 16.0);
            assert!(key >= last, "key regressed at {i}");
            last = key;
        }
    }

    #[test]
    fn representative_stays_inside_its_bucket() {
        for v in [0.001, 0.5, 1.0, 1.4, 7.0, 1000.0, 1.7e9] {
            let key = bucket_key(v);
            let rep = representative(key);
            assert!(
                (rep - v).abs() <= v / SUB_BUCKETS as f64,
                "rep {rep} too far from {v}"
            );
        }
    }
}
