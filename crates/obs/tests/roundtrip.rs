//! End-to-end collector round trips: trace in, JSON out.
//!
//! The collector is process-global, so everything lives in one `#[test]`
//! (integration tests in one file may run threaded; a single test keeps
//! the global state deterministic).

#[test]
fn full_roundtrip() {
    mrp_obs::enable();
    mrp_obs::reset();

    {
        let run = mrp_obs::span("test.run");
        assert!(run.is_active());
        {
            let _inner = mrp_obs::span("test.stage");
            mrp_obs::counter_add("test.items", 7);
            mrp_obs::counter_add("test.items", 5);
            mrp_obs::gauge_set("test.level", 2.5);
            for v in [1.0, 3.0] {
                mrp_obs::histogram_record("test.benefit", v);
            }
            mrp_obs::instant("test.mark");
        }
        let _dynamic = mrp_obs::span_dyn("rung[mrp+cse]".to_string());
        assert!(run.elapsed_ns().is_some());
    }

    let trace = mrp_obs::export_chrome_trace();
    // Spans appear as balanced B/E pairs, the instant as "i", and the
    // dynamic name verbatim.
    for needle in [
        "\"traceEvents\":[",
        "\"name\":\"test.run\"",
        "\"name\":\"test.stage\"",
        "\"name\":\"rung[mrp+cse]\"",
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
        "\"ph\":\"i\"",
        "\"args\":{\"parent\":\"test.run\"}",
    ] {
        assert!(trace.contains(needle), "missing {needle} in {trace}");
    }
    assert_eq!(trace.matches("\"ph\":\"B\"").count(), 3);
    assert_eq!(trace.matches("\"ph\":\"E\"").count(), 3);

    let metrics = mrp_obs::export_metrics_json();
    assert!(metrics.contains("\"test.items\":12"), "{metrics}");
    assert!(metrics.contains("\"test.level\":2.5"), "{metrics}");
    assert!(metrics.contains("\"count\":2"), "{metrics}");
    assert_eq!(mrp_obs::counter_value("test.items"), Some(12));
    assert_eq!(mrp_obs::gauge_value("test.level"), Some(2.5));
    let h = mrp_obs::histogram_summary("test.benefit").unwrap();
    assert_eq!(h.mean(), 2.0);

    // Disabled sites record nothing, but reads still see old data.
    mrp_obs::disable();
    let before = mrp_obs::event_count();
    let g = mrp_obs::span("test.ignored");
    assert!(!g.is_active());
    drop(g);
    mrp_obs::counter_add("test.items", 100);
    assert_eq!(mrp_obs::event_count(), before);
    assert_eq!(mrp_obs::counter_value("test.items"), Some(12));

    // Reset clears both stores.
    mrp_obs::reset();
    assert_eq!(mrp_obs::event_count(), 0);
    assert_eq!(mrp_obs::counter_value("test.items"), None);
    assert!(mrp_obs::export_chrome_trace().contains("\"traceEvents\":[]"));
}
