//! Property tests for the log-bucketed histogram: quantile accuracy
//! against exact sorted-sample quantiles, and merge determinism across
//! arbitrary partitions and merge orders (the cross-thread collapse
//! path).

use mrp_obs::{Histogram, RELATIVE_ERROR_BOUND};
use mrp_ptest::{run_cases, Rng};

/// Exact quantile under the histogram's rank definition: the sample of
/// rank `ceil(q·count)` in sorted order (1-based).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as f64;
    let rank = ((q.clamp(0.0, 1.0) * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sample_values(rng: &mut Rng) -> Vec<f64> {
    // Mix of scales: sub-millisecond to multi-second latencies, plus
    // occasional exact powers of two (bucket edges).
    let len = rng.usize_in(1, 400);
    (0..len)
        .map(|_| match rng.u32_in(0, 9) {
            0 => 2f64.powi(rng.i64_in(-10, 10) as i32),
            1..=4 => rng.f64_in(0.05, 10.0),
            _ => rng.f64_in(10.0, 5000.0),
        })
        .collect()
}

#[test]
fn recorded_quantiles_match_exact_within_error_bound() {
    run_cases("obs.quantiles.accuracy", 200, |rng| {
        let values = sample_values(rng);
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q);
            let exact = exact_quantile(&sorted, q);
            let err = (est - exact).abs() / exact;
            assert!(
                err <= RELATIVE_ERROR_BOUND + 1e-12,
                "q={q}: est {est} vs exact {exact} (rel err {err}) over {} samples",
                values.len()
            );
        }
    });
}

#[test]
fn quantiles_are_monotone_in_q() {
    run_cases("obs.quantiles.monotone", 100, |rng| {
        let values = sample_values(rng);
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut last = f64::NEG_INFINITY;
        for q in qs {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q})={v} < previous {last}");
            last = v;
        }
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
    });
}

#[test]
fn merge_is_deterministic_across_partitions_and_orders() {
    run_cases("obs.quantiles.merge_determinism", 150, |rng| {
        // Integer-valued samples: f64 addition over integers below 2^53
        // is exact under any order, so `sum` (and everything else) must
        // be bit-identical regardless of partition or merge order.
        let values: Vec<f64> = rng
            .vec_i64(1, 300, 1, 1_000_000)
            .into_iter()
            .map(|v| v as f64)
            .collect();

        let mut whole = Histogram::new();
        for v in &values {
            whole.record(*v);
        }

        // Partition into k "threads".
        let k = rng.usize_in(1, 8);
        let mut parts: Vec<Histogram> = (0..k).map(|_| Histogram::new()).collect();
        for v in &values {
            parts[rng.usize_in(0, k)].record(*v);
        }

        // Merge in forward order…
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        // …and in reverse order.
        let mut reverse = Histogram::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }

        assert_eq!(forward.count(), whole.count());
        assert_eq!(forward.min(), whole.min());
        assert_eq!(forward.max(), whole.max());
        assert_eq!(forward.sum(), whole.sum());
        assert_eq!(forward.quantiles(), whole.quantiles());
        assert_eq!(forward.quantiles(), reverse.quantiles());
        assert_eq!(forward, reverse);
    });
}
