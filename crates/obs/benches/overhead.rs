//! Disabled-collector overhead per instrumentation site.
//!
//! The contract is that a disabled site costs one relaxed atomic load —
//! on the order of a nanosecond, and at most ~5 ns per site. This bench
//! times batches of disabled span creations, instants, and counter adds
//! and prints the per-site cost; it also times the enabled path for
//! contrast. Run with `cargo bench -p mrp-obs`.

use std::hint::black_box;
use std::time::Instant;

const BATCH: u32 = 1_000_000;

/// Times `f` over three batches and returns the fastest per-call cost in
/// nanoseconds (the fastest batch is the least scheduler-disturbed one).
fn per_call_ns(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    best
}

fn row(label: &str, ns: f64) {
    println!("{label:<44} {ns:>10.2} ns/site");
}

fn main() {
    println!("mrp-obs instrumentation overhead ({BATCH} calls per batch, best of 3)");
    println!("{}", "-".repeat(60));

    mrp_obs::disable();
    mrp_obs::reset();
    let span_off = per_call_ns(|| {
        black_box(mrp_obs::span(black_box("bench.site")));
    });
    row("span (disabled)", span_off);
    let instant_off = per_call_ns(|| {
        mrp_obs::instant(black_box("bench.mark"));
    });
    row("instant (disabled)", instant_off);
    let counter_off = per_call_ns(|| {
        mrp_obs::counter_add(black_box("bench.count"), black_box(1));
    });
    row("counter_add (disabled)", counter_off);

    mrp_obs::enable();
    mrp_obs::reset();
    let counter_on = per_call_ns(|| {
        mrp_obs::counter_add(black_box("bench.count"), black_box(1));
    });
    row("counter_add (enabled)", counter_on);
    // Span timing uses a smaller batch: each span records two events.
    mrp_obs::reset();
    let t = Instant::now();
    for _ in 0..10_000u32 {
        black_box(mrp_obs::span(black_box("bench.site")));
    }
    let span_on = t.elapsed().as_nanos() as f64 / 10_000.0;
    row("span (enabled)", span_on);
    mrp_obs::disable();
    mrp_obs::reset();

    println!("{}", "-".repeat(60));
    let worst_off = span_off.max(instant_off).max(counter_off);
    println!("worst disabled site: {worst_off:.2} ns (budget: 5 ns)");
    // Loud but non-fatal on pathologically loaded machines; CI smoke uses
    // the printed number.
    if worst_off > 5.0 {
        println!("WARNING: disabled-site overhead exceeds the 5 ns budget");
    }
}
