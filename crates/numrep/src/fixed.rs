//! Representation selection and the adder-cost metric.

use std::fmt;

use crate::digits::{binary_digits, csd};

/// The number representation used to count the nonzero digits of a
/// coefficient, which in turn determines the adder cost of multiplying by it.
///
/// The MRPF paper evaluates three of these: plain binary (the "simple"
/// two's-complement implementation cost), sign-magnitude (SM), and
/// signed-powers-of-two (SPT, whose minimal form is the canonical signed
/// digit recoding, CSD).
///
/// # Examples
///
/// ```
/// use mrp_numrep::{nonzero_digits, Repr};
/// // 15 = 1111b (4 bits) but 10000 - 1 in CSD (2 digits).
/// assert_eq!(nonzero_digits(15, Repr::TwosComplement), 4);
/// assert_eq!(nonzero_digits(15, Repr::SignMagnitude), 4);
/// assert_eq!(nonzero_digits(15, Repr::Spt), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Repr {
    /// Two's-complement binary. Cost of `v` is `popcount(|v|)`; negative
    /// coefficients are handled by subtraction so the magnitude's bit count
    /// is the adder-relevant metric, matching the array-multiplier model of
    /// the paper.
    TwosComplement,
    /// Sign-magnitude: a sign bit plus binary magnitude; the cost metric is
    /// the magnitude's popcount (identical to [`Repr::TwosComplement`] for
    /// cost purposes, but SM changes which *differential* coefficients are
    /// cheap, so the MRP search explores a different space).
    SignMagnitude,
    /// Canonical signed digit — the unique minimal signed-digit form.
    Csd,
    /// Signed powers of two in minimal form; weight equals CSD weight.
    /// This is the representation used for most of the paper's evaluation.
    #[default]
    Spt,
}

impl Repr {
    /// All representations, for exhaustive sweeps.
    pub const ALL: [Repr; 4] = [
        Repr::TwosComplement,
        Repr::SignMagnitude,
        Repr::Csd,
        Repr::Spt,
    ];
}

impl fmt::Display for Repr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Repr::TwosComplement => "two's complement",
            Repr::SignMagnitude => "sign-magnitude",
            Repr::Csd => "CSD",
            Repr::Spt => "SPT",
        };
        write!(f, "{s}")
    }
}

/// Number of nonzero digits of `v` under representation `repr`.
///
/// This is the edge-weight metric of the MRPF coefficient graph: an edge
/// colored by differential coefficient `ξ` costs `nonzero_digits(ξ, repr)`
/// adder arrays.
///
/// # Examples
///
/// ```
/// use mrp_numrep::{nonzero_digits, Repr};
/// assert_eq!(nonzero_digits(0, Repr::Spt), 0);
/// assert_eq!(nonzero_digits(-96, Repr::Spt), 2); // -(64 + 32)
/// ```
pub fn nonzero_digits(v: i64, repr: Repr) -> u32 {
    match repr {
        Repr::TwosComplement | Repr::SignMagnitude => binary_digits(v).nonzero_count(),
        Repr::Csd | Repr::Spt => csd(v).nonzero_count(),
    }
}

/// Number of two-input adders needed to multiply a variable by the constant
/// `v` under representation `repr`: one less than the nonzero-digit count
/// (zero for `v ∈ {0, ±2^k}`, which are free wiring).
///
/// # Examples
///
/// ```
/// use mrp_numrep::{adder_cost, Repr};
/// assert_eq!(adder_cost(0, Repr::Spt), 0);
/// assert_eq!(adder_cost(8, Repr::Spt), 0);   // pure shift
/// assert_eq!(adder_cost(7, Repr::Spt), 1);   // 8 - 1
/// assert_eq!(adder_cost(7, Repr::TwosComplement), 2); // 4 + 2 + 1
/// ```
pub fn adder_cost(v: i64, repr: Repr) -> u32 {
    nonzero_digits(v, repr).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spt_equals_csd_weight() {
        for v in -300..300 {
            assert_eq!(nonzero_digits(v, Repr::Spt), nonzero_digits(v, Repr::Csd));
        }
    }

    #[test]
    fn sm_equals_binary_weight() {
        for v in -300..300 {
            assert_eq!(
                nonzero_digits(v, Repr::SignMagnitude),
                nonzero_digits(v, Repr::TwosComplement)
            );
        }
    }

    #[test]
    fn powers_of_two_are_free() {
        for k in 0..40 {
            assert_eq!(adder_cost(1 << k, Repr::Spt), 0);
            assert_eq!(adder_cost(-(1i64 << k), Repr::Spt), 0);
            assert_eq!(adder_cost(1 << k, Repr::TwosComplement), 0);
        }
    }

    #[test]
    fn zero_is_free() {
        for r in Repr::ALL {
            assert_eq!(adder_cost(0, r), 0);
            assert_eq!(nonzero_digits(0, r), 0);
        }
    }

    #[test]
    fn csd_cost_never_exceeds_binary() {
        for v in 0..5000 {
            assert!(adder_cost(v, Repr::Csd) <= adder_cost(v, Repr::TwosComplement));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Repr::Spt.to_string(), "SPT");
        assert_eq!(Repr::Csd.to_string(), "CSD");
    }
}
