//! Digit-budget (SPT-constrained) coefficient quantization.
//!
//! Classic multiplierless design practice (the paper's ref [11] lineage):
//! instead of rounding each tap to the nearest `W`-bit integer, round it to
//! the nearest value representable with at most `max_digits` signed
//! power-of-two terms. The multiplier block cost is then bounded *a
//! priori* — at most `max_digits − 1` adders per tap before any sharing —
//! at a controlled accuracy cost.

use crate::scaling::{QuantizeError, QuantizedCoeffs, Scaling};

/// Rounds integer `v` to the nearest value whose CSD weight is at most
/// `max_digits`, by greedily keeping the most significant signed digits.
///
/// Greedy truncation of the CSD expansion is within half of the last kept
/// digit of the true nearest — tight enough for coefficient work and
/// always representable.
///
/// # Examples
///
/// ```
/// use mrp_numrep::{round_to_spt, msd_weight};
/// let r = round_to_spt(1227, 2); // 10011001011b
/// assert!(msd_weight(r) <= 2);
/// assert!((r - 1227).abs() <= 64);
/// assert_eq!(round_to_spt(96, 4), 96); // already representable
/// ```
///
/// # Panics
///
/// Panics if `max_digits == 0` or `|v| > 2^48`.
pub fn round_to_spt(v: i64, max_digits: u32) -> i64 {
    assert!(max_digits > 0, "max_digits must be positive");
    assert!(
        v != i64::MIN && v.unsigned_abs() <= 1 << 48,
        "value out of supported range"
    );
    let mut remaining = v;
    let mut acc = 0i64;
    for _ in 0..max_digits {
        if remaining == 0 {
            break;
        }
        // Largest signed power of two not overshooting by more than half.
        let mag = remaining.unsigned_abs();
        let bit = 63 - mag.leading_zeros();
        let low = 1i64 << bit;
        let high = low << 1;
        // Pick the closer of 2^bit and 2^(bit+1).
        let term = if (high - mag as i64).abs() < (mag as i64 - low).abs() {
            high
        } else {
            low
        };
        let signed = if remaining < 0 { -term } else { term };
        acc += signed;
        remaining -= signed;
    }
    acc
}

/// Quantizes real coefficients under a *digit budget*: first uniform
/// scaling to `wordlength` bits, then each tap rounded to at most
/// `max_digits` signed power-of-two terms.
///
/// # Errors
///
/// Propagates [`QuantizeError`] from the underlying uniform quantization;
/// rejects `max_digits == 0` as [`QuantizeError::BadWordlength`].
///
/// # Examples
///
/// ```
/// use mrp_numrep::{msd_weight, quantize_spt_limited};
///
/// let taps = [0.9, 0.43, -0.317, 0.051];
/// let q = quantize_spt_limited(&taps, 12, 3)?;
/// for &v in &q.values {
///     assert!(msd_weight(v) <= 3);
/// }
/// # Ok::<(), mrp_numrep::QuantizeError>(())
/// ```
pub fn quantize_spt_limited(
    coeffs: &[f64],
    wordlength: u32,
    max_digits: u32,
) -> Result<QuantizedCoeffs, QuantizeError> {
    if max_digits == 0 {
        return Err(QuantizeError::BadWordlength(0));
    }
    let mut q = crate::scaling::quantize(coeffs, wordlength, Scaling::Uniform)?;
    for v in &mut q.values {
        *v = round_to_spt(*v, max_digits);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits::msd_weight;

    #[test]
    fn weight_bound_holds() {
        for v in -3000..3000i64 {
            for d in 1..5 {
                assert!(
                    msd_weight(round_to_spt(v, d)) <= d,
                    "round_to_spt({v}, {d}) too heavy"
                );
            }
        }
    }

    #[test]
    fn representable_values_pass_through() {
        for v in [-96i64, 0, 1, 7, 45, 80, 1024] {
            let w = msd_weight(v);
            if w > 0 {
                assert_eq!(round_to_spt(v, w), v, "{v} should be exact at weight {w}");
            }
        }
        assert_eq!(round_to_spt(0, 3), 0);
    }

    #[test]
    fn error_shrinks_with_budget() {
        let v = 1_000_003i64;
        let mut prev_err = i64::MAX;
        for d in 1..8 {
            let err = (round_to_spt(v, d) - v).abs();
            assert!(err <= prev_err, "error grew at budget {d}");
            prev_err = err;
        }
        assert_eq!(prev_err, 0); // weight(1000003) <= 7? if not, near zero
    }

    #[test]
    fn quantize_limited_bounds_every_tap() {
        let taps: Vec<f64> = (0..33).map(|i| ((i as f64) * 0.7).sin() * 0.8).collect();
        let q = quantize_spt_limited(&taps, 14, 2).unwrap();
        for &v in &q.values {
            assert!(msd_weight(v) <= 2);
        }
        // Accuracy degrades vs unconstrained quantization but stays sane.
        assert!(q.max_error(&taps) < 0.05);
    }

    #[test]
    fn rejects_zero_budget() {
        assert!(quantize_spt_limited(&[0.5], 10, 0).is_err());
    }

    #[test]
    fn rounding_error_bounded_by_last_digit() {
        for v in 1..5000i64 {
            let r = round_to_spt(v, 2);
            // With two digits the residual is below half the second digit's
            // weight — conservatively, a quarter of the leading power.
            let lead = 1i64 << (63 - v.unsigned_abs().leading_zeros());
            assert!(
                (r - v).abs() <= lead / 4 + 1,
                "round_to_spt({v}, 2) = {r}, lead {lead}"
            );
        }
    }
}
