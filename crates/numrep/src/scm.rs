//! Exact single-constant-multiplication (SCM) cost for small adder counts.
//!
//! Digit recoding (CSD chains) is not adder-optimal: `45 = 5 · 9 =
//! (4x + x) + 8·(4x + x)` costs two adders although CSD weight 4 implies
//! three. Every two-adder constant has one of exactly two topologies —
//! the second adder consumes either the first adder's output twice
//! (*multiplicative*, `c = a · b` with both factors of weight ≤ 2) or the
//! first adder's output and the input (*additive*, `c = ±a·2^i ± 2^j`) —
//! so cost ≤ 2 is decidable by divisor search plus a shift sweep. This
//! module provides the exact classifier and a constructive plan that
//! `mrp-arch` turns into adders.

use crate::digits::csd;
use crate::oddpart::{is_power_of_two_or_zero, odd_part};

/// Source operand of an [`ScmStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScmSrc {
    /// The multiplier input `x`.
    Input,
    /// The previous step's output.
    Prev,
}

/// One shift-add step of an SCM plan: `(±lhs << lshift) + (±rhs << rshift)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScmStep {
    /// Left operand source.
    pub lhs: ScmSrc,
    /// Left operand shift.
    pub lhs_shift: u32,
    /// Left operand negation.
    pub lhs_negate: bool,
    /// Right operand source.
    pub rhs: ScmSrc,
    /// Right operand shift.
    pub rhs_shift: u32,
    /// Right operand negation.
    pub rhs_negate: bool,
}

impl ScmStep {
    /// Evaluates the step given the input value and the previous step's
    /// value.
    pub fn eval(&self, input: i64, prev: i64) -> i64 {
        let side = |src: ScmSrc, shift: u32, neg: bool| {
            let base = match src {
                ScmSrc::Input => input,
                ScmSrc::Prev => prev,
            };
            let v = base << shift;
            if neg {
                -v
            } else {
                v
            }
        };
        side(self.lhs, self.lhs_shift, self.lhs_negate)
            + side(self.rhs, self.rhs_shift, self.rhs_negate)
    }
}

/// Builds the single weight-2 step for an odd `a = 2^p ± 2^q` (as found in
/// its CSD terms). Returns `None` when `a`'s weight is not 2.
fn weight2_step(a: i64) -> Option<ScmStep> {
    let terms = csd(a).terms();
    if terms.len() != 2 {
        return None;
    }
    Some(ScmStep {
        lhs: ScmSrc::Input,
        lhs_shift: terms[0].0,
        lhs_negate: terms[0].1 < 0,
        rhs: ScmSrc::Input,
        rhs_shift: terms[1].0,
        rhs_negate: terms[1].1 < 0,
    })
}

/// A two-adder plan for an odd constant: step 0 builds an intermediate
/// from the input; step 1 combines per its sources. Returned by
/// [`scm2_plan`]; execute with [`ScmStep::eval`] or via
/// `mrp_arch::AdderGraph`.
pub type Scm2Plan = [ScmStep; 2];

/// Finds a two-adder realization of the *odd positive* constant `c`, if
/// one exists, searching shifts up to `max_shift`.
///
/// Returns `None` when `c` is trivial (1), weight 2 (one adder suffices),
/// or genuinely needs three or more adders within the shift bound.
///
/// # Panics
///
/// Panics if `c` is not positive and odd, or `max_shift > 40`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::{scm2_plan, msd_weight};
///
/// // 45 has CSD weight 4 (3 adders by recoding) but factors as 5 * 9.
/// assert_eq!(msd_weight(45), 4);
/// let plan = scm2_plan(45, 8).expect("45 is a two-adder constant");
/// let a = plan[0].eval(1, 0);
/// assert_eq!(plan[1].eval(1, a), 45);
/// ```
pub fn scm2_plan(c: i64, max_shift: u32) -> Option<Scm2Plan> {
    assert!(
        c > 0 && c % 2 == 1,
        "scm2_plan needs a positive odd constant"
    );
    assert!(max_shift <= 40, "max_shift too large");
    if csd(c).nonzero_count() <= 2 {
        return None; // zero- or one-adder constant
    }
    // Multiplicative topology: c = a * b, both weight <= 2, a odd.
    let mut d = 3i64;
    while d * d <= c {
        if c % d == 0 && csd(d).nonzero_count() == 2 {
            {
                let b = c / d;
                let bt = csd(b).terms();
                if bt.len() == 2 {
                    let step0 = weight2_step(d).expect("weight checked");
                    let step1 = ScmStep {
                        lhs: ScmSrc::Prev,
                        lhs_shift: bt[0].0,
                        lhs_negate: bt[0].1 < 0,
                        rhs: ScmSrc::Prev,
                        rhs_shift: bt[1].0,
                        rhs_negate: bt[1].1 < 0,
                    };
                    debug_assert_eq!(step1.eval(1, d), c);
                    return Some([step0, step1]);
                }
            }
        }
        d += 2;
    }
    // Additive topology: c = s_a * (a << i) + s_j * 2^j, weight(a) == 2.
    for j in 0..=max_shift {
        for sj in [1i64, -1] {
            let Some(r) = c.checked_sub(sj * (1i64 << j)) else {
                continue;
            };
            if r == 0 {
                continue;
            }
            let p = odd_part(r);
            if csd(p.odd).nonzero_count() == 2 {
                let step0 = weight2_step(p.odd).expect("weight checked");
                let step1 = ScmStep {
                    lhs: ScmSrc::Prev,
                    lhs_shift: p.shift,
                    lhs_negate: p.negative,
                    rhs: ScmSrc::Input,
                    rhs_shift: j,
                    rhs_negate: sj < 0,
                };
                debug_assert_eq!(step1.eval(1, p.odd), c);
                return Some([step0, step1]);
            }
        }
    }
    None
}

/// Exact SCM adder cost for costs 0-2; `3` means "three or more" (within
/// the shift bound used by [`scm2_plan`]).
///
/// # Examples
///
/// ```
/// use mrp_numrep::optimal_scm_cost;
/// assert_eq!(optimal_scm_cost(0, 12), 0);
/// assert_eq!(optimal_scm_cost(-64, 12), 0);
/// assert_eq!(optimal_scm_cost(7, 12), 1);
/// assert_eq!(optimal_scm_cost(45, 12), 2);   // 5 * 9
/// assert_eq!(optimal_scm_cost(683, 12), 3);  // needs >= 3 adders
/// ```
///
/// # Panics
///
/// Panics if `c == i64::MIN` or `|c| > 2^48`.
pub fn optimal_scm_cost(c: i64, max_shift: u32) -> u32 {
    assert!(
        c != i64::MIN && c.unsigned_abs() <= 1 << 48,
        "constant out of supported range"
    );
    if is_power_of_two_or_zero(c) {
        return 0;
    }
    let odd = odd_part(c).odd;
    if csd(odd).nonzero_count() == 2 {
        return 1;
    }
    if scm2_plan(odd, max_shift).is_some() {
        2
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{adder_cost, Repr};

    #[test]
    fn classic_multiplicative_constants() {
        // Products of two weight-2 factors.
        for (c, factors) in [
            (45i64, (5, 9)),
            (105, (15, 7)),
            (25, (5, 5)),
            (153, (17, 9)),
        ] {
            assert_eq!(optimal_scm_cost(c, 12), 2, "{c} = {factors:?}");
            let plan = scm2_plan(c, 12).unwrap();
            let a = plan[0].eval(1, 0);
            assert_eq!(plan[1].eval(1, a), c);
        }
    }

    #[test]
    fn additive_constants() {
        // 23 = 3*8 - 1 (a = 3, i = 3, j = 0, minus).
        assert_eq!(optimal_scm_cost(23, 12), 2);
        let plan = scm2_plan(23, 12).unwrap();
        let a = plan[0].eval(1, 0);
        assert_eq!(plan[1].eval(1, a), 23);
    }

    #[test]
    fn oracle_never_exceeds_csd_cost() {
        for c in 1..4096i64 {
            let oracle = optimal_scm_cost(c, 14);
            let csd_cost = adder_cost(c, Repr::Csd);
            if csd_cost <= 2 {
                assert_eq!(oracle, csd_cost, "exact regime mismatch for {c}");
            } else {
                assert!(oracle <= 3);
                assert!(oracle >= 2, "weight>2 value {c} classified as cost<2");
            }
        }
    }

    #[test]
    fn plans_always_evaluate_correctly() {
        for c in (3..4096i64).step_by(2) {
            if let Some(plan) = scm2_plan(c, 14) {
                let a = plan[0].eval(1, 0);
                assert_eq!(plan[1].eval(1, a), c, "bad plan for {c}");
                // Scales linearly with the input.
                let a7 = plan[0].eval(7, 0);
                assert_eq!(plan[1].eval(7, a7), 7 * c);
            }
        }
    }

    #[test]
    fn trivial_and_single_costs() {
        assert_eq!(optimal_scm_cost(1, 8), 0);
        assert_eq!(optimal_scm_cost(-2, 8), 0);
        assert_eq!(optimal_scm_cost(3, 8), 1);
        assert_eq!(optimal_scm_cost(-96, 8), 1); // odd part 3
    }

    #[test]
    fn known_cost3_values() {
        // 683 = 1010101011b; no weight-2 factorization or offset.
        assert_eq!(optimal_scm_cost(683, 16), 3);
    }

    #[test]
    fn cost2_plans_found_below_csd_cost() {
        // Dozens of weight-4 values below 2^11 drop to two adders (45,
        // 105, 153, …); the exact count is small — cost-2 reachability is
        // O(shifts³) — but must be present and strictly better than CSD.
        let mut improved = 0;
        for c in (3..2048i64).step_by(2) {
            if adder_cost(c, Repr::Csd) >= 3 && optimal_scm_cost(c, 12) == 2 {
                improved += 1;
            }
        }
        assert!(
            improved >= 30,
            "only {improved} weight>=4 values found cost-2 plans"
        );
    }

    #[test]
    #[should_panic(expected = "positive odd")]
    fn plan_rejects_even_input() {
        scm2_plan(6, 8);
    }
}
