//! Signed-digit vectors and recodings (binary, CSD).
//!
//! Digit vectors are stored least-significant digit first, which keeps shift
//! arithmetic (`value * 2^k`) a simple prefix of zeros and makes pattern
//! matching in common-subexpression elimination straightforward.

use std::fmt;

/// One digit of a radix-2 signed-digit number: `-1`, `0`, or `+1`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::SignedDigit;
/// assert_eq!(SignedDigit::Minus.value(), -1);
/// assert_eq!(SignedDigit::try_from(1i8)?, SignedDigit::Plus);
/// # Ok::<(), mrp_numrep::ParseDigitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SignedDigit {
    /// Digit value `-1`, usually printed as `-` or `N`.
    Minus,
    /// Digit value `0`.
    #[default]
    Zero,
    /// Digit value `+1`.
    Plus,
}

impl SignedDigit {
    /// Numeric value of the digit (`-1`, `0`, or `+1`).
    pub fn value(self) -> i64 {
        match self {
            SignedDigit::Minus => -1,
            SignedDigit::Zero => 0,
            SignedDigit::Plus => 1,
        }
    }

    /// Returns `true` for [`SignedDigit::Plus`] and [`SignedDigit::Minus`].
    pub fn is_nonzero(self) -> bool {
        self != SignedDigit::Zero
    }
}

/// Error returned when converting an out-of-range integer to a
/// [`SignedDigit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigitError(pub i8);

impl fmt::Display for ParseDigitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a signed digit (-1, 0, or 1)", self.0)
    }
}

impl std::error::Error for ParseDigitError {}

impl TryFrom<i8> for SignedDigit {
    type Error = ParseDigitError;

    fn try_from(v: i8) -> Result<Self, ParseDigitError> {
        match v {
            -1 => Ok(SignedDigit::Minus),
            0 => Ok(SignedDigit::Zero),
            1 => Ok(SignedDigit::Plus),
            other => Err(ParseDigitError(other)),
        }
    }
}

impl fmt::Display for SignedDigit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignedDigit::Minus => write!(f, "-"),
            SignedDigit::Zero => write!(f, "0"),
            SignedDigit::Plus => write!(f, "1"),
        }
    }
}

/// An LSB-first vector of signed digits representing an integer.
///
/// `value = Σ digits[k] · 2^k`. Trailing (most-significant) zeros are
/// permitted but [`DigitVec::trimmed`] removes them so equal values compare
/// equal after trimming.
///
/// # Examples
///
/// ```
/// use mrp_numrep::csd;
///
/// let d = csd(23); // 23 = 32 - 8 - 1
/// assert_eq!(d.value(), 23);
/// assert_eq!(d.nonzero_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DigitVec {
    digits: Vec<SignedDigit>,
}

impl DigitVec {
    /// Creates a digit vector from raw LSB-first digits.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_numrep::{DigitVec, SignedDigit};
    /// let d = DigitVec::new(vec![SignedDigit::Plus, SignedDigit::Plus]);
    /// assert_eq!(d.value(), 3);
    /// ```
    pub fn new(digits: Vec<SignedDigit>) -> Self {
        DigitVec { digits }
    }

    /// The integer this digit vector denotes.
    ///
    /// # Panics
    ///
    /// Panics if the denoted value does not fit in `i64`.
    pub fn value(&self) -> i64 {
        let v: i128 = self
            .digits
            .iter()
            .enumerate()
            .map(|(k, d)| (d.value() as i128) << k)
            .sum();
        i64::try_from(v).expect("digit vector value overflows i64")
    }

    /// Number of nonzero digits (the "weight"); one less than this many
    /// adders implement a multiplication by the value.
    pub fn nonzero_count(&self) -> u32 {
        self.digits.iter().filter(|d| d.is_nonzero()).count() as u32
    }

    /// Number of digit positions held (including leading zeros).
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// Returns `true` if no digit positions are held.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Borrow the LSB-first digits.
    pub fn digits(&self) -> &[SignedDigit] {
        &self.digits
    }

    /// Positions (shift amounts) and signs of the nonzero digits,
    /// LSB-first. Each entry `(k, s)` contributes `s * 2^k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_numrep::csd;
    /// assert_eq!(csd(7).terms(), vec![(0, -1), (3, 1)]); // 7 = -1 + 8
    /// ```
    pub fn terms(&self) -> Vec<(u32, i64)> {
        self.digits
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_nonzero())
            .map(|(k, d)| (k as u32, d.value()))
            .collect()
    }

    /// Copy with most-significant zero digits removed.
    pub fn trimmed(&self) -> Self {
        let mut digits = self.digits.clone();
        while digits.last() == Some(&SignedDigit::Zero) {
            digits.pop();
        }
        DigitVec { digits }
    }

    /// Returns `true` when no two adjacent digits are both nonzero — the
    /// defining property of the canonical signed-digit form.
    pub fn is_csd(&self) -> bool {
        self.digits
            .windows(2)
            .all(|w| !(w[0].is_nonzero() && w[1].is_nonzero()))
    }
}

impl fmt::Display for DigitVec {
    /// Prints MSB-first, e.g. `10-1` for 7 (= 8 - 1).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.trimmed();
        if t.digits.is_empty() {
            return write!(f, "0");
        }
        for d in t.digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl FromIterator<SignedDigit> for DigitVec {
    fn from_iter<I: IntoIterator<Item = SignedDigit>>(iter: I) -> Self {
        DigitVec {
            digits: iter.into_iter().collect(),
        }
    }
}

impl Extend<SignedDigit> for DigitVec {
    fn extend<I: IntoIterator<Item = SignedDigit>>(&mut self, iter: I) {
        self.digits.extend(iter);
    }
}

/// Plain (sign-magnitude) binary digits of `v`: the bits of `|v|`, each
/// carrying the sign of `v`.
///
/// For a negative input every nonzero digit is [`SignedDigit::Minus`] so the
/// vector still denotes `v` exactly.
///
/// # Examples
///
/// ```
/// use mrp_numrep::binary_digits;
/// assert_eq!(binary_digits(6).value(), 6);
/// assert_eq!(binary_digits(-6).value(), -6);
/// assert_eq!(binary_digits(-6).nonzero_count(), 2);
/// ```
pub fn binary_digits(v: i64) -> DigitVec {
    let sign = if v < 0 {
        SignedDigit::Minus
    } else {
        SignedDigit::Plus
    };
    let mut m = v.unsigned_abs();
    let mut digits = Vec::new();
    while m != 0 {
        digits.push(if m & 1 == 1 { sign } else { SignedDigit::Zero });
        m >>= 1;
    }
    DigitVec { digits }
}

/// Canonical signed-digit (CSD) recoding of `v`.
///
/// The CSD form is the unique minimal-weight signed-digit representation in
/// which no two adjacent digits are both nonzero. Its weight equals the
/// minimal signed-powers-of-two (SPT) term count, so SPT costs in the MRPF
/// paper are computed from this recoding.
///
/// # Examples
///
/// ```
/// use mrp_numrep::csd;
/// let d = csd(-7); // -7 = -8 + 1
/// assert_eq!(d.value(), -7);
/// assert_eq!(d.nonzero_count(), 2);
/// assert!(d.is_csd());
/// ```
///
/// # Panics
///
/// Panics if `|v| > 2^62`: the recoding of larger magnitudes can require a
/// `±2^63` digit, which [`DigitVec::value`] could not round-trip.
pub fn csd(v: i64) -> DigitVec {
    assert!(
        v != i64::MIN && v.unsigned_abs() <= 1 << 62,
        "|v| must be at most 2^62 for an i64-round-trippable CSD recoding"
    );
    let negative = v < 0;
    let mut m = v.unsigned_abs();
    let mut digits = Vec::new();
    // Classic nonzero-run recoding: while scanning LSB->MSB, a digit is
    // nonzero iff the current bit differs from a "carry-adjusted" view; we
    // use the identity csd digit_k = bits of (3m) XOR m restricted to
    // non-overlapping runs. The loop below implements the standard
    // carry-propagation formulation.
    let mut carry = 0u64;
    let mut k = 0;
    while m != 0 || carry != 0 {
        let bit = (m & 1) + carry;
        let next_bit = (m >> 1) & 1;
        let digit = match bit {
            0 => {
                carry = 0;
                SignedDigit::Zero
            }
            1 => {
                if next_bit == 1 {
                    // Start of a run of ones: emit -1 and carry into the run.
                    carry = 1;
                    SignedDigit::Minus
                } else {
                    carry = 0;
                    SignedDigit::Plus
                }
            }
            2 => {
                carry = 1;
                SignedDigit::Zero
            }
            _ => unreachable!("bit + carry is at most 2"),
        };
        digits.push(digit);
        m >>= 1;
        k += 1;
        debug_assert!(k <= 66, "CSD recoding must terminate");
    }
    if negative {
        for d in &mut digits {
            *d = match *d {
                SignedDigit::Minus => SignedDigit::Plus,
                SignedDigit::Zero => SignedDigit::Zero,
                SignedDigit::Plus => SignedDigit::Minus,
            };
        }
    }
    DigitVec { digits }
}

/// Minimal signed-digit weight of `v`: the number of signed-power-of-two
/// terms in an optimal SPT expansion. Equal to `csd(v).nonzero_count()`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::msd_weight;
/// assert_eq!(msd_weight(0), 0);
/// assert_eq!(msd_weight(255), 2); // 256 - 1
/// ```
pub fn msd_weight(v: i64) -> u32 {
    csd(v).nonzero_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive minimal SPT weight by dynamic programming, used as an
    /// oracle for the CSD recoder on small values.
    fn brute_min_weight(v: i64) -> u32 {
        // BFS over reachable sums with increasing term count.
        if v == 0 {
            return 0;
        }
        let target = v;
        let mut frontier = vec![0i64];
        let mut seen = std::collections::HashSet::new();
        seen.insert(0i64);
        for weight in 1..=8u32 {
            let mut next = Vec::new();
            for &s in &frontier {
                for l in 0..16 {
                    for sign in [1i64, -1] {
                        let t = s + sign * (1i64 << l);
                        if t == target {
                            return weight;
                        }
                        if t.abs() <= 1 << 17 && seen.insert(t) {
                            next.push(t);
                        }
                    }
                }
            }
            frontier = next;
        }
        panic!("no SPT expansion of {v} with weight <= 8");
    }

    #[test]
    fn csd_round_trips_small_values() {
        for v in -1025..=1025 {
            assert_eq!(csd(v).value(), v, "csd value mismatch for {v}");
        }
    }

    #[test]
    fn csd_has_no_adjacent_nonzeros() {
        for v in -1025..=1025 {
            assert!(csd(v).is_csd(), "adjacent nonzeros in csd({v})");
        }
    }

    #[test]
    fn csd_weight_is_minimal() {
        for v in 1..=512 {
            assert_eq!(
                csd(v).nonzero_count(),
                brute_min_weight(v),
                "csd({v}) weight is not minimal"
            );
        }
    }

    #[test]
    fn csd_weight_symmetric_in_sign() {
        for v in 1..2000 {
            assert_eq!(csd(v).nonzero_count(), csd(-v).nonzero_count());
        }
    }

    #[test]
    fn binary_round_trips() {
        for v in -2000..=2000 {
            assert_eq!(binary_digits(v).value(), v);
        }
    }

    #[test]
    fn binary_weight_is_popcount() {
        for v in 0..4096i64 {
            assert_eq!(binary_digits(v).nonzero_count(), v.count_ones());
        }
    }

    #[test]
    fn zero_is_empty() {
        assert_eq!(csd(0).nonzero_count(), 0);
        assert_eq!(csd(0).value(), 0);
        assert_eq!(binary_digits(0).len(), 0);
        assert_eq!(format!("{}", csd(0)), "0");
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(format!("{}", csd(7)), "100-");
        assert_eq!(format!("{}", binary_digits(5)), "101");
    }

    #[test]
    fn terms_reconstruct_value() {
        for v in [-100, -7, -1, 1, 3, 23, 67, 255, 1023] {
            let sum: i64 = csd(v).terms().iter().map(|&(k, s)| s << k).sum();
            assert_eq!(sum, v);
        }
    }

    #[test]
    fn trimmed_preserves_value() {
        let mut d = csd(12);
        d.extend([SignedDigit::Zero, SignedDigit::Zero]);
        assert_eq!(d.trimmed().value(), 12);
        assert!(d.trimmed().len() < d.len());
    }

    #[test]
    fn csd_large_values() {
        for v in [(1 << 62) - 1, -(1 << 62), (1 << 61) + 12345, 1 << 62] {
            assert_eq!(csd(v).value(), v);
            assert!(csd(v).is_csd());
        }
    }

    #[test]
    #[should_panic(expected = "2^62")]
    fn csd_rejects_oversized_input() {
        let _ = csd(i64::MAX);
    }

    #[test]
    fn csd_never_heavier_than_binary() {
        for v in 0..4096i64 {
            assert!(csd(v).nonzero_count() <= binary_digits(v).nonzero_count());
        }
    }

    #[test]
    fn signed_digit_try_from() {
        assert_eq!(SignedDigit::try_from(-1i8).unwrap(), SignedDigit::Minus);
        assert_eq!(SignedDigit::try_from(0i8).unwrap(), SignedDigit::Zero);
        assert_eq!(SignedDigit::try_from(1i8).unwrap(), SignedDigit::Plus);
        assert!(SignedDigit::try_from(2i8).is_err());
    }
}
