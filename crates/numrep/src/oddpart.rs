//! Odd-part factorization of coefficients.
//!
//! Two coefficients whose magnitudes share an odd part differ only by a
//! power-of-two shift, which costs nothing in hardware. The MRP algorithm
//! (Step 2) therefore groups coefficients by odd part, keeps the smallest
//! member as the *primary* coefficient, and treats the rest as free
//! *secondary* coefficients. The same equivalence defines *color classes*
//! of SID coefficients.

/// Result of factoring `v = sign · odd · 2^shift`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::odd_part;
/// let p = odd_part(-96);
/// assert_eq!((p.odd, p.shift, p.negative), (3, 5, true));
/// assert_eq!(p.reassemble(), -96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OddPart {
    /// The positive odd factor (`0` only when the input was `0`).
    pub odd: i64,
    /// The power-of-two exponent stripped from the magnitude.
    pub shift: u32,
    /// Whether the original value was negative.
    pub negative: bool,
}

impl OddPart {
    /// Reconstructs the original value.
    pub fn reassemble(&self) -> i64 {
        let m = self.odd << self.shift;
        if self.negative {
            -m
        } else {
            m
        }
    }
}

/// Factor `v` into sign, odd part, and power-of-two shift.
///
/// `odd_part(0)` returns `odd = 0, shift = 0, negative = false`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::odd_part;
/// assert_eq!(odd_part(12).odd, 3);
/// assert_eq!(odd_part(12).shift, 2);
/// assert_eq!(odd_part(7).shift, 0);
/// ```
///
/// # Panics
///
/// Panics if `v == i64::MIN`.
pub fn odd_part(v: i64) -> OddPart {
    assert!(v != i64::MIN, "i64::MIN has no representable magnitude");
    if v == 0 {
        return OddPart {
            odd: 0,
            shift: 0,
            negative: false,
        };
    }
    let negative = v < 0;
    let m = v.unsigned_abs();
    let shift = m.trailing_zeros();
    OddPart {
        odd: (m >> shift) as i64,
        shift,
        negative,
    }
}

/// Returns `true` when `|v|` is zero or a power of two, i.e. multiplying by
/// `v` requires no adders at all.
///
/// # Examples
///
/// ```
/// use mrp_numrep::is_power_of_two_or_zero;
/// assert!(is_power_of_two_or_zero(0));
/// assert!(is_power_of_two_or_zero(-16));
/// assert!(!is_power_of_two_or_zero(48));
/// ```
pub fn is_power_of_two_or_zero(v: i64) -> bool {
    v == 0 || (v != i64::MIN && v.unsigned_abs().is_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for v in -4096..=4096 {
            assert_eq!(odd_part(v).reassemble(), v);
        }
    }

    #[test]
    fn odd_is_odd() {
        for v in 1..4096 {
            assert_eq!(odd_part(v).odd % 2, 1);
        }
    }

    #[test]
    fn shift_classes() {
        // 3, 6, 12, 24 share odd part 3.
        for v in [3i64, 6, 12, 24, -3, -48] {
            assert_eq!(odd_part(v).odd, 3);
        }
    }

    #[test]
    fn zero_case() {
        let p = odd_part(0);
        assert_eq!(p.odd, 0);
        assert_eq!(p.reassemble(), 0);
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two_or_zero(1));
        assert!(is_power_of_two_or_zero(1 << 40));
        assert!(!is_power_of_two_or_zero(3));
        assert!(!is_power_of_two_or_zero(-12));
        assert!(is_power_of_two_or_zero(-4));
    }
}
