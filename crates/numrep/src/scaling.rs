//! Coefficient quantization under uniform and maximal scaling.
//!
//! The MRPF evaluation compares two ways of turning real filter taps into
//! `W`-bit integers:
//!
//! * **Uniform scaling** — all taps share one scale factor: the largest tap
//!   maps to full scale and small taps keep only a few significant bits.
//!   Coefficients are sparse in nonzero digits, so multiplier blocks are
//!   cheap, at the price of quantization noise on small taps.
//! * **Maximal scaling** — every tap is individually normalized so that its
//!   `W`-bit mantissa uses all `W` significant bits, with a per-tap
//!   power-of-two exponent (free wiring in hardware). Precision is maximal
//!   and so is digit density, which is why the paper reports markedly higher
//!   complexity for maximally scaled coefficients.

use std::fmt;

/// Scaling policy for coefficient quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scaling {
    /// One shared scale factor; taps keep their natural relative magnitude.
    #[default]
    Uniform,
    /// Per-tap normalization to a full `W`-bit mantissa plus a free
    /// power-of-two exponent.
    Maximal,
}

impl fmt::Display for Scaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scaling::Uniform => write!(f, "uniform"),
            Scaling::Maximal => write!(f, "maximal"),
        }
    }
}

/// Error cases of [`quantize`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizeError {
    /// The coefficient slice was empty.
    Empty,
    /// Every coefficient was exactly zero, so no scale factor exists.
    AllZero,
    /// Wordlength outside the supported `1..=31` range.
    BadWordlength(u32),
    /// A coefficient was not finite.
    NotFinite(usize),
}

impl fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantizeError::Empty => write!(f, "no coefficients to quantize"),
            QuantizeError::AllZero => write!(f, "all coefficients are zero"),
            QuantizeError::BadWordlength(w) => {
                write!(f, "wordlength {w} is outside the supported range 1..=31")
            }
            QuantizeError::NotFinite(i) => write!(f, "coefficient {i} is not finite"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Integer coefficients produced by [`quantize`], with enough metadata to
/// reconstruct the real values they stand for.
///
/// The represented coefficient is
/// `values[i] as f64 * 2f64.powi(shifts[i]) * scale`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::{quantize, Scaling};
///
/// let q = quantize(&[0.5, -0.25, 0.125], 8, Scaling::Uniform)?;
/// assert_eq!(q.values.len(), 3);
/// let back = q.reconstruct();
/// assert!((back[0] - 0.5).abs() < 1e-2);
/// # Ok::<(), mrp_numrep::QuantizeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedCoeffs {
    /// Signed integer mantissas, one per tap.
    pub values: Vec<i64>,
    /// Per-tap binary exponent (always `-(W-1)` under uniform scaling).
    pub shifts: Vec<i32>,
    /// The wordlength `W` the mantissas fit in (including no sign bit;
    /// `|values[i]| < 2^W`).
    pub wordlength: u32,
    /// Which scaling policy produced these values.
    pub scaling: Scaling,
    /// Global scale factor (the largest input magnitude).
    pub scale: f64,
}

impl QuantizedCoeffs {
    /// Real coefficient values these integers stand for.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.values
            .iter()
            .zip(&self.shifts)
            .map(|(&v, &s)| v as f64 * 2f64.powi(s) * self.scale)
            .collect()
    }

    /// Largest absolute reconstruction error against `original`.
    ///
    /// # Panics
    ///
    /// Panics if `original.len() != self.values.len()`.
    pub fn max_error(&self, original: &[f64]) -> f64 {
        assert_eq!(original.len(), self.values.len(), "length mismatch");
        self.reconstruct()
            .iter()
            .zip(original)
            .map(|(r, o)| (r - o).abs())
            .fold(0.0, f64::max)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if there are no taps.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

fn validate(coeffs: &[f64], wordlength: u32) -> Result<f64, QuantizeError> {
    if coeffs.is_empty() {
        return Err(QuantizeError::Empty);
    }
    if wordlength == 0 || wordlength > 31 {
        return Err(QuantizeError::BadWordlength(wordlength));
    }
    if let Some(i) = coeffs.iter().position(|c| !c.is_finite()) {
        return Err(QuantizeError::NotFinite(i));
    }
    let max = coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    if max == 0.0 {
        return Err(QuantizeError::AllZero);
    }
    Ok(max)
}

/// Quantize real coefficients to `W`-bit integers under the given scaling
/// policy (Step 1 of the MRP algorithm normalizes by the largest
/// coefficient; both policies here do that first).
///
/// # Errors
///
/// Returns [`QuantizeError`] for an empty or all-zero slice, a non-finite
/// coefficient, or a wordlength outside `1..=31`.
///
/// # Examples
///
/// ```
/// use mrp_numrep::{quantize, Scaling};
///
/// let taps = [0.9, 0.04, -0.3];
/// let uni = quantize(&taps, 8, Scaling::Uniform)?;
/// let max = quantize(&taps, 8, Scaling::Maximal)?;
/// // Maximal scaling always reconstructs at least as accurately.
/// assert!(max.max_error(&taps) <= uni.max_error(&taps) + 1e-12);
/// # Ok::<(), mrp_numrep::QuantizeError>(())
/// ```
pub fn quantize(
    coeffs: &[f64],
    wordlength: u32,
    scaling: Scaling,
) -> Result<QuantizedCoeffs, QuantizeError> {
    let max = validate(coeffs, wordlength)?;
    match scaling {
        Scaling::Uniform => Ok(quantize_uniform_with_scale(coeffs, wordlength, max)),
        Scaling::Maximal => Ok(quantize_maximal(coeffs, wordlength, max)),
    }
}

/// Uniform quantization with an explicit full-scale reference `scale`
/// (normally the largest coefficient magnitude). Exposed separately so
/// callers can quantize several related coefficient sets against one common
/// scale.
///
/// # Panics
///
/// Panics if `scale <= 0`, `scale` is not finite, or `wordlength` is outside
/// `1..=31`.
pub fn quantize_uniform_with_scale(coeffs: &[f64], wordlength: u32, scale: f64) -> QuantizedCoeffs {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(
        (1..=31).contains(&wordlength),
        "wordlength must be in 1..=31"
    );
    let full = ((1i64 << (wordlength - 1)) - 1).max(1) as f64;
    let values: Vec<i64> = coeffs
        .iter()
        .map(|&c| (c / scale * full).round() as i64)
        .collect();
    let shift = -((wordlength as i32) - 1);
    // Represented value: v * 2^shift * scale ~ v/full * scale; the tiny
    // full-vs-2^(W-1) discrepancy is folded into the scale so that
    // reconstruct() is exact for full-scale inputs.
    let adjusted_scale = scale * (2f64.powi(-shift) / full);
    QuantizedCoeffs {
        shifts: vec![shift; coeffs.len()],
        values,
        wordlength,
        scaling: Scaling::Uniform,
        scale: adjusted_scale,
    }
}

fn quantize_maximal(coeffs: &[f64], wordlength: u32, scale: f64) -> QuantizedCoeffs {
    let w = wordlength;
    let lo = 1i64 << (w - 1); // smallest W-significant-bit magnitude
    let hi = 1i64 << w; // exclusive upper bound
    let mut values = Vec::with_capacity(coeffs.len());
    let mut shifts = Vec::with_capacity(coeffs.len());
    for &c in coeffs {
        if c == 0.0 {
            values.push(0);
            shifts.push(0);
            continue;
        }
        let v = c.abs() / scale; // in (0, 1]
                                 // Find e such that round(v * 2^e) lands in [2^(w-1), 2^w).
        let mut e = (w as i32 - 1) - v.log2().floor() as i32;
        let mut m = (v * 2f64.powi(e)).round() as i64;
        // Rounding can push us out of range on either side; renormalize.
        while m >= hi {
            e -= 1;
            m = (v * 2f64.powi(e)).round() as i64;
        }
        while m < lo {
            e += 1;
            m = (v * 2f64.powi(e)).round() as i64;
        }
        debug_assert!((lo..hi).contains(&m));
        values.push(if c < 0.0 { -m } else { m });
        shifts.push(-e);
    }
    QuantizedCoeffs {
        values,
        shifts,
        wordlength,
        scaling: Scaling::Maximal,
        scale,
    }
}

/// Convenience wrapper: reconstruct real values from raw parts, matching
/// [`QuantizedCoeffs::reconstruct`].
pub fn reconstruct(values: &[i64], shifts: &[i32], scale: f64) -> Vec<f64> {
    values
        .iter()
        .zip(shifts)
        .map(|(&v, &s)| v as f64 * 2f64.powi(s) * scale)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_taps() -> Vec<f64> {
        vec![0.9, -0.45, 0.2, 0.0123, -0.007, 0.0, 0.31]
    }

    #[test]
    fn uniform_full_scale_hits_max() {
        let q = quantize(&example_taps(), 12, Scaling::Uniform).unwrap();
        let max = q.values.iter().map(|v| v.abs()).max().unwrap();
        assert_eq!(max, (1 << 11) - 1);
    }

    #[test]
    fn uniform_values_fit_wordlength() {
        for w in [4, 8, 12, 16, 20] {
            let q = quantize(&example_taps(), w, Scaling::Uniform).unwrap();
            for &v in &q.values {
                assert!(v.abs() < 1 << w, "value {v} exceeds {w} bits");
            }
        }
    }

    #[test]
    fn maximal_mantissas_use_full_width() {
        for w in [4, 8, 12, 16, 20] {
            let q = quantize(&example_taps(), w, Scaling::Maximal).unwrap();
            for &v in &q.values {
                if v != 0 {
                    assert!(
                        (1i64 << (w - 1)..1i64 << w).contains(&v.abs()),
                        "mantissa {v} not full-width for W={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn maximal_more_accurate_than_uniform() {
        let taps = example_taps();
        for w in [6, 8, 10, 12] {
            let u = quantize(&taps, w, Scaling::Uniform).unwrap();
            let m = quantize(&taps, w, Scaling::Maximal).unwrap();
            assert!(
                m.max_error(&taps) <= u.max_error(&taps) + 1e-15,
                "maximal should not be less accurate (W={w})"
            );
        }
    }

    #[test]
    fn reconstruction_error_bounded_by_lsb() {
        let taps = example_taps();
        let w = 10;
        let u = quantize(&taps, w, Scaling::Uniform).unwrap();
        // Uniform LSB is max/full; allow half an LSB of rounding.
        let lsb = 0.9 / (((1i64 << (w - 1)) - 1) as f64);
        assert!(u.max_error(&taps) <= 0.5 * lsb + 1e-12);
    }

    #[test]
    fn zero_tap_stays_zero() {
        let q = quantize(&example_taps(), 8, Scaling::Maximal).unwrap();
        assert_eq!(q.values[5], 0);
        assert_eq!(q.reconstruct()[5], 0.0);
    }

    #[test]
    fn signs_preserved() {
        for scaling in [Scaling::Uniform, Scaling::Maximal] {
            let q = quantize(&example_taps(), 12, scaling).unwrap();
            for (&v, &c) in q.values.iter().zip(&example_taps()) {
                if c != 0.0 {
                    assert_eq!(v.signum() as f64, c.signum(), "{scaling}");
                }
            }
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            quantize(&[], 8, Scaling::Uniform).unwrap_err(),
            QuantizeError::Empty
        );
        assert_eq!(
            quantize(&[0.0, 0.0], 8, Scaling::Uniform).unwrap_err(),
            QuantizeError::AllZero
        );
        assert_eq!(
            quantize(&[0.5], 0, Scaling::Uniform).unwrap_err(),
            QuantizeError::BadWordlength(0)
        );
        assert_eq!(
            quantize(&[0.5], 32, Scaling::Maximal).unwrap_err(),
            QuantizeError::BadWordlength(32)
        );
        assert_eq!(
            quantize(&[f64::NAN], 8, Scaling::Uniform).unwrap_err(),
            QuantizeError::NotFinite(0)
        );
    }

    #[test]
    fn display_and_errors_format() {
        assert_eq!(Scaling::Uniform.to_string(), "uniform");
        assert_eq!(Scaling::Maximal.to_string(), "maximal");
        assert!(QuantizeError::AllZero.to_string().contains("zero"));
    }

    #[test]
    fn reconstruct_free_function_matches_method() {
        let q = quantize(&example_taps(), 9, Scaling::Maximal).unwrap();
        assert_eq!(reconstruct(&q.values, &q.shifts, q.scale), q.reconstruct());
    }

    #[test]
    fn maximal_handles_tiny_taps() {
        let taps = [1.0, 1e-9];
        let q = quantize(&taps, 16, Scaling::Maximal).unwrap();
        assert!(q.max_error(&taps) < 1e-13);
    }

    #[test]
    fn uniform_with_custom_scale() {
        let q = quantize_uniform_with_scale(&[0.25, 0.5], 8, 1.0);
        // 0.5 maps to half of full scale.
        assert_eq!(q.values[1], 64);
        assert_eq!(q.values[0], 32);
    }
}
