//! Number-representation substrate for multiplierless filter synthesis.
//!
//! The MRPF paper measures the hardware cost of multiplying a data sample by
//! a fixed coefficient as the number of *nonzero digits* of that coefficient
//! in a chosen number representation: plain binary, sign-magnitude (SM), or
//! a signed-digit representation (canonical signed digit, CSD, equivalently
//! minimal signed-powers-of-two, SPT). An `n`-nonzero-digit constant costs
//! `n - 1` adders.
//!
//! This crate provides:
//!
//! * [`DigitVec`] — an LSB-first signed-digit vector with exact round-trip
//!   to [`i64`];
//! * [`csd`] / [`binary_digits`] — digit recodings;
//! * [`Repr`] — the representation selector with [`nonzero_digits`] and
//!   [`adder_cost`] metrics;
//! * [`odd_part`] — odd/shift factorization used to identify coefficients
//!   that are free shifts of one another;
//! * [`quantize`] and [`Scaling`] — uniform and maximal coefficient scaling
//!   of real-valued filter taps into `W`-bit integers.
//!
//! # Examples
//!
//! ```
//! use mrp_numrep::{csd, Repr, nonzero_digits};
//!
//! // 7 = 8 - 1 in CSD: two nonzero digits instead of three in binary.
//! assert_eq!(csd(7).nonzero_count(), 2);
//! assert_eq!(nonzero_digits(7, Repr::Csd), 2);
//! assert_eq!(nonzero_digits(7, Repr::TwosComplement), 3);
//! ```

#![warn(missing_docs)]

mod digits;
mod fixed;
mod oddpart;
mod scaling;
mod scm;
mod sptq;

pub use digits::{binary_digits, csd, msd_weight, DigitVec, ParseDigitError, SignedDigit};
pub use fixed::{adder_cost, nonzero_digits, Repr};
pub use oddpart::{is_power_of_two_or_zero, odd_part, OddPart};
pub use scaling::{
    quantize, quantize_uniform_with_scale, reconstruct, QuantizeError, QuantizedCoeffs, Scaling,
};
pub use scm::{optimal_scm_cost, scm2_plan, Scm2Plan, ScmSrc, ScmStep};
pub use sptq::{quantize_spt_limited, round_to_spt};
