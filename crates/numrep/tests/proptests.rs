//! Property-based tests for the number-representation substrate.

use mrp_numrep::{
    adder_cost, binary_digits, csd, is_power_of_two_or_zero, msd_weight, nonzero_digits, odd_part,
    quantize, Repr, Scaling,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn csd_round_trip(v in -(1i64 << 40)..(1i64 << 40)) {
        prop_assert_eq!(csd(v).value(), v);
    }

    #[test]
    fn csd_is_canonical(v in -(1i64 << 40)..(1i64 << 40)) {
        prop_assert!(csd(v).is_csd());
    }

    #[test]
    fn csd_weight_at_most_binary(v in 0i64..(1i64 << 40)) {
        prop_assert!(csd(v).nonzero_count() <= binary_digits(v).nonzero_count());
    }

    #[test]
    fn csd_weight_sign_symmetric(v in 1i64..(1i64 << 40)) {
        prop_assert_eq!(msd_weight(v), msd_weight(-v));
    }

    #[test]
    fn csd_shift_invariant(v in 1i64..(1i64 << 30), k in 0u32..8) {
        // Multiplying by 2^k must not change the digit weight.
        prop_assert_eq!(msd_weight(v), msd_weight(v << k));
    }

    #[test]
    fn binary_round_trip(v in -(1i64 << 40)..(1i64 << 40)) {
        prop_assert_eq!(binary_digits(v).value(), v);
    }

    #[test]
    fn odd_part_round_trip(v in -(1i64 << 40)..(1i64 << 40)) {
        prop_assert_eq!(odd_part(v).reassemble(), v);
    }

    #[test]
    fn odd_part_really_odd(v in 1i64..(1i64 << 40)) {
        prop_assert_eq!(odd_part(v).odd & 1, 1);
    }

    #[test]
    fn adder_cost_zero_iff_trivial(v in -(1i64 << 30)..(1i64 << 30)) {
        for r in Repr::ALL {
            let free = adder_cost(v, r) == 0;
            prop_assert_eq!(free, is_power_of_two_or_zero(v),
                "repr {} value {}", r, v);
        }
    }

    #[test]
    fn nonzero_digits_shift_invariant(v in 1i64..(1i64 << 30), k in 0u32..8) {
        for r in Repr::ALL {
            prop_assert_eq!(nonzero_digits(v, r), nonzero_digits(v << k, r));
        }
    }

    #[test]
    fn quantize_uniform_within_range(
        taps in prop::collection::vec(-1.0f64..1.0, 1..64),
        w in 2u32..20,
    ) {
        prop_assume!(taps.iter().any(|t| t.abs() > 1e-9));
        let q = quantize(&taps, w, Scaling::Uniform).unwrap();
        for &v in &q.values {
            prop_assert!(v.abs() < 1 << w);
        }
    }

    #[test]
    fn quantize_maximal_full_width(
        taps in prop::collection::vec(-1.0f64..1.0, 1..64),
        w in 2u32..20,
    ) {
        prop_assume!(taps.iter().any(|t| t.abs() > 1e-9));
        let q = quantize(&taps, w, Scaling::Maximal).unwrap();
        for &v in &q.values {
            if v != 0 {
                prop_assert!((1i64 << (w - 1)..1i64 << w).contains(&v.abs()));
            }
        }
    }

    #[test]
    fn quantize_error_shrinks_with_wordlength(
        taps in prop::collection::vec(-1.0f64..1.0, 2..32),
    ) {
        prop_assume!(taps.iter().any(|t| t.abs() > 1e-3));
        let e8 = quantize(&taps, 8, Scaling::Uniform).unwrap().max_error(&taps);
        let e16 = quantize(&taps, 16, Scaling::Uniform).unwrap().max_error(&taps);
        prop_assert!(e16 <= e8 + 1e-12);
    }
}
