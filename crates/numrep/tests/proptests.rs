//! Property-based tests for the number-representation substrate
//! (deterministic harness).

use mrp_numrep::{
    adder_cost, binary_digits, csd, is_power_of_two_or_zero, msd_weight, nonzero_digits, odd_part,
    quantize, Repr, Scaling,
};
use mrp_ptest::run_cases;

const B40: i64 = 1 << 40;
const B30: i64 = 1 << 30;

#[test]
fn csd_round_trip() {
    run_cases("csd_round_trip", 512, |rng| {
        let v = rng.i64_in(-B40, B40);
        assert_eq!(csd(v).value(), v);
    });
}

#[test]
fn csd_is_canonical() {
    run_cases("csd_is_canonical", 512, |rng| {
        let v = rng.i64_in(-B40, B40);
        assert!(csd(v).is_csd());
    });
}

#[test]
fn csd_weight_at_most_binary() {
    run_cases("csd_weight_at_most_binary", 512, |rng| {
        let v = rng.i64_in(0, B40);
        assert!(csd(v).nonzero_count() <= binary_digits(v).nonzero_count());
    });
}

#[test]
fn csd_weight_sign_symmetric() {
    run_cases("csd_weight_sign_symmetric", 512, |rng| {
        let v = rng.i64_in(1, B40);
        assert_eq!(msd_weight(v), msd_weight(-v));
    });
}

#[test]
fn csd_shift_invariant() {
    run_cases("csd_shift_invariant", 512, |rng| {
        let v = rng.i64_in(1, B30);
        let k = rng.u32_in(0, 8);
        // Multiplying by 2^k must not change the digit weight.
        assert_eq!(msd_weight(v), msd_weight(v << k));
    });
}

#[test]
fn binary_round_trip() {
    run_cases("binary_round_trip", 512, |rng| {
        let v = rng.i64_in(-B40, B40);
        assert_eq!(binary_digits(v).value(), v);
    });
}

#[test]
fn odd_part_round_trip() {
    run_cases("odd_part_round_trip", 512, |rng| {
        let v = rng.i64_in(-B40, B40);
        assert_eq!(odd_part(v).reassemble(), v);
    });
}

#[test]
fn odd_part_really_odd() {
    run_cases("odd_part_really_odd", 512, |rng| {
        let v = rng.i64_in(1, B40);
        assert_eq!(odd_part(v).odd & 1, 1);
    });
}

#[test]
fn adder_cost_zero_iff_trivial() {
    run_cases("adder_cost_zero_iff_trivial", 512, |rng| {
        let v = rng.i64_in(-B30, B30);
        for r in Repr::ALL {
            let free = adder_cost(v, r) == 0;
            assert_eq!(free, is_power_of_two_or_zero(v), "repr {r} value {v}");
        }
    });
}

#[test]
fn nonzero_digits_shift_invariant() {
    run_cases("nonzero_digits_shift_invariant", 512, |rng| {
        let v = rng.i64_in(1, B30);
        let k = rng.u32_in(0, 8);
        for r in Repr::ALL {
            assert_eq!(nonzero_digits(v, r), nonzero_digits(v << k, r));
        }
    });
}

#[test]
fn quantize_uniform_within_range() {
    run_cases("quantize_uniform_within_range", 128, |rng| {
        let taps = rng.vec_f64(1, 64, -1.0, 1.0);
        let w = rng.u32_in(2, 20);
        if !taps.iter().any(|t| t.abs() > 1e-9) {
            return;
        }
        let q = quantize(&taps, w, Scaling::Uniform).unwrap();
        for &v in &q.values {
            assert!(v.abs() < 1 << w);
        }
    });
}

#[test]
fn quantize_maximal_full_width() {
    run_cases("quantize_maximal_full_width", 128, |rng| {
        let taps = rng.vec_f64(1, 64, -1.0, 1.0);
        let w = rng.u32_in(2, 20);
        if !taps.iter().any(|t| t.abs() > 1e-9) {
            return;
        }
        let q = quantize(&taps, w, Scaling::Maximal).unwrap();
        for &v in &q.values {
            if v != 0 {
                assert!((1i64 << (w - 1)..1i64 << w).contains(&v.abs()));
            }
        }
    });
}

#[test]
fn quantize_error_shrinks_with_wordlength() {
    run_cases("quantize_error_shrinks_with_wordlength", 128, |rng| {
        let taps = rng.vec_f64(2, 32, -1.0, 1.0);
        if !taps.iter().any(|t| t.abs() > 1e-3) {
            return;
        }
        let e8 = quantize(&taps, 8, Scaling::Uniform)
            .unwrap()
            .max_error(&taps);
        let e16 = quantize(&taps, 16, Scaling::Uniform)
            .unwrap()
            .max_error(&taps);
        assert!(e16 <= e8 + 1e-12);
    });
}
