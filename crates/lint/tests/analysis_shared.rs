//! The memoization guarantee, observed from the outside: one full
//! `lint_graph` run computes each underlying analysis exactly once, and a
//! caller-owned analyzer reused across `lint_graph_with` calls recomputes
//! nothing at all. Uses the `mrp-obs` `analysis.compute` counters, so the
//! whole check lives in one test (the registry is process-global).

use mrp_analysis::{AnalysisContext, Analyzer};
use mrp_arch::{AdderGraph, Term};
use mrp_lint::{lint_graph, lint_graph_with, LintConfig};

fn fixture() -> AdderGraph {
    let mut g = AdderGraph::new();
    let x = g.input();
    let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
    let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
    g.push_output("c0", Term::of(b), 29);
    g
}

#[test]
fn lint_computes_each_analysis_at_most_once() {
    mrp_obs::reset();
    mrp_obs::enable_metrics_only();

    let g = fixture();
    let config = LintConfig::default();
    let report = lint_graph(&g, &config);
    assert!(report.is_clean(), "{}", report.render_pretty());

    // The four graph passes read five analyses between them; each was
    // computed exactly once despite structure + width + equiv + depth all
    // going through the same cache.
    for name in ["liveness", "fanout", "width", "derived-values", "depth"] {
        assert_eq!(
            mrp_obs::counter_value(&format!("analysis.compute.{name}")),
            Some(1),
            "analysis `{name}` not computed exactly once"
        );
    }
    assert_eq!(mrp_obs::counter_value("analysis.compute"), Some(5));

    // A caller-owned analyzer makes repeat lints free: the second run
    // moves no compute counters.
    let az = Analyzer::new(&g, AnalysisContext::default());
    let first = lint_graph_with(&az, &config);
    let after_first = mrp_obs::counter_value("analysis.compute");
    let second = lint_graph_with(&az, &config);
    assert_eq!(mrp_obs::counter_value("analysis.compute"), after_first);
    assert_eq!(first.render_json(), second.render_json());

    mrp_obs::disable();
    mrp_obs::reset();
}
