//! Width round-trip: emit Verilog for the paper's example filters, parse
//! it back with the RTL simulator, and check every declared wire width
//! against the linter's inferred minimum for that node. The emitter uses
//! one uniform internal width, so each declared width must cover the
//! widest value any node settles to — and the block-level minimum safe
//! width must agree with the widest inferred node.

use std::collections::HashMap;

use mrp_arch::emit_verilog;
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::example_filters;
use mrp_lint::width::node_widths;
use mrp_numrep::{quantize, Scaling};
use mrp_vsim::Module;

const INPUT_WIDTH: u32 = 16;

fn optimized(index: usize) -> mrp_core::MrpResult {
    let ex = &example_filters()[index];
    let taps = ex.design().expect("design");
    let coeffs = quantize(&taps, 12, Scaling::Uniform)
        .expect("quantize")
        .values;
    MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .expect("optimize")
}

#[test]
fn declared_wire_widths_cover_lint_inferred_widths() {
    for index in 0..example_filters().len() {
        let r = optimized(index);
        if !r.graph.outputs().iter().any(|o| o.expected != 0) {
            continue;
        }
        let src = emit_verilog(&r.graph, "dut", INPUT_WIDTH);
        let module = Module::parse(&src).expect("emitted Verilog parses");
        let required = node_widths(&r.graph, INPUT_WIDTH);

        let declared: HashMap<&str, u32> = module
            .wires
            .iter()
            .map(|(name, width, _)| (name.as_str(), *width))
            .collect();
        let mut checked = 0usize;
        for (i, &need) in required.iter().enumerate().skip(1) {
            let name = format!("n{i}");
            let Some(&have) = declared.get(name.as_str()) else {
                continue; // unreferenced nodes may be pruned by the emitter
            };
            assert!(
                have >= need,
                "example {}: wire {name} declared {have} bits, lint needs {need}",
                index + 1
            );
            checked += 1;
        }
        assert!(checked > 0, "example {}: no adder wires checked", index + 1);

        // The block's min safe width is exactly the widest inferred node.
        let widest = required.iter().copied().max().unwrap();
        let report = mrp_lint::lint_graph(&r.graph, &mrp_lint::LintConfig::default());
        assert_eq!(report.stats.min_safe_width, widest);
    }
}

#[test]
fn emitted_widths_are_not_wastefully_wide_at_block_level() {
    // The emitter sizes every internal wire uniformly from the largest
    // coefficient; that uniform width must be at least the lint minimum
    // (otherwise values would wrap) for each example filter.
    for index in 0..example_filters().len() {
        let r = optimized(index);
        if !r.graph.outputs().iter().any(|o| o.expected != 0) {
            continue;
        }
        let src = emit_verilog(&r.graph, "dut", INPUT_WIDTH);
        let module = Module::parse(&src).expect("emitted Verilog parses");
        let required = node_widths(&r.graph, INPUT_WIDTH);
        let widest = required.iter().copied().max().unwrap();
        let uniform = module
            .wires
            .iter()
            .filter(|(name, _, _)| name.starts_with('n'))
            .map(|(_, w, _)| *w)
            .max()
            .expect("internal wires");
        assert!(
            uniform >= widest,
            "example {}: uniform width {uniform} below lint minimum {widest}",
            index + 1
        );
    }
}
