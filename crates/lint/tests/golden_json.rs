//! Golden-byte stability of the machine-readable report.
//!
//! Downstream tooling (the CI analysis gate, `mrp-serve` clients) parses
//! `render_json` output and diffs `render_pretty` output; both must stay
//! byte-identical across refactors of the pass internals. These literals
//! are the contract — if a change trips them, the schema moved and every
//! consumer needs to know.

use mrp_arch::{AdderGraph, Term};
use mrp_lint::{lint_graph, LintConfig};

/// 7·x with a dead 5·x rider: one warning, stable stats.
fn fixture() -> AdderGraph {
    let mut g = AdderGraph::new();
    let x = g.input();
    let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
    let _dead = g.add(Term::shifted(x, 2), Term::of(x)).unwrap(); // 5, unused
    g.push_output("c0", Term::of(a), 7);
    g
}

#[test]
fn json_bytes_are_stable() {
    let report = lint_graph(&fixture(), &LintConfig::default());
    assert_eq!(
        report.render_json(),
        "{\"diagnostics\":[{\"code\":\"MRP001\",\"severity\":\"warning\",\
         \"message\":\"adder computing 5·x drives no output\",\"node\":2}],\
         \"stats\":{\"nodes\":3,\"adders\":2,\"outputs\":1,\"max_depth\":1,\
         \"max_fanout\":4,\"min_safe_width\":19},\"errors\":0,\"warnings\":1}"
    );
}

#[test]
fn pretty_bytes_are_stable() {
    let report = lint_graph(&fixture(), &LintConfig::default());
    assert_eq!(
        report.render_pretty(),
        "warning [MRP001] adder computing 5·x drives no output (node 2)\n\
         lint: 0 error(s), 1 warning(s) — 3 nodes (2 adders), 1 outputs, \
         depth 1, max fanout 4, min safe width 19\n"
    );
}
