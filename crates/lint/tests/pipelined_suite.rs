//! Pipelined acceptance sweep over the paper's 12-filter example suite.
//!
//! Every netlist the default MRP pipeline produces must survive the full
//! pipeline story with zero spurious diagnostics: the pipelined Verilog
//! emitter lints clean against the graph, `pipeline_by_depth` + `retime`
//! produce a netlist that passes both the static `MRP04x` lints and the
//! dynamic latency-adjusted equivalence gate, and the `MRP042` growth
//! bound stays silent at the width the analysis itself reports as safe.

use mrp_analysis::{pipeline_and_retime, AnalysisContext, Analyzer};
use mrp_arch::emit_verilog_pipelined;
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::example_filters;
use mrp_lint::{lint_graph, lint_pipelined, lint_verilog, width::min_safe_width, LintConfig};
use mrp_numrep::{quantize, Scaling};

const VERIFY_SAMPLES: [i64; 7] = [-3, -1, 0, 1, 2, 7, 100];

fn suite_graphs() -> Vec<(String, mrp_arch::AdderGraph)> {
    example_filters()
        .iter()
        .map(|ex| {
            let taps = ex.design().expect("design");
            let coeffs = quantize(&taps, 12, Scaling::Uniform)
                .expect("quantize")
                .values;
            let r = MrpOptimizer::new(MrpConfig::default())
                .optimize(&coeffs)
                .expect("optimize");
            (ex.label(), r.graph)
        })
        .collect()
}

#[test]
fn pipelined_verilog_lints_clean_on_the_suite() {
    let width = 16u32;
    let config = LintConfig {
        input_width: width,
        ..LintConfig::default()
    };
    for (label, graph) in suite_graphs() {
        if !graph.outputs().iter().any(|o| o.expected != 0) {
            continue;
        }
        let src = emit_verilog_pipelined(&graph, "pipe_dut", width, 1);
        let report = lint_verilog(&graph, &src, &config);
        assert!(
            report.is_clean(),
            "{label}: pipelined RTL lint not clean\n{}",
            report.render_pretty()
        );
    }
}

#[test]
fn pipelined_and_retimed_netlists_pass_both_gates_on_the_suite() {
    let config = LintConfig::default();
    for (label, graph) in suite_graphs() {
        if graph.max_depth() == 0 {
            continue;
        }
        let az = Analyzer::new(&graph, AnalysisContext::default());
        let (net, delta) = pipeline_and_retime(&az, 1);
        assert!(
            delta.stage_depth <= 1,
            "{label}: stage depth {} after pipelining to 1",
            delta.stage_depth
        );
        let report = lint_pipelined(&net, &config);
        assert!(
            report.is_clean(),
            "{label}: pipelined lint not clean\n{}",
            report.render_pretty()
        );
        assert_eq!(
            net.verify_outputs_latency_adjusted(&VERIFY_SAMPLES),
            None,
            "{label}: latency-adjusted equivalence failed"
        );
    }
}

#[test]
fn growth_bound_is_silent_at_the_reported_safe_width() {
    for (label, graph) in suite_graphs() {
        let safe = min_safe_width(&graph, 16);
        let config = LintConfig {
            width_growth_bound: Some(safe),
            ..LintConfig::default()
        };
        let report = lint_graph(&graph, &config);
        assert!(
            report.is_clean(),
            "{label}: spurious diagnostics at the safe bound {safe}\n{}",
            report.render_pretty()
        );
    }
}
