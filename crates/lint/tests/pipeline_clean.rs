//! The acceptance bar for the linter itself: every netlist the default
//! MRP and MRP+CSE pipelines produce for the paper's example filters must
//! lint clean — both the graph passes and the RTL cross-check on the
//! emitted Verilog.

use mrp_arch::emit_verilog;
use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_filters::example_filters;
use mrp_lint::{lint_graph, lint_verilog, LintConfig};
use mrp_numrep::{quantize, Scaling};

fn quantized(index: usize, wordlength: u32) -> Vec<i64> {
    let suite = example_filters();
    let ex = &suite[index];
    let taps = ex.design().expect("design");
    quantize(&taps, wordlength, Scaling::Uniform)
        .expect("quantize")
        .values
}

fn check_pipeline(seed: SeedOptimizer, name: &str) {
    let width = 16u32;
    let config = LintConfig {
        input_width: width,
        ..LintConfig::default()
    };
    for index in 0..example_filters().len() {
        let coeffs = quantized(index, 12);
        let cfg = MrpConfig {
            seed_optimizer: seed,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        let mut report = lint_graph(&r.graph, &config);
        if r.graph.outputs().iter().any(|o| o.expected != 0) {
            let src = emit_verilog(&r.graph, "lint_dut", width);
            report.merge(lint_verilog(&r.graph, &src, &config));
        }
        assert!(
            report.is_clean(),
            "{name} pipeline, example {}: lint not clean\n{}",
            index + 1,
            report.render_pretty()
        );
    }
}

#[test]
fn default_mrp_pipeline_lints_clean() {
    check_pipeline(SeedOptimizer::Direct, "MRP");
}

#[test]
fn mrp_cse_pipeline_lints_clean() {
    check_pipeline(SeedOptimizer::Cse, "MRP+CSE");
}

#[test]
fn depth_cross_check_passes_on_real_pipelines() {
    let coeffs = quantized(4, 12);
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let config = LintConfig {
        expected_depth: Some(r.graph.max_depth()),
        ..LintConfig::default()
    };
    let report = lint_graph(&r.graph, &config);
    assert!(report.is_clean(), "{}", report.render_pretty());
}
