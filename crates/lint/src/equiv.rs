//! Coefficient-equivalence checking.
//!
//! Re-derives each node's constant multiple of `x` symbolically from the
//! adder structure alone (never consulting the tracked value cache), then
//! verifies the cache and every registered output coefficient against the
//! derivation. A mismatch pinpoints which node or output edge breaks the
//! reconstruction — the failure mode of a buggy SEED/overhead edge in the
//! MRP decomposition. The derivation itself is the cached
//! [`DerivedValues`] analysis.

use mrp_analysis::{Analysis, Analyzer, DerivedValues, Pass};
use mrp_arch::NodeId;
use mrp_numrep::odd_part;

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

/// The `MRP02x` pass. Reads the [`DerivedValues`] analysis.
pub(crate) struct EquivPass;

impl Pass<LintConfig, LintReport> for EquivPass {
    fn name(&self) -> &'static str {
        "equiv"
    }

    fn analyses(&self) -> &'static [&'static str] {
        &[DerivedValues::NAME]
    }

    fn run(&self, az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
        run(az, config, report);
    }
}

fn run(az: &Analyzer<'_>, _config: &LintConfig, report: &mut LintReport) {
    let graph = az.graph();
    let derived = az.get_analysis::<DerivedValues>();
    let vals = match &derived.values {
        Ok(v) => v,
        Err(i) => {
            report.push(
                Diagnostic::new(
                    LintCode::WidthOverflow,
                    "symbolic derivation leaves the 63-bit tracking range",
                )
                .at_node(*i),
            );
            return;
        }
    };

    // Tracked cache vs. derivation.
    for (i, &v) in vals.iter().enumerate() {
        let tracked = graph.value(NodeId::from_index(i));
        if v != tracked {
            report.push(
                Diagnostic::new(
                    LintCode::TrackedValueMismatch,
                    format!("tracked value {tracked}·x but the adders compute {v}·x"),
                )
                .at_node(i),
            );
        }
    }

    // Output coefficients vs. derivation.
    for o in graph.outputs() {
        if o.expected == 0 {
            continue;
        }
        let j = o.term.node.index();
        if j >= vals.len() {
            continue; // structure pass reports this
        }
        let Some(got) =
            (vals[j] as i128)
                .checked_shl(o.term.shift)
                .map(|v| if o.term.negate { -v } else { v })
        else {
            report.push(
                Diagnostic::new(
                    LintCode::WidthOverflow,
                    format!(
                        "output `{}` shift {} leaves the analysis range",
                        o.label, o.term.shift
                    ),
                )
                .at_signal(o.label.clone()),
            );
            continue;
        };
        if got != o.expected as i128 {
            let hint = if odd_part(got.clamp(i64::MIN as i128, i64::MAX as i128) as i64).odd
                == odd_part(o.expected).odd
            {
                "shift/sign error on the output edge"
            } else {
                "output is wired to the wrong node"
            };
            report.push(
                Diagnostic::new(
                    LintCode::CoeffMismatch,
                    format!(
                        "output `{}` reconstructs {got}·x but expects {}·x; driven by \
                         node {j} ({}·x) shifted by {}{} — {hint}",
                        o.label,
                        o.expected,
                        vals[j],
                        o.term.shift,
                        if o.term.negate { ", negated" } else { "" },
                    ),
                )
                .at_signal(o.label.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_analysis::AnalysisContext;
    use mrp_arch::{AdderGraph, Term};

    fn lint(graph: &AdderGraph) -> LintReport {
        let az = Analyzer::new(graph, AnalysisContext::default());
        let mut r = LintReport::default();
        run(&az, &LintConfig::default(), &mut r);
        r
    }

    #[test]
    fn correct_network_is_clean() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        g.push_output("c0", Term::of(b), 29);
        g.push_output("c1", Term::negated_shifted(a, 1), -14);
        assert!(lint(&g).is_clean());
    }

    #[test]
    fn wrong_expected_coefficient_detected_with_shift_hint() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // 3
                                                                  // Expecting 6 but wiring shift 0: same odd part, wrong shift.
        g.push_output("c0", Term::of(a), 6);
        let r = lint(&g);
        let bad = r.with_code(LintCode::CoeffMismatch);
        assert_eq!(bad.len(), 1);
        assert!(
            bad[0].message.contains("shift/sign error"),
            "{}",
            bad[0].message
        );
        assert_eq!(bad[0].signal.as_deref(), Some("c0"));
    }

    #[test]
    fn wrong_node_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // 3
        g.push_output("c0", Term::of(a), 7);
        let r = lint(&g);
        let bad = r.with_code(LintCode::CoeffMismatch);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("wrong node"), "{}", bad[0].message);
    }

    #[test]
    fn zero_expected_outputs_are_skipped() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("z", Term::of(x), 0);
        assert!(lint(&g).is_clean());
    }
}
