//! Static analysis for multiplierless adder networks and their RTL.
//!
//! The MRP pipeline turns a coefficient vector into an adder-graph netlist
//! and then into structural Verilog; every stage is an opportunity for a
//! silent wiring, width, or accounting bug that bit-exact spot checks can
//! miss. This crate lints both artifacts and reports findings with stable
//! `MRPnnn` codes (see [`LintCode`]), severities, and source-node
//! provenance:
//!
//! * **structure** (`MRP00x`) — dead nodes, malformed references,
//!   non-topological order, redundant adders (free shifts burned as
//!   hardware), exact duplicate adders (missed CSE), fanout;
//! * **width** (`MRP01x`) — bit-width inference through shifts and adds,
//!   checked against the widths the emitted Verilog declares;
//! * **equivalence** (`MRP02x`) — symbolic re-derivation of every constant
//!   from the adder structure, verified against the tracked values, the
//!   registered output coefficients, and a simulation of the RTL;
//! * **depth** (`MRP03x`) — recomputed critical path, checked against the
//!   graph's depth cache and the optimizer's reported depth;
//! * **pipeline** (`MRP04x`) — stage-assignment legality and register
//!   coverage of a [`mrp_analysis::PipelinedNetlist`], plus an optional
//!   width-growth bound (`MRP042`) on the plain graph lint.
//!
//! Every check is a [`mrp_analysis::Pass`] over a shared
//! [`mrp_analysis::Analyzer`], so expensive walks (fanout, depth, widths,
//! liveness, symbolic values) are each computed at most once per netlist
//! no matter how many passes read them. [`lint_graph`] owns the analyzer
//! internally; [`lint_graph_with`] lints through a caller-owned analyzer
//! so a surrounding tool (e.g. `mrpf analyze`) can keep reusing the cache.
//!
//! # Examples
//!
//! ```
//! use mrp_arch::{AdderGraph, Term};
//! use mrp_lint::{lint_graph, LintCode, LintConfig};
//!
//! let mut g = AdderGraph::new();
//! let x = g.input();
//! let seven = g.add(Term::shifted(x, 3), Term::negated(x))?;
//! let dead = g.add(Term::shifted(x, 2), Term::of(x))?; // 5·x, never used
//! g.push_output("c0", Term::of(seven), 7);
//! let report = lint_graph(&g, &LintConfig::default());
//! assert_eq!(report.with_code(LintCode::DeadNode).len(), 1);
//! assert_eq!(report.with_code(LintCode::DeadNode)[0].node, Some(dead.index()));
//! # Ok::<(), mrp_arch::ArchError>(())
//! ```

#![warn(missing_docs)]

mod depth;
mod diag;
mod equiv;
mod pipelined;
mod rtl;
mod structure;
pub mod width;

pub use depth::recompute_depths;
pub use diag::{Diagnostic, LintCode, LintReport, LintStats, Severity};

use mrp_analysis::{AnalysisContext, Analyzer, PassManager, PipelinedNetlist};
use mrp_arch::AdderGraph;

/// Lint configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Input wordlength the network is analyzed at (1..=63 bits).
    pub input_width: u32,
    /// Critical path the optimizer reported, in adder stages; when set,
    /// a recomputed mismatch raises `MRP031`.
    pub expected_depth: Option<u32>,
    /// Fanout threshold above which `MRP006` fires; `None` disables the
    /// check (fanout still lands in the stats).
    pub fanout_warn: Option<usize>,
    /// Internal wordlength budget in bits; when set, any node whose
    /// settled value outgrows it raises `MRP042`. `None` disables the
    /// check (the minimum safe width still lands in the stats).
    pub width_growth_bound: Option<u32>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            input_width: 16,
            expected_depth: None,
            fanout_warn: None,
            width_growth_bound: None,
        }
    }
}

fn assert_width(config: &LintConfig) {
    assert!(
        (1..=63).contains(&config.input_width),
        "input width {} outside 1..=63",
        config.input_width
    );
}

/// The standard graph lint pipeline: structure, widths, coefficient
/// equivalence, and depth, in that order.
fn graph_passes<'p>() -> PassManager<'p, LintConfig, LintReport> {
    let mut pm = PassManager::new();
    pm.add(structure::StructurePass)
        .add(width::WidthPass)
        .add(equiv::EquivPass)
        .add(depth::DepthPass);
    pm
}

/// Lints an adder-graph netlist: structure, widths, coefficient
/// equivalence, and depth.
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63` (wider inputs leave
/// the `i64` analysis range).
pub fn lint_graph(graph: &AdderGraph, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.graph");
    assert_width(config);
    let az = Analyzer::new(
        graph,
        AnalysisContext {
            input_width: config.input_width,
        },
    );
    lint_graph_passes(&az, config)
}

/// Lints through a caller-owned [`Analyzer`], sharing its memoized
/// analyses with whatever the caller computes before or after — the
/// analyzer's context width must match `config.input_width` so the cached
/// width table means the same thing to both sides.
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63` or disagrees with
/// the analyzer's context.
pub fn lint_graph_with(az: &Analyzer<'_>, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.graph");
    assert_width(config);
    assert_eq!(
        az.ctx().input_width,
        config.input_width,
        "analyzer context width disagrees with the lint config"
    );
    lint_graph_passes(az, config)
}

fn lint_graph_passes(az: &Analyzer<'_>, config: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    graph_passes().run(az, config, &mut report);
    report
}

/// Lints emitted Verilog against the netlist it was generated from:
/// parseability, structural shape, declared wire/port widths versus the
/// inferred requirements, and a width-exact simulation of the products.
///
/// Covers both the combinational ([`mrp_arch::emit_verilog`]) and the
/// pipelined ([`mrp_arch::emit_verilog_pipelined`]) emitters.
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63`.
pub fn lint_verilog(graph: &AdderGraph, source: &str, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.verilog");
    assert_width(config);
    let az = Analyzer::new(
        graph,
        AnalysisContext {
            input_width: config.input_width,
        },
    );
    lint_verilog_passes(&az, source, config)
}

/// [`lint_verilog`] through a caller-owned [`Analyzer`] (see
/// [`lint_graph_with`] for the sharing contract).
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63` or disagrees with
/// the analyzer's context.
pub fn lint_verilog_with(az: &Analyzer<'_>, source: &str, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.verilog");
    assert_width(config);
    assert_eq!(
        az.ctx().input_width,
        config.input_width,
        "analyzer context width disagrees with the lint config"
    );
    lint_verilog_passes(az, source, config)
}

fn lint_verilog_passes(az: &Analyzer<'_>, source: &str, config: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut pm = PassManager::new();
    pm.add(rtl::RtlPass { source });
    pm.run(az, config, &mut report);
    report
}

/// Lints a pipelined netlist: stage-assignment legality (`MRP041`) and
/// register coverage of every boundary crossing (`MRP040`). The stats
/// report the *within-stage* critical path, which is what the pipeline
/// buys down.
///
/// This is the static half of the pipeline acceptance gate; the dynamic
/// half is [`PipelinedNetlist::verify_outputs_latency_adjusted`].
pub fn lint_pipelined(net: &PipelinedNetlist, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.pipelined");
    let mut report = LintReport::default();
    pipelined::run(net, config, &mut report);
    report
}
