//! Static analysis for multiplierless adder networks and their RTL.
//!
//! The MRP pipeline turns a coefficient vector into an adder-graph netlist
//! and then into structural Verilog; every stage is an opportunity for a
//! silent wiring, width, or accounting bug that bit-exact spot checks can
//! miss. This crate lints both artifacts and reports findings with stable
//! `MRPnnn` codes (see [`LintCode`]), severities, and source-node
//! provenance:
//!
//! * **structure** (`MRP00x`) — dead nodes, malformed references,
//!   non-topological order, redundant adders (free shifts burned as
//!   hardware), exact duplicate adders (missed CSE), fanout;
//! * **width** (`MRP01x`) — bit-width inference through shifts and adds,
//!   checked against the widths the emitted Verilog declares;
//! * **equivalence** (`MRP02x`) — symbolic re-derivation of every constant
//!   from the adder structure, verified against the tracked values, the
//!   registered output coefficients, and a simulation of the RTL;
//! * **depth** (`MRP03x`) — recomputed critical path, checked against the
//!   graph's depth cache and the optimizer's reported depth.
//!
//! # Examples
//!
//! ```
//! use mrp_arch::{AdderGraph, Term};
//! use mrp_lint::{lint_graph, LintCode, LintConfig};
//!
//! let mut g = AdderGraph::new();
//! let x = g.input();
//! let seven = g.add(Term::shifted(x, 3), Term::negated(x))?;
//! let dead = g.add(Term::shifted(x, 2), Term::of(x))?; // 5·x, never used
//! g.push_output("c0", Term::of(seven), 7);
//! let report = lint_graph(&g, &LintConfig::default());
//! assert_eq!(report.with_code(LintCode::DeadNode).len(), 1);
//! assert_eq!(report.with_code(LintCode::DeadNode)[0].node, Some(dead.index()));
//! # Ok::<(), mrp_arch::ArchError>(())
//! ```

#![warn(missing_docs)]

mod depth;
mod diag;
mod equiv;
mod rtl;
mod structure;
pub mod width;

pub use depth::recompute_depths;
pub use diag::{Diagnostic, LintCode, LintReport, LintStats, Severity};

use mrp_arch::AdderGraph;

/// Lint configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Input wordlength the network is analyzed at (1..=63 bits).
    pub input_width: u32,
    /// Critical path the optimizer reported, in adder stages; when set,
    /// a recomputed mismatch raises `MRP031`.
    pub expected_depth: Option<u32>,
    /// Fanout threshold above which `MRP006` fires; `None` disables the
    /// check (fanout still lands in the stats).
    pub fanout_warn: Option<usize>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            input_width: 16,
            expected_depth: None,
            fanout_warn: None,
        }
    }
}

/// Lints an adder-graph netlist: structure, widths, coefficient
/// equivalence, and depth.
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63` (wider inputs leave
/// the `i64` analysis range).
pub fn lint_graph(graph: &AdderGraph, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.graph");
    assert!(
        (1..=63).contains(&config.input_width),
        "input width {} outside 1..=63",
        config.input_width
    );
    let mut report = LintReport::default();
    structure::run(graph, config, &mut report);
    width::run(graph, config, &mut report);
    equiv::run(graph, config, &mut report);
    depth::run(graph, config, &mut report);
    report
}

/// Lints emitted Verilog against the netlist it was generated from:
/// parseability, structural shape, declared wire/port widths versus the
/// inferred requirements, and a width-exact simulation of the products.
///
/// Covers both the combinational ([`mrp_arch::emit_verilog`]) and the
/// pipelined ([`mrp_arch::emit_verilog_pipelined`]) emitters.
///
/// # Panics
///
/// Panics if `config.input_width` is outside `1..=63`.
pub fn lint_verilog(graph: &AdderGraph, source: &str, config: &LintConfig) -> LintReport {
    let _span = mrp_obs::span("lint.verilog");
    assert!(
        (1..=63).contains(&config.input_width),
        "input width {} outside 1..=63",
        config.input_width
    );
    let mut report = LintReport::default();
    rtl::run(graph, source, config, &mut report);
    report
}
