//! Structural invariants: reachability, topology, redundancy, fanout.

use mrp_analysis::{Analyzer, Fanout, Liveness, Pass};
use mrp_arch::{Node, NodeId};
use mrp_numrep::odd_part;

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

/// The `MRP00x` pass. Reads the [`Liveness`] and [`Fanout`] analyses.
pub(crate) struct StructurePass;

impl Pass<LintConfig, LintReport> for StructurePass {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn analyses(&self) -> &'static [&'static str] {
        use mrp_analysis::Analysis;
        &[Liveness::NAME, Fanout::NAME]
    }

    fn run(&self, az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
        run(az, config, report);
    }
}

fn run(az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
    let graph = az.graph();
    let n = graph.len();
    report.stats.nodes = n;
    report.stats.adders = graph.adder_count();

    let live_outputs: Vec<_> = graph.outputs().iter().filter(|o| o.expected != 0).collect();
    report.stats.outputs = live_outputs.len();

    if live_outputs.is_empty() && graph.adder_count() > 0 {
        report.push(Diagnostic::new(
            LintCode::NoOutputs,
            "graph has adders but registers no nonzero outputs",
        ));
    }

    // Reference validity + topological order. `AdderGraph::add` can only
    // reference existing nodes, so these are defensive; they also guard the
    // later passes, which index node vectors by operand id.
    let mut refs_ok = true;
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            for t in [lhs, rhs] {
                let j = t.node.index();
                if j >= n {
                    report.push(
                        Diagnostic::new(
                            LintCode::UnknownNodeRef,
                            format!("adder operand references nonexistent node {j}"),
                        )
                        .at_node(i),
                    );
                    refs_ok = false;
                } else if j >= i {
                    report.push(
                        Diagnostic::new(
                            LintCode::NotTopological,
                            format!("adder at index {i} reads node {j} (not strictly earlier)"),
                        )
                        .at_node(i),
                    );
                    refs_ok = false;
                }
            }
        }
    }
    for o in graph.outputs() {
        if o.term.node.index() >= n {
            report.push(
                Diagnostic::new(
                    LintCode::UnknownNodeRef,
                    format!(
                        "output `{}` references nonexistent node {}",
                        o.label,
                        o.term.node.index()
                    ),
                )
                .at_signal(o.label.clone()),
            );
            refs_ok = false;
        }
    }
    if !refs_ok {
        // Value lookups below would be meaningless on broken references.
        return;
    }

    // Dead nodes: adders not reachable from any nonzero output
    // (backward reachability is the cached `liveness` analysis).
    let live = az.get_analysis::<Liveness>();
    for (i, &alive) in live.live.iter().enumerate().skip(1) {
        if !alive {
            report.push(
                Diagnostic::new(
                    LintCode::DeadNode,
                    format!(
                        "adder computing {}·x drives no output",
                        graph.value(NodeId::from_index(i))
                    ),
                )
                .at_node(i),
            );
        }
    }

    // Redundant adders: the sum is zero, or a pure shift/negation of one of
    // its own operands — free wiring spent as hardware.
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let v = graph.value(NodeId::from_index(i));
            if v == 0 {
                report.push(
                    Diagnostic::new(LintCode::RedundantAdder, "adder output is constant zero")
                        .at_node(i),
                );
                continue;
            }
            for t in [lhs, rhs] {
                let ov = graph.value(t.node);
                if ov != 0 && odd_part(v).odd == odd_part(ov).odd {
                    report.push(
                        Diagnostic::new(
                            LintCode::RedundantAdder,
                            format!(
                                "adder computing {v}·x is a free shift/negation of its \
                                 operand node {} ({ov}·x)",
                                t.node.index()
                            ),
                        )
                        .at_node(i),
                    );
                    break;
                }
            }
        }
    }

    // Exact duplicates: two adders computing the same constant. The second
    // one is the wasted instance (a shift-free reuse was available).
    for i in 1..n {
        let v = graph.value(NodeId::from_index(i));
        if v == 0 {
            continue;
        }
        if let Some(first) = (1..i).find(|&j| graph.value(NodeId::from_index(j)) == v) {
            report.push(
                Diagnostic::new(
                    LintCode::DuplicateNode,
                    format!("adder duplicates node {first} (both compute {v}·x); missed CSE"),
                )
                .at_node(i),
            );
        }
    }

    // Fanout (the cached `fanout` analysis; matches `AdderGraph::fanouts`
    // on reference-valid graphs, which the guard above established).
    let fanouts = az.get_analysis::<Fanout>();
    report.stats.max_fanout = fanouts.max;
    if let Some(limit) = config.fanout_warn {
        for (i, &f) in fanouts.counts.iter().enumerate() {
            if f > limit {
                report.push(
                    Diagnostic::new(
                        LintCode::HighFanout,
                        format!("fanout {f} exceeds the configured threshold {limit}"),
                    )
                    .at_node(i),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_analysis::AnalysisContext;
    use mrp_arch::{AdderGraph, Term};

    fn lint(graph: &AdderGraph, config: &LintConfig) -> LintReport {
        let az = Analyzer::new(
            graph,
            AnalysisContext {
                input_width: config.input_width,
            },
        );
        let mut r = LintReport::default();
        run(&az, config, &mut r);
        r
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        g.push_output("c0", Term::of(b), 29);
        let r = lint(&g, &LintConfig::default());
        assert!(r.is_clean(), "{}", r.render_pretty());
        assert_eq!(r.stats.adders, 2);
    }

    #[test]
    fn dead_node_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let _dead = g.add(Term::shifted(x, 2), Term::of(x)).unwrap(); // 5, unused
        g.push_output("c0", Term::of(a), 7);
        let r = lint(&g, &LintConfig::default());
        let dead = r.with_code(LintCode::DeadNode);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].node, Some(2));
    }

    #[test]
    fn redundant_adder_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        // x + x = 2x: a free shift burned as an adder.
        let two = g.add(Term::of(x), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(two), 2);
        let r = lint(&g, &LintConfig::default());
        assert_eq!(r.with_code(LintCode::RedundantAdder).len(), 1);
    }

    #[test]
    fn zero_sum_adder_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let z = g.add(Term::of(x), Term::negated(x)).unwrap();
        g.push_output("c0", Term::of(z), 0);
        let r = lint(&g, &LintConfig::default());
        assert_eq!(r.with_code(LintCode::RedundantAdder).len(), 1);
    }

    #[test]
    fn duplicate_nodes_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // 3
        let b = g.add(Term::shifted(x, 2), Term::negated(x)).unwrap(); // 3 again
        g.push_output("c0", Term::of(a), 3);
        g.push_output("c1", Term::of(b), 3);
        let r = lint(&g, &LintConfig::default());
        let dups = r.with_code(LintCode::DuplicateNode);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].node, Some(b.index()));
    }

    #[test]
    fn no_outputs_warned() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let r = lint(&g, &LintConfig::default());
        assert_eq!(r.with_code(LintCode::NoOutputs).len(), 1);
    }

    #[test]
    fn fanout_gate_fires_only_when_configured() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // x fanout 2
        g.push_output("c0", Term::of(a), 3);
        let silent = lint(&g, &LintConfig::default());
        assert!(silent.with_code(LintCode::HighFanout).is_empty());
        let cfg = LintConfig {
            fanout_warn: Some(1),
            ..LintConfig::default()
        };
        let noisy = lint(&g, &cfg);
        assert_eq!(noisy.with_code(LintCode::HighFanout).len(), 1);
        assert_eq!(noisy.stats.max_fanout, 2);
    }
}
