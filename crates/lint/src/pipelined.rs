//! Pipeline-structure lints over a [`PipelinedNetlist`].
//!
//! Two failure modes matter once registers enter the picture:
//!
//! * **`MRP041`** — the stage assignment itself is illegal: the input is
//!   off stage 0, a stage exceeds the latency, or an adder consumes a
//!   value from a *later* stage (the value would be needed before it is
//!   produced — the signature of a broken retiming move);
//! * **`MRP040`** — the stage assignment is fine but a signal crosses a
//!   pipeline boundary without owning a register there, so the hardware
//!   would wire a stale/skewed value through combinationally. This is
//!   exactly the fault [`PipelinedNetlist::drop_register`] injects, and
//!   the latency-adjusted equivalence check catches dynamically; the lint
//!   catches it statically.

use mrp_analysis::PipelinedNetlist;
use mrp_arch::{Node, NodeId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

pub(crate) fn run(net: &PipelinedNetlist, _config: &LintConfig, report: &mut LintReport) {
    let graph = &net.graph;
    let n = graph.len();
    report.stats.nodes = n;
    report.stats.adders = graph.adder_count();
    report.stats.outputs = graph.outputs().iter().filter(|o| o.expected != 0).count();
    report.stats.max_depth = net.critical_stage_depth();

    // Stage-assignment legality (MRP041). A broken assignment makes the
    // register bookkeeping below meaningless, so report and stop.
    let mut legal = true;
    if net.stages.len() != n {
        report.push(Diagnostic::new(
            LintCode::RetimingIllegal,
            format!(
                "stage assignment covers {} node(s) but the graph has {n}",
                net.stages.len()
            ),
        ));
        return;
    }
    if let Some(&s0) = net.stages.first() {
        if s0 != 0 {
            legal = false;
            report.push(
                Diagnostic::new(
                    LintCode::RetimingIllegal,
                    format!("input must sit in stage 0 but is assigned stage {s0}"),
                )
                .at_node(0),
            );
        }
    }
    for (i, &s) in net.stages.iter().enumerate() {
        if s > net.latency {
            legal = false;
            report.push(
                Diagnostic::new(
                    LintCode::RetimingIllegal,
                    format!("stage {s} exceeds the pipeline latency {}", net.latency),
                )
                .at_node(i),
            );
        }
    }
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            for t in [lhs, rhs] {
                let j = t.node.index();
                if j >= i {
                    // Reference/topology breakage is the graph lint's
                    // MRP001/MRP002 territory; skip it here.
                    continue;
                }
                if net.stages[j] > net.stages[i] {
                    legal = false;
                    report.push(
                        Diagnostic::new(
                            LintCode::RetimingIllegal,
                            format!(
                                "adder in stage {} reads node {j} from later stage {} — \
                                 the value is needed before it is produced",
                                net.stages[i], net.stages[j]
                            ),
                        )
                        .at_node(i),
                    );
                }
            }
        }
    }
    if !legal {
        return;
    }

    // Register coverage (MRP040): every boundary a signal crosses must
    // hold a register for it, adder edges and output sampling alike.
    let covered = |src: usize, b: u32| {
        net.registered
            .get(src)
            .is_some_and(|regs| regs.contains(&b))
    };
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            for t in [lhs, rhs] {
                let j = t.node.index();
                if j >= i {
                    continue;
                }
                for b in (net.stages[j] + 1)..=net.stages[i] {
                    if !covered(j, b) {
                        report.push(
                            Diagnostic::new(
                                LintCode::UnregisteredCrossing,
                                format!(
                                    "{}·x crosses boundary {b} into the stage-{} adder at \
                                     node {i} without a register",
                                    graph.value(NodeId::from_index(j)),
                                    net.stages[i]
                                ),
                            )
                            .at_node(j),
                        );
                    }
                }
            }
        }
    }
    for o in graph.outputs() {
        let j = o.term.node.index();
        if o.expected == 0 || j >= n {
            continue;
        }
        for b in (net.stages[j] + 1)..=net.latency {
            if !covered(j, b) {
                report.push(
                    Diagnostic::new(
                        LintCode::UnregisteredCrossing,
                        format!(
                            "output `{}` samples {}·x across boundary {b} without a register",
                            o.label,
                            graph.value(NodeId::from_index(j)),
                        ),
                    )
                    .at_node(j)
                    .at_signal(o.label.clone()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::{AdderGraph, Term};

    /// x -> a(7x) -> b(29x) -> c(117x); outputs on a and c.
    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        let c = g.add(Term::shifted(b, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(a), 7);
        g.push_output("c1", Term::of(c), 117);
        g
    }

    fn lint(net: &PipelinedNetlist) -> LintReport {
        let mut r = LintReport::default();
        run(net, &LintConfig::default(), &mut r);
        r
    }

    #[test]
    fn legal_fully_registered_pipeline_is_clean() {
        let net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 1]);
        let r = lint(&net);
        assert!(r.is_clean(), "{}", r.render_pretty());
        assert_eq!(r.stats.max_depth, 2);
    }

    #[test]
    fn dropped_register_raises_unregistered_crossing() {
        let mut net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 1]);
        assert!(net.drop_register(0, 1));
        let r = lint(&net);
        // Both stage-1 adders read x, so the missing register is reported
        // once per consuming edge.
        let hits = r.with_code(LintCode::UnregisteredCrossing);
        assert_eq!(hits.len(), 2, "{}", r.render_pretty());
        assert!(hits.iter().all(|d| d.node == Some(0)));
        // The dynamic gate agrees with the static finding.
        assert!(net.verify_outputs_latency_adjusted(&[1, 2, 3]).is_some());
    }

    #[test]
    fn dropped_output_register_names_the_signal() {
        let mut net = PipelinedNetlist::new(chain(), vec![0, 0, 1, 2]);
        assert!(net.drop_register(1, 2)); // a's boundary-2 register (output path)
        let r = lint(&net);
        let hits = r.with_code(LintCode::UnregisteredCrossing);
        assert_eq!(hits.len(), 1, "{}", r.render_pretty());
        assert_eq!(hits[0].signal.as_deref(), Some("c0"));
    }

    #[test]
    fn backward_edge_raises_retiming_illegal() {
        let net = PipelinedNetlist::new(chain(), vec![0, 1, 0, 1]);
        let r = lint(&net);
        assert!(!r.with_code(LintCode::RetimingIllegal).is_empty());
    }

    #[test]
    fn input_off_stage_zero_raises_retiming_illegal() {
        let net = PipelinedNetlist::new(chain(), vec![1, 1, 1, 1]);
        let r = lint(&net);
        let hits = r.with_code(LintCode::RetimingIllegal);
        assert_eq!(hits.len(), 1, "{}", r.render_pretty());
        assert_eq!(hits[0].node, Some(0));
    }
}
