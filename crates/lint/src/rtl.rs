//! RTL cross-checks: declared widths and simulated values of emitted
//! Verilog against the netlist the Verilog was generated from.
//!
//! The emitted module follows the `mrp-arch` naming convention: input `x`
//! extended into `x_ext`, one `n{i}` wire per adder node `i`, `_q`
//! registers in the pipelined variant, one output port per registered graph
//! output in declaration order.

use std::collections::HashMap;

use mrp_analysis::{Analyzer, Pass};
use mrp_arch::{AdderGraph, Node, NodeId};
use mrp_vsim::Module;

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::width::{node_widths, product_width};
use crate::LintConfig;

/// The RTL cross-check pass. Borrows the Verilog source being checked;
/// width requirements are recomputed at the RTL-declared input width (not
/// the analyzer context width), so this pass reads no cached analyses.
pub(crate) struct RtlPass<'a> {
    pub source: &'a str,
}

impl Pass<LintConfig, LintReport> for RtlPass<'_> {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn run(&self, az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
        run(az.graph(), self.source, config, report);
    }
}

pub(crate) fn run(graph: &AdderGraph, source: &str, config: &LintConfig, report: &mut LintReport) {
    let module = match Module::parse(source) {
        Ok(m) => m,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::RtlShapeMismatch,
                format!("Verilog does not parse: {e}"),
            ));
            return;
        }
    };

    let width = module.input.width;
    if width != config.input_width {
        report.push(
            Diagnostic::new(
                LintCode::InputWidthMismatch,
                format!(
                    "RTL input is {width} bit(s) but the netlist was analyzed at {}",
                    config.input_width
                ),
            )
            .at_signal(module.input.name.clone()),
        );
    }
    if width == 0 || width > 63 {
        report.push(
            Diagnostic::new(
                LintCode::WidthOverflow,
                format!("input width {width} is outside the 1..=63 analysis range"),
            )
            .at_signal(module.input.name.clone()),
        );
        return;
    }

    // Requirements are computed at the width the RTL actually declares —
    // that is what the hardware will see.
    let required = node_widths(graph, width);

    let mut declared: HashMap<&str, u32> = HashMap::new();
    for (name, w, _) in &module.wires {
        declared.insert(name.as_str(), *w);
    }
    for r in &module.regs {
        declared.insert(r.name.as_str(), r.width);
    }

    for (i, node) in graph.nodes().iter().enumerate() {
        if !matches!(node, Node::Add { .. }) {
            continue;
        }
        let name = format!("n{i}");
        match declared.get(name.as_str()) {
            None => {
                report.push(
                    Diagnostic::new(
                        LintCode::RtlShapeMismatch,
                        format!("adder node {i} has no `{name}` wire in the RTL"),
                    )
                    .at_node(i)
                    .at_signal(name),
                );
            }
            Some(&w) if w < required[i] => {
                report.push(
                    Diagnostic::new(
                        LintCode::WidthTruncation,
                        format!(
                            "wire is {w} bit(s) but {}·x needs {} at input width {width}",
                            graph.value(NodeId::from_index(i)),
                            required[i]
                        ),
                    )
                    .at_node(i)
                    .at_signal(name),
                );
            }
            Some(_) => {}
        }
        // A pipelined register carrying this node needs the same width.
        let qname = format!("n{i}_q");
        if let Some(&w) = declared.get(qname.as_str()) {
            if w < required[i] {
                report.push(
                    Diagnostic::new(
                        LintCode::WidthTruncation,
                        format!(
                            "register is {w} bit(s) but {}·x needs {} at input width {width}",
                            graph.value(NodeId::from_index(i)),
                            required[i]
                        ),
                    )
                    .at_node(i)
                    .at_signal(qname),
                );
            }
        }
    }

    // Output ports: positional match against the graph's registered outputs.
    let graph_outputs = graph.outputs();
    if module.outputs.len() != graph_outputs.len() {
        report.push(Diagnostic::new(
            LintCode::RtlShapeMismatch,
            format!(
                "RTL declares {} output(s), the netlist registers {}",
                module.outputs.len(),
                graph_outputs.len()
            ),
        ));
        return;
    }
    for (port, o) in module.outputs.iter().zip(graph_outputs) {
        if o.expected == 0 {
            continue;
        }
        let need = product_width(o.expected, width);
        if port.width < need {
            report.push(
                Diagnostic::new(
                    LintCode::WidthTruncation,
                    format!(
                        "output port is {} bit(s) but {}·x needs {need} at input width {width}",
                        port.width, o.expected
                    ),
                )
                .at_signal(port.name.clone()),
            );
        }
    }

    // Simulation cross-check on boundary and spot inputs. Widths proven
    // adequate above make an i64 comparison exact; if a width diagnostic
    // already fired, the truncated simulation will usually fail here too,
    // which is the desired signal.
    let x_min = -(1i64 << (width - 1));
    let x_max = (1i64 << (width - 1)) - 1;
    let mut probes = vec![x_min, -1, 0, 1, x_max];
    probes.retain(|x| (x_min..=x_max).contains(x));
    probes.sort_unstable();
    probes.dedup();
    for &x in &probes {
        let simulated = if module.is_sequential() {
            // Constant input for one cycle per register plus one reaches
            // steady state regardless of how many cut boundaries the
            // emitter placed; sample the last cycle.
            module.settle(x, module.regs.len() as u32 + 1)
        } else {
            module.evaluate(x)
        };
        let values = match simulated {
            Ok(v) => v,
            Err(e) => {
                report.push(Diagnostic::new(
                    LintCode::RtlShapeMismatch,
                    format!("RTL simulation failed: {e}"),
                ));
                return;
            }
        };
        let mut mismatched = false;
        for ((port, o), &got) in module.outputs.iter().zip(graph_outputs).zip(&values) {
            let want = if o.expected == 0 {
                0i128
            } else {
                o.expected as i128 * x as i128
            };
            if got as i128 != want {
                mismatched = true;
                report.push(
                    Diagnostic::new(
                        LintCode::RtlValueMismatch,
                        format!(
                            "simulating x = {x} gives {got}, expected {} = {}·{x}",
                            want, o.expected
                        ),
                    )
                    .at_signal(port.name.clone()),
                );
            }
        }
        if mismatched {
            // One failing input pinpoints the broken outputs; further
            // probes would repeat the same findings.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::{emit_verilog, emit_verilog_pipelined, Term};

    fn example() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        g.push_output("c0", Term::of(b), 29);
        g.push_output("c1", Term::negated(a), -7);
        g
    }

    fn lint(graph: &AdderGraph, src: &str, width: u32) -> LintReport {
        let mut r = LintReport::default();
        let cfg = LintConfig {
            input_width: width,
            ..LintConfig::default()
        };
        run(graph, src, &cfg, &mut r);
        r
    }

    #[test]
    fn emitted_verilog_is_clean() {
        let g = example();
        let v = emit_verilog(&g, "mb", 12);
        let r = lint(&g, &v, 12);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn pipelined_verilog_is_clean() {
        let g = example();
        let v = emit_verilog_pipelined(&g, "pipe", 12, 1);
        let r = lint(&g, &v, 12);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn narrowed_wire_is_flagged_and_missimulates() {
        let g = example();
        // 29·x at width 12 needs 17 bits; declare n2 with 9.
        let v = emit_verilog(&g, "mb", 12).replace("wire signed [17:0] n2", "wire signed [8:0] n2");
        let r = lint(&g, &v, 12);
        let trunc = r.with_code(LintCode::WidthTruncation);
        assert_eq!(trunc.len(), 1, "{}", r.render_pretty());
        assert_eq!(trunc[0].signal.as_deref(), Some("n2"));
        assert!(!r.with_code(LintCode::RtlValueMismatch).is_empty());
    }

    #[test]
    fn parse_failure_is_reported() {
        let g = example();
        let r = lint(&g, "module broken (", 12);
        assert_eq!(r.with_code(LintCode::RtlShapeMismatch).len(), 1);
    }

    #[test]
    fn input_width_mismatch_is_reported() {
        let g = example();
        let v = emit_verilog(&g, "mb", 10);
        let r = lint(&g, &v, 12);
        assert_eq!(r.with_code(LintCode::InputWidthMismatch).len(), 1);
    }

    #[test]
    fn missing_node_wire_is_reported() {
        let g = example();
        let v = emit_verilog(&g, "mb", 12)
            .lines()
            .filter(|l| !l.contains("n1 ="))
            .collect::<Vec<_>>()
            .join("\n");
        let r = lint(&g, &v, 12);
        assert!(!r.with_code(LintCode::RtlShapeMismatch).is_empty());
    }
}
