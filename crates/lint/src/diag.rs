//! Diagnostic codes, severities, and report rendering.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the netlist or RTL is wrong (or cannot be proven right);
/// `Warning` flags structure that is legal but wasteful or suspicious;
/// `Info` is advisory output that never fails a lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Legal but suspicious or wasteful.
    Warning,
    /// The design is wrong or unprovable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Defines [`LintCode`] from one table: variant, `MRPnnn` string, default
/// severity, and one-line description. The single source keeps the code
/// string, severity map, description map, and [`LintCode::ALL`] listing
/// from drifting apart as codes are appended.
macro_rules! lint_codes {
    ($(
        $(#[$doc:meta])*
        $variant:ident = $code:literal, $severity:ident, $desc:literal;
    )+) => {
        /// Stable diagnostic codes.
        ///
        /// Codes are grouped by pass: `MRP00x` structural invariants,
        /// `MRP01x` width inference, `MRP02x` equivalence, `MRP03x`
        /// depth/critical path, `MRP04x` pipeline/retiming. Codes are
        /// append-only: a released code never changes meaning, so CI
        /// filters and suppression lists stay valid across versions.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum LintCode {
            $( $(#[$doc])* $variant, )+
        }

        impl LintCode {
            /// Every code, in `MRPnnn` order (append-only).
            pub const ALL: &'static [LintCode] = &[ $( LintCode::$variant, )+ ];

            /// The stable `MRPnnn` code string.
            pub fn as_str(self) -> &'static str {
                match self { $( LintCode::$variant => $code, )+ }
            }

            /// The default severity of this code.
            pub fn severity(self) -> Severity {
                match self { $( LintCode::$variant => Severity::$severity, )+ }
            }

            /// One-line description of what the code flags.
            pub fn description(self) -> &'static str {
                match self { $( LintCode::$variant => $desc, )+ }
            }
        }
    };
}

lint_codes! {
    /// `MRP001` — an adder node is not reachable from any output.
    DeadNode = "MRP001", Warning,
        "adder node not reachable from any nonzero output";
    /// `MRP002` — a term references a node id outside the graph.
    UnknownNodeRef = "MRP002", Error,
        "operand or output references a node outside the graph";
    /// `MRP003` — an operand references the node itself or a later node
    /// (the node list is not in topological order / contains a cycle).
    NotTopological = "MRP003", Error,
        "operand reads the node itself or a later node";
    /// `MRP004` — an adder computes zero or a pure shift/negation of one
    /// of its own operands; the adder is free wiring in disguise.
    RedundantAdder = "MRP004", Warning,
        "adder computes zero or a free shift/negation of an operand";
    /// `MRP005` — two adder nodes compute the same constant (missed CSE).
    DuplicateNode = "MRP005", Warning,
        "two adders compute the same constant (missed CSE)";
    /// `MRP006` — a node's fanout exceeds the configured threshold.
    HighFanout = "MRP006", Info,
        "node fanout exceeds the configured threshold";
    /// `MRP007` — the graph registers no outputs.
    NoOutputs = "MRP007", Warning,
        "graph has adders but registers no nonzero outputs";
    /// `MRP010` — a declared wire/port width cannot hold the signal's
    /// worst-case settled value.
    WidthTruncation = "MRP010", Error,
        "declared width cannot hold the worst-case settled value";
    /// `MRP011` — the RTL's input port width disagrees with the width the
    /// netlist was analyzed at.
    InputWidthMismatch = "MRP011", Error,
        "RTL input width disagrees with the analyzed width";
    /// `MRP012` — a required width exceeds the 63-bit analysis range
    /// (`i64` value tracking, `mrp-vsim` simulation).
    WidthOverflow = "MRP012", Error,
        "required width exceeds the 63-bit analysis range";
    /// `MRP013` — the RTL does not structurally match the netlist
    /// (parse failure, missing node wire, output count mismatch).
    RtlShapeMismatch = "MRP013", Error,
        "RTL does not structurally match the netlist";
    /// `MRP020` — an output's symbolically evaluated constant differs from
    /// its registered expected coefficient.
    CoeffMismatch = "MRP020", Error,
        "output reconstructs a different constant than registered";
    /// `MRP021` — a node's structurally recomputed constant differs from
    /// the tracked value cache.
    TrackedValueMismatch = "MRP021", Error,
        "tracked value cache disagrees with the adder structure";
    /// `MRP022` — simulating the emitted RTL produced a wrong product.
    RtlValueMismatch = "MRP022", Error,
        "RTL simulation produced a wrong product";
    /// `MRP030` — a node's cached adder depth differs from the recomputed
    /// depth.
    DepthCacheMismatch = "MRP030", Error,
        "cached adder depth disagrees with the structure";
    /// `MRP031` — the recomputed critical path differs from the depth the
    /// optimizer reported.
    DepthMismatch = "MRP031", Error,
        "recomputed critical path disagrees with the reported depth";
    /// `MRP040` — a signal crosses a pipeline stage boundary without a
    /// register, so consumers would see the wrong cycle's value.
    UnregisteredCrossing = "MRP040", Error,
        "signal crosses a pipeline boundary without a register";
    /// `MRP041` — a stage assignment is illegal: an adder consumes a value
    /// from a later stage (needed before it exists), the input is off
    /// stage 0, or a stage lies beyond the latency.
    RetimingIllegal = "MRP041", Error,
        "stage assignment needs a value before it is produced";
    /// `MRP042` — a node's inferred width exceeds the declared growth
    /// bound (legal, but the datapath is wider than the design budgeted).
    WidthGrowthExceeded = "MRP042", Warning,
        "inferred width grows past the declared bound";
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding, with source-node provenance where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity (defaults to [`LintCode::severity`]).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Index of the netlist node the finding anchors to, if any.
    pub node: Option<usize>,
    /// RTL signal or output label the finding anchors to, if any.
    pub signal: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            node: None,
            signal: None,
        }
    }

    /// Attaches node provenance.
    pub fn at_node(mut self, node: usize) -> Self {
        self.node = Some(node);
        self
    }

    /// Attaches an RTL signal / output label.
    pub fn at_signal(mut self, signal: impl Into<String>) -> Self {
        self.signal = Some(signal.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        if let Some(n) = self.node {
            write!(f, " (node {n})")?;
        }
        if let Some(s) = &self.signal {
            write!(f, " (signal `{s}`)")?;
        }
        Ok(())
    }
}

/// Summary statistics gathered while linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintStats {
    /// Total nodes including the input.
    pub nodes: usize,
    /// Adder nodes.
    pub adders: usize,
    /// Registered outputs.
    pub outputs: usize,
    /// Recomputed critical path in adder stages.
    pub max_depth: u32,
    /// Largest fanout over nodes.
    pub max_fanout: usize,
    /// Minimal internal wordlength (bits) that holds every node's settled
    /// value at the analyzed input width.
    pub min_safe_width: u32,
}

/// The result of a lint run: diagnostics plus summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Summary statistics.
    pub stats: LintStats,
}

impl LintReport {
    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's diagnostics into this one; stats keep the
    /// element-wise maximum so the merged summary stays conservative.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        let s = &mut self.stats;
        let o = other.stats;
        s.nodes = s.nodes.max(o.nodes);
        s.adders = s.adders.max(o.adders);
        s.outputs = s.outputs.max(o.outputs);
        s.max_depth = s.max_depth.max(o.max_depth);
        s.max_fanout = s.max_fanout.max(o.max_fanout);
        s.min_safe_width = s.min_safe_width.max(o.min_safe_width);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// `true` when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` when the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the human-readable report.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let s = &self.stats;
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s) — {} nodes ({} adders), \
             {} outputs, depth {}, max fanout {}, min safe width {}\n",
            self.error_count(),
            self.warning_count(),
            s.nodes,
            s.adders,
            s.outputs,
            s.max_depth,
            s.max_fanout,
            s.min_safe_width,
        ));
        out
    }

    /// Renders the report as a single JSON object (stable schema:
    /// `{"diagnostics": [...], "stats": {...}, "errors": n, "warnings": n}`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":{}",
                d.code,
                d.severity,
                json_string(&d.message)
            ));
            if let Some(n) = d.node {
                out.push_str(&format!(",\"node\":{n}"));
            }
            if let Some(s) = &d.signal {
                out.push_str(&format!(",\"signal\":{}", json_string(s)));
            }
            out.push('}');
        }
        let s = &self.stats;
        out.push_str(&format!(
            "],\"stats\":{{\"nodes\":{},\"adders\":{},\"outputs\":{},\
             \"max_depth\":{},\"max_fanout\":{},\"min_safe_width\":{}}},\
             \"errors\":{},\"warnings\":{}}}",
            s.nodes,
            s.adders,
            s.outputs,
            s.max_depth,
            s.max_fanout,
            s.min_safe_width,
            self.error_count(),
            self.warning_count(),
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(LintCode::DeadNode.as_str(), "MRP001");
        assert_eq!(LintCode::WidthTruncation.as_str(), "MRP010");
        assert_eq!(LintCode::CoeffMismatch.as_str(), "MRP020");
        assert_eq!(LintCode::DepthMismatch.as_str(), "MRP031");
        assert_eq!(LintCode::UnregisteredCrossing.as_str(), "MRP040");
        assert_eq!(LintCode::RetimingIllegal.as_str(), "MRP041");
        assert_eq!(LintCode::WidthGrowthExceeded.as_str(), "MRP042");
    }

    #[test]
    fn code_table_is_consistent() {
        // ALL is sorted by code string, strings are unique and MRPnnn.
        let strs: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted, "codes must be unique and in MRPnnn order");
        for c in LintCode::ALL {
            assert!(c.as_str().starts_with("MRP") && c.as_str().len() == 6);
            assert!(!c.description().is_empty());
        }
        assert_eq!(LintCode::ALL.len(), 19);
    }

    #[test]
    fn new_codes_have_expected_severities() {
        assert_eq!(LintCode::UnregisteredCrossing.severity(), Severity::Error);
        assert_eq!(LintCode::RetimingIllegal.severity(), Severity::Error);
        assert_eq!(LintCode::WidthGrowthExceeded.severity(), Severity::Warning);
    }

    #[test]
    fn report_counts_severities() {
        let mut r = LintReport::default();
        r.push(Diagnostic::new(LintCode::DeadNode, "a"));
        r.push(Diagnostic::new(LintCode::CoeffMismatch, "b"));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_render_is_wellformed_enough() {
        let mut r = LintReport::default();
        r.push(
            Diagnostic::new(LintCode::WidthTruncation, "wire too narrow")
                .at_node(3)
                .at_signal("n3"),
        );
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"MRP010\""));
        assert!(j.contains("\"node\":3"));
        assert!(j.contains("\"signal\":\"n3\""));
        assert!(j.contains("\"errors\":1"));
    }

    #[test]
    fn merge_keeps_max_stats() {
        let mut a = LintReport {
            stats: LintStats {
                nodes: 4,
                min_safe_width: 20,
                ..LintStats::default()
            },
            ..LintReport::default()
        };
        let b = LintReport {
            stats: LintStats {
                nodes: 2,
                min_safe_width: 25,
                ..LintStats::default()
            },
            ..LintReport::default()
        };
        a.merge(b);
        assert_eq!(a.stats.nodes, 4);
        assert_eq!(a.stats.min_safe_width, 25);
    }
}
