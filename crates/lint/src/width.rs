//! Bit-width inference through shifts and adds.
//!
//! The pure width formulas live in [`mrp_analysis::width`] (they are
//! shared with the cached [`WidthMap`] analysis); this module re-exports
//! them unchanged for the crate's public API and implements the `MRP01x`
//! lint pass on top of the cached per-graph table.

use mrp_analysis::{Analysis, Analyzer, Pass, WidthMap};
use mrp_arch::NodeId;

pub use mrp_analysis::width::{
    min_safe_width, node_widths, product_width, signed_width, term_width,
};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

/// The graph-side `MRP01x` pass (`MRP012` overflow, `MRP042` growth
/// bound). Reads the [`WidthMap`] analysis.
pub(crate) struct WidthPass;

impl Pass<LintConfig, LintReport> for WidthPass {
    fn name(&self) -> &'static str {
        "width"
    }

    fn analyses(&self) -> &'static [&'static str] {
        &[WidthMap::NAME]
    }

    fn run(&self, az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
        run(az, config, report);
    }
}

fn run(az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
    debug_assert_eq!(az.ctx().input_width, config.input_width);
    let graph = az.graph();
    let wm = az.get_analysis::<WidthMap>();
    for (i, &w) in wm.widths.iter().enumerate() {
        if w > 63 {
            report.push(
                Diagnostic::new(
                    LintCode::WidthOverflow,
                    format!(
                        "{}·x needs {w} bit(s) at input width {}, beyond the 63-bit \
                         analysis range",
                        graph.value(NodeId::from_index(i)),
                        config.input_width
                    ),
                )
                .at_node(i),
            );
        }
    }
    if let Some(bound) = config.width_growth_bound {
        for (i, &w) in wm.widths.iter().enumerate() {
            if w > bound {
                report.push(
                    Diagnostic::new(
                        LintCode::WidthGrowthExceeded,
                        format!(
                            "{}·x needs {w} bit(s) at input width {}, past the declared \
                             growth bound of {bound}",
                            graph.value(NodeId::from_index(i)),
                            config.input_width
                        ),
                    )
                    .at_node(i),
                );
            }
        }
    }
    report.stats.min_safe_width = wm.min_safe;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_analysis::AnalysisContext;
    use mrp_arch::{AdderGraph, Term};

    fn lint(graph: &AdderGraph, config: &LintConfig) -> LintReport {
        let az = Analyzer::new(
            graph,
            AnalysisContext {
                input_width: config.input_width,
            },
        );
        let mut r = LintReport::default();
        run(&az, config, &mut r);
        r
    }

    #[test]
    fn signed_width_basics() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-2), 2);
        assert_eq!(signed_width(127), 8);
        assert_eq!(signed_width(128), 9);
        assert_eq!(signed_width(-128), 8);
        assert_eq!(signed_width(-129), 9);
    }

    #[test]
    fn product_width_matches_exhaustive_check() {
        for &c in &[1i64, -1, 3, -3, 7, 45, -1000] {
            for w in 2u32..10 {
                let need = product_width(c, w);
                let lo = -(1i128 << (need - 1));
                let hi = (1i128 << (need - 1)) - 1;
                for x in [-(1i64 << (w - 1)), -1, 0, 1, (1i64 << (w - 1)) - 1] {
                    let v = c as i128 * x as i128;
                    assert!(v >= lo && v <= hi, "c={c} w={w} x={x} v={v} need={need}");
                }
                // Minimality: one bit fewer fails somewhere.
                if need > 1 {
                    let lo = -(1i128 << (need - 2));
                    let hi = (1i128 << (need - 2)) - 1;
                    let xm = -(1i64 << (w - 1));
                    let xmx = (1i64 << (w - 1)) - 1;
                    let overflowed = [xm, xmx].iter().any(|&x| {
                        let v = c as i128 * x as i128;
                        v < lo || v > hi
                    });
                    assert!(overflowed, "width {need} not minimal for c={c} w={w}");
                }
            }
        }
    }

    #[test]
    fn min_safe_width_grows_with_constants() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let n = g.add(Term::shifted(x, 6), Term::negated(x)).unwrap(); // 63
        g.push_output("o", Term::of(n), 63);
        let w8 = min_safe_width(&g, 8);
        // 63 * -128 = -8064 → 14 bits.
        assert_eq!(w8, 14);
        assert!(min_safe_width(&g, 16) > w8);
    }

    #[test]
    fn growth_bound_fires_only_when_configured() {
        let mut g = AdderGraph::new();
        let x = g.input();
        // 255·x at width 16 needs 24 bits.
        let n = g.add(Term::shifted(x, 8), Term::negated(x)).unwrap();
        g.push_output("o", Term::of(n), 255);
        let silent = lint(&g, &LintConfig::default());
        assert!(silent.with_code(LintCode::WidthGrowthExceeded).is_empty());

        let cfg = LintConfig {
            width_growth_bound: Some(20),
            ..LintConfig::default()
        };
        let r = lint(&g, &cfg);
        let hits = r.with_code(LintCode::WidthGrowthExceeded);
        assert_eq!(hits.len(), 1, "{}", r.render_pretty());
        assert_eq!(hits[0].node, Some(n.index()));
        assert_eq!(hits[0].severity, crate::Severity::Warning);

        let loose = LintConfig {
            width_growth_bound: Some(24),
            ..LintConfig::default()
        };
        assert!(lint(&g, &loose)
            .with_code(LintCode::WidthGrowthExceeded)
            .is_empty());
    }
}
