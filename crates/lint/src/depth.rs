//! Depth / critical-path analysis.
//!
//! Checks the cached [`Depth`] analysis (a structural recompute) against
//! the graph's own depth cache and, when provided, against the critical
//! path the optimizer reported (the paper's depth constraint is a hard
//! design parameter, so a silent mismatch would invalidate Table 1 style
//! accounting).

use mrp_analysis::{Analysis, Analyzer, Depth, Pass};
use mrp_arch::{AdderGraph, NodeId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

/// Recomputed adder depth of every node, index = node index. Operand
/// references that are not strictly earlier are treated as depth 0 so the
/// recompute stays total on malformed graphs (the structure pass reports
/// those separately).
pub fn recompute_depths(graph: &AdderGraph) -> Vec<u32> {
    mrp_analysis::recompute_depths(graph)
}

/// The `MRP03x` pass. Reads the [`Depth`] analysis.
pub(crate) struct DepthPass;

impl Pass<LintConfig, LintReport> for DepthPass {
    fn name(&self) -> &'static str {
        "depth"
    }

    fn analyses(&self) -> &'static [&'static str] {
        &[Depth::NAME]
    }

    fn run(&self, az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
        run(az, config, report);
    }
}

fn run(az: &Analyzer<'_>, config: &LintConfig, report: &mut LintReport) {
    let graph = az.graph();
    let depth = az.get_analysis::<Depth>();
    report.stats.max_depth = depth.max;

    for (i, &d) in depth.depths.iter().enumerate() {
        let cached = graph.depth(NodeId::from_index(i));
        if d != cached {
            report.push(
                Diagnostic::new(
                    LintCode::DepthCacheMismatch,
                    format!("cached depth {cached} but structural depth is {d}"),
                )
                .at_node(i),
            );
        }
    }

    if let Some(expected) = config.expected_depth {
        if depth.max != expected {
            report.push(Diagnostic::new(
                LintCode::DepthMismatch,
                format!(
                    "optimizer reported a critical path of {expected} adder stage(s) \
                     but the netlist has {}",
                    depth.max
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_analysis::AnalysisContext;
    use mrp_arch::Term;

    fn lint(graph: &AdderGraph, config: &LintConfig) -> LintReport {
        let az = Analyzer::new(graph, AnalysisContext::default());
        let mut r = LintReport::default();
        run(&az, config, &mut r);
        r
    }

    fn two_level() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(b), 29);
        g
    }

    #[test]
    fn recompute_matches_cache() {
        let g = two_level();
        assert_eq!(recompute_depths(&g), vec![0, 1, 2]);
        let r = lint(&g, &LintConfig::default());
        assert!(r.is_clean(), "{}", r.render_pretty());
        assert_eq!(r.stats.max_depth, 2);
    }

    #[test]
    fn expected_depth_mismatch_detected() {
        let g = two_level();
        let cfg = LintConfig {
            expected_depth: Some(3),
            ..LintConfig::default()
        };
        let r = lint(&g, &cfg);
        assert_eq!(r.with_code(LintCode::DepthMismatch).len(), 1);
    }

    #[test]
    fn matching_expected_depth_is_clean() {
        let g = two_level();
        let cfg = LintConfig {
            expected_depth: Some(2),
            ..LintConfig::default()
        };
        let r = lint(&g, &cfg);
        assert!(r.is_clean());
    }
}
