//! Depth / critical-path analysis.
//!
//! Recomputes every node's adder depth from the structure and checks it
//! against the graph's cached depths and, when provided, against the
//! critical path the optimizer reported (the paper's depth constraint is a
//! hard design parameter, so a silent mismatch would invalidate Table 1
//! style accounting).

use mrp_arch::{AdderGraph, Node, NodeId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::LintConfig;

/// Recomputed adder depth of every node, index = node index. Operand
/// references that are not strictly earlier are treated as depth 0 so the
/// recompute stays total on malformed graphs (the structure pass reports
/// those separately).
pub fn recompute_depths(graph: &AdderGraph) -> Vec<u32> {
    let mut d = vec![0u32; graph.len()];
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let of = |j: usize| if j < i { d[j] } else { 0 };
            d[i] = 1 + of(lhs.node.index()).max(of(rhs.node.index()));
        }
    }
    d
}

pub(crate) fn run(graph: &AdderGraph, config: &LintConfig, report: &mut LintReport) {
    let depths = recompute_depths(graph);
    let max = depths.iter().copied().max().unwrap_or(0);
    report.stats.max_depth = max;

    for (i, &d) in depths.iter().enumerate() {
        let cached = graph.depth(NodeId::from_index(i));
        if d != cached {
            report.push(
                Diagnostic::new(
                    LintCode::DepthCacheMismatch,
                    format!("cached depth {cached} but structural depth is {d}"),
                )
                .at_node(i),
            );
        }
    }

    if let Some(expected) = config.expected_depth {
        if max != expected {
            report.push(Diagnostic::new(
                LintCode::DepthMismatch,
                format!(
                    "optimizer reported a critical path of {expected} adder stage(s) \
                     but the netlist has {max}"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::Term;

    fn two_level() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(b), 29);
        g
    }

    #[test]
    fn recompute_matches_cache() {
        let g = two_level();
        assert_eq!(recompute_depths(&g), vec![0, 1, 2]);
        let mut r = LintReport::default();
        run(&g, &LintConfig::default(), &mut r);
        assert!(r.is_clean(), "{}", r.render_pretty());
        assert_eq!(r.stats.max_depth, 2);
    }

    #[test]
    fn expected_depth_mismatch_detected() {
        let g = two_level();
        let cfg = LintConfig {
            expected_depth: Some(3),
            ..LintConfig::default()
        };
        let mut r = LintReport::default();
        run(&g, &cfg, &mut r);
        assert_eq!(r.with_code(LintCode::DepthMismatch).len(), 1);
    }

    #[test]
    fn matching_expected_depth_is_clean() {
        let g = two_level();
        let cfg = LintConfig {
            expected_depth: Some(2),
            ..LintConfig::default()
        };
        let mut r = LintReport::default();
        run(&g, &cfg, &mut r);
        assert!(r.is_clean());
    }
}
