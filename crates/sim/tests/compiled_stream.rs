//! Fuzzing the compiled streaming path against the tree-walk oracle.
//!
//! Every case builds a filter, streams deterministic noise through
//! [`CompiledFir`] and [`StreamingFir`] in mismatched block sizes, and
//! requires byte equality — the `mrp-sim` half of the differential-oracle
//! policy (`docs/sim.md`).

use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_ptest::run_cases;
use mrp_sim::{
    compiled_stream_matches, impulse_response, signal, CompiledFir, OverflowMode, StreamingFir,
};

fn simple_filter(coeffs: &[i64]) -> mrp_arch::FirFilter {
    let (mut g, outs) = mrp_arch::simple_multiplier_block(coeffs, mrp_numrep::Repr::Csd).unwrap();
    for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    mrp_arch::FirFilter::new(g)
}

#[test]
fn compiled_equals_tree_walk_on_random_filters() {
    run_cases("sim_compiled_vs_tree_walk", 32, |rng| {
        let mut coeffs = rng.vec_i64(1, 10, -2000, 2000);
        if coeffs.iter().all(|&c| c == 0) {
            coeffs[0] = 1;
        }
        let f = simple_filter(&coeffs);
        let input = rng.vec_i64(0, 300, -30_000, 30_000);
        let width = rng.i64_in(8, 48) as u32;
        let mode = if rng.i64_in(0, 1) == 0 {
            OverflowMode::Saturate
        } else {
            OverflowMode::Wrap
        };
        assert!(
            compiled_stream_matches(&f, &input, width, mode),
            "coeffs {coeffs:?} width {width} mode {mode:?}"
        );
    });
}

#[test]
fn compiled_impulse_equivalence_on_mrpf_optimized_filters() {
    // The MRPF-optimized netlist (not just the simple CSD block) must
    // compile to a program whose impulse response is the tap vector.
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let f = mrp_arch::FirFilter::new(r.graph.clone());
    let mut want = coeffs.to_vec();
    want.extend([0, 0, 0, 0]);
    assert_eq!(impulse_response(&f, 12), want);
}

#[test]
fn compiled_streaming_mrpf_equals_batch_over_a_long_chirp() {
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let f = mrp_arch::FirFilter::new(r.graph.clone());
    let x = signal::chirp(20_000, 0.01, 0.45, 5000.0);
    let batch = f.filter(&x);
    let mut compiled = CompiledFir::new(&f, 48, OverflowMode::Saturate);
    let mut oracle = StreamingFir::new(f, 48, OverflowMode::Saturate);
    let mut got = Vec::new();
    for chunk in x.chunks(97) {
        got.extend(compiled.process(chunk));
    }
    assert_eq!(got, batch);
    // And the tree-walk streamer agrees, closing the three-way loop.
    assert_eq!(oracle.process(&x), batch);
}
