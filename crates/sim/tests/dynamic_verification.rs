//! Dynamic verification: MRPF architectures processing real signals —
//! tone rejection matches the designed frequency response, and SNR scales
//! with coefficient wordlength.

use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_filters::response::amplitude_response;
use mrp_filters::{remez, FilterSpec};
use mrp_numrep::{quantize, Scaling};
use mrp_sim::{goertzel, signal, snr_db, OverflowMode, StreamingFir};

fn mrpf_filter(coeffs: &[i64]) -> mrp_arch::FirFilter {
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(coeffs)
        .unwrap();
    mrp_arch::FirFilter::new(r.graph.clone())
}

#[test]
fn stopband_tone_is_rejected_as_designed() {
    let spec = FilterSpec::lowpass(0.10, 0.18, 0.3, 50.0);
    let taps = remez(48, &spec.to_bands()).unwrap();
    let q = quantize(&taps, 14, Scaling::Uniform).unwrap();
    let filter = mrpf_filter(&q.values);

    let n = 8192;
    let pass_f = 0.05;
    let stop_f = 0.30;
    let x = signal::two_tone(n, pass_f, 2000.0, stop_f, 2000.0);
    let y = filter.filter(&x);
    // Skip the transient.
    let settled = &y[100..];
    let pass_level = goertzel(settled, pass_f);
    let stop_level = goertzel(settled, stop_f);
    // Output is scaled by the integer coefficient gain; compare the ratio
    // against the designed amplitude response ratio.
    let gain_scale = |f: f64| {
        amplitude_response(&q.values.iter().map(|&v| v as f64).collect::<Vec<_>>(), f).abs()
    };
    let designed_rejection = gain_scale(pass_f) / gain_scale(stop_f).max(1e-9);
    let measured_rejection = pass_level / stop_level.max(1e-9);
    assert!(
        measured_rejection > designed_rejection * 0.2,
        "measured rejection {measured_rejection:.1} far below designed {designed_rejection:.1}"
    );
    assert!(
        measured_rejection > 100.0,
        "stopband tone leaked: pass {pass_level:.1}, stop {stop_level:.1}"
    );
}

#[test]
fn snr_improves_with_wordlength() {
    let spec = FilterSpec::lowpass(0.12, 0.22, 0.3, 50.0);
    let taps = remez(40, &spec.to_bands()).unwrap();
    let x = signal::white_noise(4096, 1 << 14, 99);
    let x_f: Vec<f64> = x.iter().map(|&v| v as f64).collect();
    // Float reference output with the *unquantized* taps, scaled per
    // quantization so outputs are comparable.
    let snr_at = |w: u32| {
        let q = quantize(&taps, w, Scaling::Uniform).unwrap();
        let filter = mrpf_filter(&q.values);
        let y = filter.filter(&x);
        // Reference: float convolution with the exact real taps, scaled by
        // the quantization gain (values are c * 2^(W-1)-ish).
        let scale: f64 = q.values.iter().map(|&v| v as f64).sum::<f64>() / taps.iter().sum::<f64>();
        let reference: Vec<f64> = (0..x.len())
            .map(|n| {
                let mut acc = 0.0;
                for (i, &t) in taps.iter().enumerate() {
                    if n >= i {
                        acc += t * x_f[n - i];
                    }
                }
                acc * scale
            })
            .collect();
        snr_db(&y, &reference).snr_db
    };
    let lo = snr_at(8);
    let hi = snr_at(16);
    assert!(
        hi > lo + 20.0,
        "SNR should improve strongly with wordlength: {lo:.1} dB -> {hi:.1} dB"
    );
    assert!(hi > 60.0, "16-bit SNR too low: {hi:.1} dB");
}

#[test]
fn streaming_mrpf_equals_batch_mrpf() {
    let spec = FilterSpec::lowpass(0.15, 0.25, 0.5, 40.0);
    let taps = remez(24, &spec.to_bands()).unwrap();
    let coeffs = quantize(&taps, 10, Scaling::Uniform).unwrap().values;
    let filter = mrpf_filter(&coeffs);
    let x = signal::chirp(1000, 0.01, 0.45, 5000.0);
    let batch = filter.filter(&x);
    let mut s = StreamingFir::new(filter, 48, OverflowMode::Saturate);
    let mut streamed = Vec::new();
    for chunk in x.chunks(33) {
        streamed.extend(s.process(chunk));
    }
    assert_eq!(streamed, batch);
}
