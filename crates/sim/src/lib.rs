//! Fixed-point streaming simulation substrate.
//!
//! The MRPF paper evaluates architectures statically (adder counts, area);
//! a downstream user also needs to know what the *quantized* filter does to
//! real signals. This crate provides the dynamic-verification side:
//!
//! * [`signal`] — deterministic test-signal generators (impulse, step,
//!   white noise, sine tones, two-tone mixtures) scaled to integer
//!   datapaths;
//! * [`goertzel`] — single-bin DFT measurement (the classic Goertzel
//!   recurrence) for tone-level checks through integer filters;
//! * [`snr_db`] — signal-to-noise/error ratios between a fixed-point
//!   architecture and its floating-point reference;
//! * [`StreamingFir`] — block-based streaming around
//!   [`mrp_arch::FirFilter`] with saturation or wrapping output modes;
//! * [`CompiledFir`] — the same streaming semantics executed through the
//!   `mrp-exec` compiled linear IR (lane-batched, ~10× faster), with the
//!   tree walk kept as the differential oracle.
//!
//! # Examples
//!
//! ```
//! use mrp_sim::{goertzel, signal};
//!
//! // A pure tone measured at its own bin is strong; elsewhere weak.
//! let tone = signal::sine(1024, 0.125, 1000.0);
//! let on = goertzel(&tone, 0.125);
//! let off = goertzel(&tone, 0.33);
//! assert!(on > 100.0 * off);
//! ```

#![warn(missing_docs)]

mod compiled;
mod goertzel;
pub mod signal;
mod snr;
mod stream;

pub use compiled::{compiled_stream_matches, impulse_response, CompiledFir};
pub use goertzel::{goertzel, goertzel_db};
pub use snr::{snr_db, SnrReport};
pub use stream::{equal_with_latency, OverflowMode, StreamingFir};
