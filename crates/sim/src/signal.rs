//! Deterministic test-signal generators.
//!
//! All generators are reproducible (no external RNG): noise uses a fixed
//! LCG so failures replay exactly.

/// Unit impulse of length `n` with amplitude `amp` at sample 0.
///
/// # Examples
///
/// ```
/// use mrp_sim::signal::impulse;
/// let x = impulse(4, 100);
/// assert_eq!(x, vec![100, 0, 0, 0]);
/// ```
pub fn impulse(n: usize, amp: i64) -> Vec<i64> {
    let mut v = vec![0; n];
    if n > 0 {
        v[0] = amp;
    }
    v
}

/// Step of length `n` with amplitude `amp`.
pub fn step(n: usize, amp: i64) -> Vec<i64> {
    vec![amp; n]
}

/// Integer-rounded sine tone at normalized frequency `f` (cycles/sample)
/// with the given peak amplitude.
///
/// # Examples
///
/// ```
/// use mrp_sim::signal::sine;
/// let x = sine(8, 0.25, 1000.0); // quarter-rate tone
/// assert_eq!(x[0], 0);
/// assert_eq!(x[1], 1000);
/// assert_eq!(x[2], 0);
/// assert_eq!(x[3], -1000);
/// ```
pub fn sine(n: usize, f: f64, amplitude: f64) -> Vec<i64> {
    (0..n)
        .map(|i| (amplitude * (2.0 * std::f64::consts::PI * f * i as f64).sin()).round() as i64)
        .collect()
}

/// Sum of two tones, for stopband-rejection tests.
pub fn two_tone(n: usize, f1: f64, a1: f64, f2: f64, a2: f64) -> Vec<i64> {
    let t1 = sine(n, f1, a1);
    let t2 = sine(n, f2, a2);
    t1.iter().zip(&t2).map(|(&a, &b)| a + b).collect()
}

/// Deterministic uniform white noise in `[-amp, amp]` from a fixed LCG
/// seeded by `seed`.
///
/// # Examples
///
/// ```
/// use mrp_sim::signal::white_noise;
/// let a = white_noise(16, 100, 7);
/// let b = white_noise(16, 100, 7);
/// assert_eq!(a, b); // reproducible
/// assert!(a.iter().all(|&v| v.abs() <= 100));
/// ```
pub fn white_noise(n: usize, amp: i64, seed: u64) -> Vec<i64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            ((2.0 * u - 1.0) * amp as f64).round() as i64
        })
        .collect()
}

/// Linear chirp sweeping `f0 → f1` over `n` samples.
pub fn chirp(n: usize, f0: f64, f1: f64, amplitude: f64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            let f = f0 + (f1 - f0) * t / n.max(1) as f64 / 2.0;
            (amplitude * (2.0 * std::f64::consts::PI * f * t).sin()).round() as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_and_step() {
        assert_eq!(impulse(3, 5), vec![5, 0, 0]);
        assert_eq!(step(3, 5), vec![5, 5, 5]);
        assert!(impulse(0, 5).is_empty());
    }

    #[test]
    fn sine_peak_amplitude() {
        let x = sine(1000, 0.013, 500.0);
        let max = x.iter().map(|v| v.abs()).max().unwrap();
        assert!((495..=500).contains(&max));
    }

    #[test]
    fn noise_amplitude_bounded_and_zero_meanish() {
        let x = white_noise(10_000, 1000, 42);
        assert!(x.iter().all(|&v| v.abs() <= 1000));
        let mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(white_noise(64, 100, 1), white_noise(64, 100, 2));
    }

    #[test]
    fn two_tone_superposes() {
        let t = two_tone(16, 0.25, 100.0, 0.125, 50.0);
        let a = sine(16, 0.25, 100.0);
        let b = sine(16, 0.125, 50.0);
        for i in 0..16 {
            assert_eq!(t[i], a[i] + b[i]);
        }
    }

    #[test]
    fn chirp_is_bounded() {
        let x = chirp(512, 0.01, 0.4, 300.0);
        assert!(x.iter().all(|&v| v.abs() <= 300));
    }
}
