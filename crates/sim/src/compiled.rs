//! Compiled streaming: the [`StreamingFir`] semantics executed through
//! the `mrp-exec` lane-batched interpreter instead of the per-sample
//! tree walk.
//!
//! [`CompiledFir`] is a drop-in counterpart of [`StreamingFir`]: same
//! block/state/overflow behaviour, ~an order of magnitude faster, with
//! the tree walk retained as the differential oracle (the property tests
//! stream both and require byte equality). Impulse/stream equivalence
//! helpers ([`impulse_response`], [`compiled_stream_matches`]) run the
//! compiled path so million-sample checks stay cheap.

use crate::stream::{constrain, OverflowMode, StreamingFir};
use mrp_arch::FirFilter;
use mrp_exec::{compile_fir, Machine};

/// A streaming FIR executed through the compiled linear IR.
///
/// The TDF tap registers live inside the compiled program's delay state,
/// so blocks of any size stream with zero per-call recompilation and the
/// same output-width constraint policy as [`StreamingFir`].
///
/// # Examples
///
/// ```
/// use mrp_arch::{simple_multiplier_block, FirFilter};
/// use mrp_numrep::Repr;
/// use mrp_sim::{CompiledFir, OverflowMode};
///
/// let coeffs = [3i64, -1, 4];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// let mut s = CompiledFir::new(&FirFilter::new(g), 32, OverflowMode::Saturate);
/// let mut out = s.process(&[1, 0]);
/// out.extend(s.process(&[0, 2]));
/// assert_eq!(out, vec![3, -1, 4, 6]);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFir {
    machine: Machine,
    output_width: u32,
    mode: OverflowMode,
    samples_processed: u64,
}

impl CompiledFir {
    /// Compiles `filter` once and wraps it with an output width
    /// (2..=63 bits) and overflow mode, at the default lane width.
    ///
    /// # Panics
    ///
    /// Panics if `output_width` is outside `2..=63`.
    pub fn new(filter: &FirFilter, output_width: u32, mode: OverflowMode) -> Self {
        Self::with_lanes(filter, output_width, mode, mrp_exec::DEFAULT_LANES)
    }

    /// Like [`CompiledFir::new`] with an explicit lane width (clamped to
    /// the interpreter's 8..=64 range).
    ///
    /// # Panics
    ///
    /// Panics if `output_width` is outside `2..=63`.
    pub fn with_lanes(
        filter: &FirFilter,
        output_width: u32,
        mode: OverflowMode,
        lanes: usize,
    ) -> Self {
        assert!(
            (2..=63).contains(&output_width),
            "output width must be within 2..=63"
        );
        CompiledFir {
            machine: Machine::with_lanes(compile_fir(filter), lanes),
            output_width,
            mode,
            samples_processed: 0,
        }
    }

    /// Total samples processed since construction or the last
    /// [`CompiledFir::reset`].
    pub fn samples_processed(&self) -> u64 {
        self.samples_processed
    }

    /// Clears the filter state (the compiled program stays).
    pub fn reset(&mut self) {
        self.machine.reset();
        self.samples_processed = 0;
    }

    /// The compiled program being executed (for listings/introspection).
    pub fn program(&self) -> &mrp_exec::Program {
        self.machine.program()
    }

    /// Processes one block, returning one constrained output per input
    /// sample.
    pub fn process(&mut self, block: &[i64]) -> Vec<i64> {
        self.samples_processed += block.len() as u64;
        let mut out = self.machine.run_single(block);
        for y in &mut out {
            *y = constrain(*y, self.output_width, self.mode);
        }
        out
    }
}

/// First `n` samples of the filter's impulse response, computed through
/// the compiled path (unconstrained width). For an FIR this is the
/// coefficient vector zero-padded to `n` — the classic impulse
/// equivalence check, now cheap at any `n`.
///
/// # Examples
///
/// ```
/// use mrp_arch::{simple_multiplier_block, FirFilter};
/// use mrp_numrep::Repr;
/// use mrp_sim::impulse_response;
///
/// let coeffs = [70i64, 66, 17];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// assert_eq!(
///     impulse_response(&FirFilter::new(g), 5),
///     vec![70, 66, 17, 0, 0],
/// );
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn impulse_response(filter: &FirFilter, n: usize) -> Vec<i64> {
    let mut machine = Machine::new(compile_fir(filter));
    machine.run_single(&crate::signal::impulse(n, 1))
}

/// Streams `input` through both the compiled path and the tree-walk
/// oracle ([`StreamingFir`]) in mismatched block sizes and reports
/// whether every output matches — the stream-equivalence check the
/// accept gates and fuzz suites build on.
pub fn compiled_stream_matches(
    filter: &FirFilter,
    input: &[i64],
    output_width: u32,
    mode: OverflowMode,
) -> bool {
    let mut compiled = CompiledFir::new(filter, output_width, mode);
    let mut oracle = StreamingFir::new(filter.clone(), output_width, mode);
    // Deliberately different block sizes: state carry-over on both sides
    // is part of what's being checked.
    let mut got = Vec::with_capacity(input.len());
    for block in input.chunks(41) {
        got.extend(compiled.process(block));
    }
    let mut want = Vec::with_capacity(input.len());
    for block in input.chunks(7) {
        want.extend(oracle.process(block));
    }
    got == want
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::{direct_fir, simple_multiplier_block};
    use mrp_numrep::Repr;

    fn filter(coeffs: &[i64]) -> FirFilter {
        let (mut g, outs) = simple_multiplier_block(coeffs, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        FirFilter::new(g)
    }

    #[test]
    fn compiled_stream_matches_direct_form() {
        let coeffs = [5i64, -2, 7, 1];
        let input: Vec<i64> = (0..100).map(|i| (i * 13 % 29) - 14).collect();
        let batch = direct_fir(&coeffs, &input);
        let mut s = CompiledFir::new(&filter(&coeffs), 40, OverflowMode::Saturate);
        let mut out = Vec::new();
        for chunk in input.chunks(7) {
            out.extend(s.process(chunk));
        }
        assert_eq!(out, batch);
        assert_eq!(s.samples_processed(), 100);
    }

    #[test]
    fn saturation_and_wrap_match_tree_walk() {
        let coeffs = [1000i64, -3];
        let f = filter(&coeffs);
        let input: Vec<i64> = (0..64).map(|i| i * 37 - 1000).collect();
        for mode in [OverflowMode::Saturate, OverflowMode::Wrap] {
            assert!(compiled_stream_matches(&f, &input, 8, mode), "{mode:?}");
        }
    }

    #[test]
    fn reset_clears_compiled_state() {
        let mut s = CompiledFir::new(&filter(&[1, 1]), 16, OverflowMode::Saturate);
        s.process(&[7]);
        s.reset();
        assert_eq!(s.process(&[1]), vec![1]);
        assert_eq!(s.samples_processed(), 1);
    }

    #[test]
    fn impulse_response_is_padded_coefficients() {
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let mut want = coeffs.to_vec();
        want.extend([0, 0]);
        assert_eq!(impulse_response(&filter(&coeffs), 10), want);
    }

    #[test]
    fn program_is_inspectable() {
        let s = CompiledFir::new(&filter(&[3, 5]), 16, OverflowMode::Saturate);
        assert!(s.program().to_string().contains("out y"));
    }
}
