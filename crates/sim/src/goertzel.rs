//! Single-bin DFT measurement via the Goertzel recurrence.

/// Magnitude of the DFT of `signal` at normalized frequency `f`
/// (cycles/sample), computed with the Goertzel second-order recurrence —
/// O(n) per bin with one multiply per sample, the classic way to check a
/// tone level without a full FFT.
///
/// Returns the *amplitude* (bin magnitude scaled by `2/n`), so a pure sine
/// of amplitude `A` at `f` measures ≈ `A`.
///
/// # Examples
///
/// ```
/// use mrp_sim::{goertzel, signal};
/// let tone = signal::sine(4096, 0.1, 1000.0);
/// let a = goertzel(&tone, 0.1);
/// assert!((a - 1000.0).abs() < 2.0);
/// ```
pub fn goertzel(signal: &[i64], f: f64) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let w = 2.0 * std::f64::consts::PI * f;
    let coeff = 2.0 * w.cos();
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    for &x in signal {
        let s0 = x as f64 + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let re = s1 - s2 * w.cos();
    let im = s2 * w.sin();
    2.0 * re.hypot(im) / signal.len() as f64
}

/// Tone level in dB relative to a full-scale reference amplitude.
///
/// # Examples
///
/// ```
/// use mrp_sim::{goertzel_db, signal};
/// let tone = signal::sine(4096, 0.2, 500.0);
/// let db = goertzel_db(&tone, 0.2, 1000.0);
/// assert!((db + 6.0).abs() < 0.1); // half amplitude = -6 dB
/// ```
pub fn goertzel_db(signal: &[i64], f: f64, full_scale: f64) -> f64 {
    20.0 * (goertzel(signal, f) / full_scale).max(1e-300).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{sine, two_tone};

    /// Direct DFT bin for cross-checking.
    fn direct_dft_amplitude(signal: &[i64], f: f64) -> f64 {
        let mut re = 0.0;
        let mut im = 0.0;
        for (i, &x) in signal.iter().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * f * i as f64;
            re += x as f64 * phase.cos();
            im -= x as f64 * phase.sin();
        }
        2.0 * re.hypot(im) / signal.len() as f64
    }

    #[test]
    fn matches_direct_dft() {
        let x = two_tone(2048, 0.11, 700.0, 0.31, 300.0);
        for f in [0.11, 0.31, 0.2] {
            let g = goertzel(&x, f);
            let d = direct_dft_amplitude(&x, f);
            assert!((g - d).abs() < 1e-6, "f={f}: {g} vs {d}");
        }
    }

    #[test]
    fn measures_tone_amplitude() {
        let x = sine(8192, 0.0625, 1234.0);
        assert!((goertzel(&x, 0.0625) - 1234.0).abs() < 2.0);
    }

    #[test]
    fn rejects_other_bins() {
        let x = sine(8192, 0.0625, 1000.0);
        assert!(goertzel(&x, 0.25) < 1.0);
    }

    #[test]
    fn empty_signal_is_silent() {
        assert_eq!(goertzel(&[], 0.1), 0.0);
    }

    #[test]
    fn dc_measurement() {
        let x = vec![100i64; 1024];
        // DC bin measures 2x amplitude by the 2/n convention; accept the
        // factor and just check it is large and stable.
        let g = goertzel(&x, 0.0);
        assert!((g - 200.0).abs() < 1e-9);
    }
}
