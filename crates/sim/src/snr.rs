//! Signal-to-error-ratio measurement between a fixed-point architecture
//! and its floating-point reference.

/// Breakdown of an SNR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrReport {
    /// Reference signal power (mean square).
    pub signal_power: f64,
    /// Error power (mean square of the difference).
    pub error_power: f64,
    /// `10 log10(signal/error)`; `f64::INFINITY` for a bit-exact match.
    pub snr_db: f64,
}

/// Computes the SNR of `measured` against the floating-point `reference`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use mrp_sim::snr_db;
/// let reference = [100.0, -50.0, 25.0];
/// let measured = [100i64, -50, 25];
/// assert!(snr_db(&measured, &reference).snr_db.is_infinite());
/// ```
pub fn snr_db(measured: &[i64], reference: &[f64]) -> SnrReport {
    assert_eq!(measured.len(), reference.len(), "length mismatch");
    assert!(!measured.is_empty(), "empty signals");
    let n = measured.len() as f64;
    let signal_power = reference.iter().map(|r| r * r).sum::<f64>() / n;
    let error_power = measured
        .iter()
        .zip(reference)
        .map(|(&m, &r)| {
            let e = m as f64 - r;
            e * e
        })
        .sum::<f64>()
        / n;
    let snr_db = if error_power == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal_power / error_power).log10()
    };
    SnrReport {
        signal_power,
        error_power,
        snr_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_infinite() {
        let r = snr_db(&[5, -3], &[5.0, -3.0]);
        assert!(r.snr_db.is_infinite());
        assert_eq!(r.error_power, 0.0);
    }

    #[test]
    fn known_snr() {
        // Signal power 100, error power 1 => 20 dB.
        let reference = vec![10.0f64; 64];
        let measured = vec![11i64; 64];
        let r = snr_db(&measured, &reference);
        assert!((r.snr_db - 20.0).abs() < 1e-9);
    }

    #[test]
    fn snr_degrades_with_error() {
        let reference = vec![100.0f64; 32];
        let small = snr_db(&vec![101i64; 32], &reference).snr_db;
        let large = snr_db(&vec![110i64; 32], &reference).snr_db;
        assert!(small > large);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        snr_db(&[1], &[1.0, 2.0]);
    }
}
