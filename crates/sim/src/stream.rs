//! Block-based streaming around a multiplierless FIR with output
//! width control.

use mrp_arch::FirFilter;

/// `true` when `delayed` is exactly `reference` shifted `latency` samples
/// later: zeros while the pipeline fills, then the reference values.
/// Positions past the end of `reference` compare against 0 (a drained
/// pipe fed zero-padded input), and trailing reference samples without a
/// delayed counterpart are not checked — the comparison covers
/// `delayed`'s length.
///
/// This is the stream-level form of the latency-adjusted equivalence gate
/// pipelined netlists must pass: a pipelined block is correct iff its
/// output stream `equal_with_latency`s the combinational one.
///
/// # Examples
///
/// ```
/// use mrp_sim::equal_with_latency;
///
/// assert!(equal_with_latency(&[3, 1, 4], &[0, 0, 3, 1, 4], 2));
/// assert!(!equal_with_latency(&[3, 1, 4], &[3, 1, 4], 2));
/// ```
pub fn equal_with_latency(reference: &[i64], delayed: &[i64], latency: usize) -> bool {
    delayed
        .iter()
        .enumerate()
        .all(|(t, &y)| match t.checked_sub(latency) {
            None => y == 0,
            Some(k) => reference.get(k).copied().unwrap_or(0) == y,
        })
}

/// What happens when an output exceeds the configured output width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowMode {
    /// Clamp to the representable range (the usual DSP datapath choice).
    #[default]
    Saturate,
    /// Two's-complement wraparound (what unchecked hardware does).
    Wrap,
}

/// A streaming FIR: processes arbitrary-size blocks while carrying the
/// filter state between calls, and constrains outputs to `output_width`
/// bits with the chosen overflow behaviour.
///
/// # Examples
///
/// ```
/// use mrp_arch::{simple_multiplier_block, FirFilter};
/// use mrp_numrep::Repr;
/// use mrp_sim::{OverflowMode, StreamingFir};
///
/// let coeffs = [3i64, -1, 4];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// let mut s = StreamingFir::new(FirFilter::new(g), 32, OverflowMode::Saturate);
/// // Streaming in two blocks equals filtering in one shot.
/// let mut out = s.process(&[1, 0]);
/// out.extend(s.process(&[0, 2]));
/// assert_eq!(out, vec![3, -1, 4, 6]);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingFir {
    filter: FirFilter,
    history: Vec<i64>,
    output_width: u32,
    mode: OverflowMode,
    samples_processed: u64,
}

impl StreamingFir {
    /// Wraps a filter with an output width (2..=63 bits) and overflow mode.
    ///
    /// # Panics
    ///
    /// Panics if `output_width` is outside `2..=63`.
    pub fn new(filter: FirFilter, output_width: u32, mode: OverflowMode) -> Self {
        assert!(
            (2..=63).contains(&output_width),
            "output width must be within 2..=63"
        );
        StreamingFir {
            filter,
            history: Vec::new(),
            output_width,
            mode,
            samples_processed: 0,
        }
    }

    /// Total samples processed since construction or the last
    /// [`StreamingFir::reset`].
    pub fn samples_processed(&self) -> u64 {
        self.samples_processed
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.history.clear();
        self.samples_processed = 0;
    }

    /// Processes one block, returning one output per input sample.
    pub fn process(&mut self, block: &[i64]) -> Vec<i64> {
        // Prepend retained history, filter, and emit only the new tail.
        let taps = self.filter.tap_count();
        let mut input = self.history.clone();
        input.extend_from_slice(block);
        let full = self.filter.filter(&input);
        let out: Vec<i64> = full[self.history.len()..]
            .iter()
            .map(|&y| self.constrain(y))
            .collect();
        // Keep the last taps-1 samples as state for the next block.
        let keep = taps.saturating_sub(1).min(input.len());
        self.history = input[input.len() - keep..].to_vec();
        self.samples_processed += block.len() as u64;
        out
    }

    fn constrain(&self, y: i64) -> i64 {
        constrain(y, self.output_width, self.mode)
    }
}

/// Constrains `y` to `output_width` bits under `mode` — shared by the
/// tree-walk [`StreamingFir`] and the compiled [`crate::CompiledFir`] so
/// both paths apply identical datapath semantics.
pub(crate) fn constrain(y: i64, output_width: u32, mode: OverflowMode) -> i64 {
    let max = (1i64 << (output_width - 1)) - 1;
    let min = -(1i64 << (output_width - 1));
    match mode {
        OverflowMode::Saturate => y.clamp(min, max),
        OverflowMode::Wrap => {
            let shift = 64 - output_width;
            (y << shift) >> shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::{direct_fir, simple_multiplier_block};
    use mrp_numrep::Repr;

    fn filter(coeffs: &[i64]) -> FirFilter {
        let (mut g, outs) = simple_multiplier_block(coeffs, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        FirFilter::new(g)
    }

    #[test]
    fn latency_equivalence_matches_a_real_delay() {
        let coeffs = [5i64, -2, 7];
        let input: Vec<i64> = (0..20).map(|i| (i * 11 % 17) - 8).collect();
        let reference = direct_fir(&coeffs, &input);
        for latency in 0..3usize {
            let mut delayed = vec![0i64; latency];
            delayed.extend_from_slice(&reference);
            assert!(
                equal_with_latency(&reference, &delayed, latency),
                "latency {latency}"
            );
            if latency > 0 {
                assert!(!equal_with_latency(&reference, &delayed, latency - 1));
            }
        }
        // A corrupted fill sample is caught too.
        assert!(!equal_with_latency(&[1, 2], &[9, 1, 2], 1));
    }

    #[test]
    fn latency_equivalence_zero_length_streams() {
        // Empty delayed stream: nothing to check, trivially equal.
        assert!(equal_with_latency(&[], &[], 0));
        assert!(equal_with_latency(&[1, 2, 3], &[], 5));
        // Empty reference: the delayed stream must be all zeros (a pipe
        // fed nothing and drained).
        assert!(equal_with_latency(&[], &[0, 0, 0], 1));
        assert!(!equal_with_latency(&[], &[0, 4, 0], 1));
    }

    #[test]
    fn latency_longer_than_stream() {
        // latency == delayed length: every position is still pipe fill.
        assert!(equal_with_latency(&[7, 8], &[0, 0], 2));
        // latency beyond both lengths: only zeros are acceptable.
        assert!(equal_with_latency(&[7, 8], &[0, 0, 0, 0], 9));
        assert!(!equal_with_latency(&[7, 8], &[0, 0, 0, 7], 9));
        // Drained-pipe tail past the reference end must read 0.
        assert!(equal_with_latency(&[7], &[0, 7, 0, 0], 1));
        assert!(!equal_with_latency(&[7], &[0, 7, 7, 0], 1));
    }

    #[test]
    fn saturate_and_wrap_diverge_exactly_at_the_width_boundary() {
        let coeffs = [1i64];
        let mut sat = StreamingFir::new(filter(&coeffs), 8, OverflowMode::Saturate);
        let mut wrap = StreamingFir::new(filter(&coeffs), 8, OverflowMode::Wrap);
        // In range: identical.
        assert_eq!(sat.process(&[127, -128]), wrap.process(&[127, -128]));
        // One past the rails: saturate pins, wrap flips sign.
        assert_eq!(sat.process(&[128]), vec![127]);
        assert_eq!(wrap.process(&[128]), vec![-128]);
        assert_eq!(sat.process(&[-129]), vec![-128]);
        assert_eq!(wrap.process(&[-129]), vec![127]);
    }

    #[test]
    fn blocked_equals_batch() {
        let coeffs = [5i64, -2, 7, 1];
        let input: Vec<i64> = (0..40).map(|i| (i * 13 % 29) - 14).collect();
        let batch = direct_fir(&coeffs, &input);
        let mut s = StreamingFir::new(filter(&coeffs), 40, OverflowMode::Saturate);
        let mut out = Vec::new();
        for chunk in input.chunks(7) {
            out.extend(s.process(chunk));
        }
        assert_eq!(out, batch);
        assert_eq!(s.samples_processed(), 40);
    }

    #[test]
    fn saturation_clamps() {
        let coeffs = [1000i64];
        let mut s = StreamingFir::new(filter(&coeffs), 8, OverflowMode::Saturate);
        assert_eq!(s.process(&[1000]), vec![127]);
        assert_eq!(s.process(&[-1000]), vec![-128]);
    }

    #[test]
    fn wrap_wraps() {
        let coeffs = [1i64];
        let mut s = StreamingFir::new(filter(&coeffs), 8, OverflowMode::Wrap);
        assert_eq!(s.process(&[128]), vec![-128]);
        assert_eq!(s.process(&[256]), vec![0]);
    }

    #[test]
    fn reset_clears_state() {
        let coeffs = [1i64, 1];
        let mut s = StreamingFir::new(filter(&coeffs), 16, OverflowMode::Saturate);
        s.process(&[7]);
        s.reset();
        assert_eq!(s.process(&[1]), vec![1]); // no leftover 7
        assert_eq!(s.samples_processed(), 1);
    }

    #[test]
    fn empty_blocks_are_fine() {
        let coeffs = [3i64];
        let mut s = StreamingFir::new(filter(&coeffs), 16, OverflowMode::Saturate);
        assert!(s.process(&[]).is_empty());
        assert_eq!(s.process(&[2]), vec![6]);
    }
}
