//! mrp-batch: parallel batch synthesis for the MRPF pipeline.
//!
//! This crate turns the one-filter synthesis pipeline into a
//! many-filter, many-core engine without adding a single external
//! dependency:
//!
//! * [`ThreadPool`] — a std-only work-stealing thread pool with panic
//!   isolation and help-while-waiting (nested fan-out on one pool cannot
//!   deadlock).
//! * [`synthesize_racing`] — runs the resilience ladder's independent
//!   rung attempts concurrently instead of top-down sequentially, under
//!   the same per-stage budgets and gates.
//! * [`run_batch`] — synthesizes a whole spec file of filters, sharing
//!   work through a memo cache keyed on [`normalize_coeffs`] (shift- and
//!   sign-normalized coefficient vectors share one synthesis) and
//!   rendering a consolidated report whose bytes are identical for any
//!   worker count.
//! * [`run_batch_on`] / [`MemoCache`] — the same engine on a
//!   caller-owned pool and a cross-run memo cache, for long-running
//!   callers like `mrpf serve` that keep one pool and one cache alive
//!   across many requests.
//! * [`parse_specs`] / [`parse_json`] — a strict, dependency-free reader
//!   for the JSON spec-file format.
//!
//! The deterministic *sharded exact cover* search itself lives in
//! `mrp_core::select_colors_exact_sharded`; this crate supplies the
//! batch- and job-level parallelism above it. Everything is instrumented
//! through `mrp-obs`: per-worker spans (`pool.worker[i]`), the
//! `batch.cache.{hit,miss}` counters, and the `batch.pool.queue_depth`
//! gauge.

#![warn(missing_docs)]

mod cache;
mod engine;
mod json;
mod pool;
mod racing;
mod spec;

pub use cache::{normalize_coeffs, CacheStats, MemoCache, SynthCache};
pub use engine::{run_batch, run_batch_on, BatchCell, BatchOptions, BatchReport, BatchRow};
pub use json::{parse_json, JsonError, JsonValue};
pub use pool::ThreadPool;
pub use racing::synthesize_racing;
pub use spec::{parse_specs, BatchSpec};
