//! Batch spec files: the input format of `mrpf batch`.
//!
//! A spec file is JSON — either an object with a `"filters"` array or a
//! bare array. Each entry is an object with an integer-array `"coeffs"`
//! (required) and an optional `"name"` (defaults to `job<index>`):
//!
//! ```json
//! {
//!   "filters": [
//!     {"name": "worked-example", "coeffs": [70, 66, 17, 9, 27, 41, 56, 11]},
//!     {"coeffs": [23, 45, 77, 101, 173]}
//!   ]
//! }
//! ```

use crate::json::{parse_json, JsonValue};

/// One filter to synthesize: a display name plus its quantized taps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    /// Display name used in the consolidated report.
    pub name: String,
    /// Integer coefficient vector (full, unfolded taps).
    pub coeffs: Vec<i64>,
}

/// Parses a spec file (see the module docs for the format).
///
/// # Errors
///
/// Returns a user-facing message for syntax errors, missing/ill-typed
/// fields, or an empty filter list.
///
/// # Examples
///
/// ```
/// use mrp_batch::parse_specs;
///
/// let specs = parse_specs(r#"[{"name": "a", "coeffs": [7, 9]}]"#)?;
/// assert_eq!(specs[0].name, "a");
/// assert_eq!(specs[0].coeffs, vec![7, 9]);
/// # Ok::<(), String>(())
/// ```
pub fn parse_specs(text: &str) -> Result<Vec<BatchSpec>, String> {
    let doc = parse_json(text).map_err(|e| format!("spec file is not valid JSON: {e}"))?;
    let entries = match &doc {
        JsonValue::Array(items) => items.as_slice(),
        JsonValue::Object(map) => map
            .get("filters")
            .and_then(JsonValue::as_array)
            .ok_or("spec object must have a `filters` array")?,
        _ => return Err("spec file must be an array or an object with `filters`".to_string()),
    };
    if entries.is_empty() {
        return Err("spec file lists no filters".to_string());
    }
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let obj = entry
                .as_object()
                .ok_or_else(|| format!("filter {i} is not an object"))?;
            let name = match obj.get("name") {
                None => format!("job{i}"),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| format!("filter {i}: `name` must be a string"))?
                    .to_string(),
            };
            let coeffs = obj
                .get("coeffs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("filter {i} (`{name}`): missing `coeffs` array"))?;
            if coeffs.is_empty() {
                return Err(format!("filter {i} (`{name}`): `coeffs` is empty"));
            }
            let coeffs = coeffs
                .iter()
                .map(|c| {
                    c.as_i64().ok_or_else(|| {
                        format!("filter {i} (`{name}`): coefficients must be integers")
                    })
                })
                .collect::<Result<Vec<i64>, String>>()?;
            Ok(BatchSpec { name, coeffs })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_forms_parse() {
        let a = parse_specs(r#"{"filters": [{"coeffs": [1, 2]}]}"#).unwrap();
        assert_eq!(a[0].name, "job0");
        let b = parse_specs(r#"[{"name": "x", "coeffs": [3]}]"#).unwrap();
        assert_eq!(b[0].name, "x");
        assert_eq!(b[0].coeffs, vec![3]);
    }

    #[test]
    fn errors_are_specific() {
        for (text, needle) in [
            ("{}", "`filters`"),
            ("[]", "no filters"),
            ("[1]", "not an object"),
            (r#"[{"name": "a"}]"#, "missing `coeffs`"),
            (r#"[{"coeffs": []}]"#, "empty"),
            (r#"[{"coeffs": [1.5]}]"#, "integers"),
            (r#"[{"name": 3, "coeffs": [1]}]"#, "string"),
            ("nonsense", "JSON"),
        ] {
            let err = parse_specs(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }
}
