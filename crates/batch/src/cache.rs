//! Coefficient-set normalization for the batch memo cache.
//!
//! In the MRP cost model shifts and a global sign are free: the
//! multiplier block for `[2, 4, 6]` is the block for `[1, 2, 3]` with
//! shifted outputs, and `[-1, -2, -3]` is the same block with negated
//! outputs — identical adder count, identical depth, identical fallback
//! behavior. The batch engine therefore keys its memo cache on the
//! *normalized* coefficient vector: the common power of two divided out
//! and the leading sign canonicalized to positive. Per-coefficient
//! structure (order, zeros, relative signs) is preserved — those change
//! the synthesized block and must not be conflated.

/// Canonical cache key of a coefficient vector: divides out the largest
/// power of two common to every coefficient and flips the global sign so
/// the first nonzero entry is positive. An all-zero vector is its own
/// key.
///
/// # Examples
///
/// ```
/// use mrp_batch::normalize_coeffs;
///
/// assert_eq!(normalize_coeffs(&[2, 4, 6]), vec![1, 2, 3]);
/// assert_eq!(normalize_coeffs(&[-1, -2, -3]), vec![1, 2, 3]);
/// assert_eq!(normalize_coeffs(&[0, -8, 12]), vec![0, 2, -3]);
/// assert_eq!(normalize_coeffs(&[1, -2, 3]), vec![1, -2, 3]);
/// ```
pub fn normalize_coeffs(coeffs: &[i64]) -> Vec<i64> {
    let Some(&first_nonzero) = coeffs.iter().find(|&&c| c != 0) else {
        return coeffs.to_vec();
    };
    let shift = coeffs
        .iter()
        .filter(|&&c| c != 0)
        .map(|c| c.trailing_zeros())
        .min()
        .unwrap_or(0);
    let sign = if first_nonzero < 0 { -1 } else { 1 };
    coeffs.iter().map(|&c| (c >> shift) * sign).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_and_sign_invariant() {
        let base = normalize_coeffs(&[70, 66, 17, 9]);
        assert_eq!(normalize_coeffs(&[140, 132, 34, 18]), base);
        assert_eq!(normalize_coeffs(&[-70, -66, -17, -9]), base);
        assert_eq!(normalize_coeffs(&[-280, -264, -68, -36]), base);
    }

    #[test]
    fn structure_is_preserved() {
        // Relative signs, zeros, and order all distinguish keys.
        assert_ne!(normalize_coeffs(&[1, -2, 3]), normalize_coeffs(&[1, 2, 3]));
        assert_ne!(normalize_coeffs(&[1, 0, 3]), normalize_coeffs(&[1, 3]));
        assert_ne!(normalize_coeffs(&[3, 1]), normalize_coeffs(&[1, 3]));
    }

    #[test]
    fn zeros_and_min_values() {
        assert_eq!(normalize_coeffs(&[0, 0]), vec![0, 0]);
        assert_eq!(normalize_coeffs(&[0, 4]), vec![0, 1]);
        // i64::MIN has 63 trailing zeros; `>>` keeps the division exact.
        assert_eq!(normalize_coeffs(&[i64::MIN, 0]), vec![1, 0]);
    }
}
