//! Coefficient-set normalization and the shareable memo cache.
//!
//! In the MRP cost model shifts and a global sign are free: the
//! multiplier block for `[2, 4, 6]` is the block for `[1, 2, 3]` with
//! shifted outputs, and `[-1, -2, -3]` is the same block with negated
//! outputs — identical adder count, identical depth, identical fallback
//! behavior. The batch engine therefore keys its memo cache on the
//! *normalized* coefficient vector: the common power of two divided out
//! and the leading sign canonicalized to positive. Per-coefficient
//! structure (order, zeros, relative signs) is preserved — those change
//! the synthesized block and must not be conflated.
//!
//! [`MemoCache`] is the cross-run form of that cache: a lock-guarded map
//! from normalized vector to the deterministic [`BatchCell`] slice of a
//! synthesis, with hit/miss counters. One batch run dedups internally
//! either way; a long-running process (`mrpf serve`) additionally shares
//! one `MemoCache` across every request so repeat filters cost a lookup
//! instead of a synthesis. Because synthesis is deterministic for a fixed
//! configuration, serving a cached cell is byte-identical to recomputing
//! it — the cache changes *when* work happens, never what a report says.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::BatchCell;

/// Canonical cache key of a coefficient vector: divides out the largest
/// power of two common to every coefficient and flips the global sign so
/// the first nonzero entry is positive. An all-zero vector is its own
/// key.
///
/// # Examples
///
/// ```
/// use mrp_batch::normalize_coeffs;
///
/// assert_eq!(normalize_coeffs(&[2, 4, 6]), vec![1, 2, 3]);
/// assert_eq!(normalize_coeffs(&[-1, -2, -3]), vec![1, 2, 3]);
/// assert_eq!(normalize_coeffs(&[0, -8, 12]), vec![0, 2, -3]);
/// assert_eq!(normalize_coeffs(&[1, -2, 3]), vec![1, -2, 3]);
/// ```
pub fn normalize_coeffs(coeffs: &[i64]) -> Vec<i64> {
    let Some(&first_nonzero) = coeffs.iter().find(|&&c| c != 0) else {
        return coeffs.to_vec();
    };
    let shift = coeffs
        .iter()
        .filter(|&&c| c != 0)
        .map(|c| c.trailing_zeros())
        .min()
        .unwrap_or(0);
    let sign = if first_nonzero < 0 { -1 } else { 1 };
    coeffs.iter().map(|&c| (c >> shift) * sign).collect()
}

/// Aggregate statistics of a cache tier, for `/metricsz` and the serve
/// summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct normalized vectors held.
    pub entries: usize,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

/// What the batch engine requires of a synthesis cache.
///
/// The engine is tier-agnostic: [`MemoCache`] is the in-memory
/// implementation, and `mrp-store`'s tiered cache layers a crash-safe
/// persistent log under the same interface. Implementations must be
/// usable from many pool workers at once, and `lookup`/`store` must
/// never fail — a tier that loses its backing storage degrades to
/// whatever it can still serve rather than erroring.
pub trait SynthCache: Send + Sync {
    /// Looks up a normalized key, counting a hit or a miss.
    fn lookup(&self, key: &[i64]) -> Option<Result<BatchCell, String>>;

    /// Stores the result of one synthesis. Last write wins; with a
    /// deterministic pipeline concurrent writers store equal values.
    fn store(&self, key: Vec<i64>, value: Result<BatchCell, String>);

    /// Entry count and hit/miss counters.
    fn stats(&self) -> CacheStats;
}

/// A thread-safe memo cache of synthesis results keyed by
/// [`normalize_coeffs`] vectors.
///
/// Values are the deterministic [`BatchCell`] slice of an outcome (or its
/// rendered error) — never wall-clock data — so a cached entry is
/// indistinguishable from a fresh synthesis under the same configuration.
/// Entries are only valid for one synthesis configuration; callers that
/// vary the configuration must use one cache per configuration (the
/// server does: its configuration is fixed at startup).
///
/// # Examples
///
/// ```
/// use mrp_batch::MemoCache;
///
/// let cache = MemoCache::new();
/// assert!(cache.lookup(&[1, 2, 3]).is_none());
/// cache.store(vec![1, 2, 3], Err("demo".into()));
/// assert!(cache.lookup(&[1, 2, 3]).is_some());
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct MemoCache {
    entries: Mutex<HashMap<Vec<i64>, Result<BatchCell, String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> MemoCache {
        MemoCache::default()
    }

    /// Looks up a normalized key, counting a hit or a miss.
    pub fn lookup(&self, key: &[i64]) -> Option<Result<BatchCell, String>> {
        let found = self
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mrp_obs::counter_add("batch.memo.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            mrp_obs::counter_add("batch.memo.miss", 1);
        }
        found
    }

    /// Stores the result of one synthesis. Last write wins; with a
    /// deterministic pipeline concurrent writers store equal values.
    pub fn store(&self, key: Vec<i64>, value: Result<BatchCell, String>) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value);
    }

    /// Number of cached normalized vectors.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl SynthCache for MemoCache {
    fn lookup(&self, key: &[i64]) -> Option<Result<BatchCell, String>> {
        MemoCache::lookup(self, key)
    }

    fn store(&self, key: Vec<i64>, value: Result<BatchCell, String>) {
        MemoCache::store(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits(),
            misses: self.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_cache_counts_and_stores() {
        let cache = MemoCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&[7, 9]).is_none());
        cache.store(
            vec![7, 9],
            Ok(BatchCell {
                rung: "mrp+cse".into(),
                adders: 3,
                critical_path: 2,
                degradations: 0,
                lint_warnings: 0,
            }),
        );
        let cell = cache.lookup(&[7, 9]).unwrap().unwrap();
        assert_eq!(cell.adders, 3);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn shift_and_sign_invariant() {
        let base = normalize_coeffs(&[70, 66, 17, 9]);
        assert_eq!(normalize_coeffs(&[140, 132, 34, 18]), base);
        assert_eq!(normalize_coeffs(&[-70, -66, -17, -9]), base);
        assert_eq!(normalize_coeffs(&[-280, -264, -68, -36]), base);
    }

    #[test]
    fn structure_is_preserved() {
        // Relative signs, zeros, and order all distinguish keys.
        assert_ne!(normalize_coeffs(&[1, -2, 3]), normalize_coeffs(&[1, 2, 3]));
        assert_ne!(normalize_coeffs(&[1, 0, 3]), normalize_coeffs(&[1, 3]));
        assert_ne!(normalize_coeffs(&[3, 1]), normalize_coeffs(&[1, 3]));
    }

    #[test]
    fn zeros_and_min_values() {
        assert_eq!(normalize_coeffs(&[0, 0]), vec![0, 0]);
        assert_eq!(normalize_coeffs(&[0, 4]), vec![0, 1]);
        // i64::MIN has 63 trailing zeros; `>>` keeps the division exact.
        assert_eq!(normalize_coeffs(&[i64::MIN, 0]), vec![1, 0]);
    }
}
