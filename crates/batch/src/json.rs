//! A minimal JSON reader for batch spec files.
//!
//! The workspace builds offline (no serde), and the batch front-end only
//! needs to *read* small hand-written spec files, so this is a strict
//! recursive-descent parser over the JSON grammar: objects, arrays,
//! strings (with the standard escapes), numbers, booleans, null. Output
//! rendering elsewhere in the workspace stays hand-formatted.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers are exact to 2^53).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are unique (later duplicates win), order ignored.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an `i64`, when it is a number with no fraction.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse failure: a message plus the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`JsonError`] with a byte offset on any syntax error.
///
/// # Examples
///
/// ```
/// use mrp_batch::parse_json;
///
/// let v = parse_json(r#"{"coeffs": [70, 66, 17]}"#)?;
/// let coeffs = v.as_object().unwrap()["coeffs"].as_array().unwrap();
/// assert_eq!(coeffs[0].as_i64(), Some(70));
/// # Ok::<(), mrp_batch::JsonError>(())
/// ```
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // spec files are ASCII-leaning configuration.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(
            r#"{"filters": [{"name": "a", "coeffs": [1, -2, 3]}, {"coeffs": []}], "n": 2}"#,
        )
        .unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["n"].as_i64(), Some(2));
        let filters = obj["filters"].as_array().unwrap();
        assert_eq!(filters.len(), 2);
        let first = filters[0].as_object().unwrap();
        assert_eq!(first["name"].as_str(), Some("a"));
        assert_eq!(first["coeffs"].as_array().unwrap()[1].as_i64(), Some(-2));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse_json(r#""a\n\"b\u0041""#).unwrap(),
            JsonValue::String("a\n\"bA".to_string())
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_is_not_an_i64() {
        assert_eq!(parse_json("1.5").unwrap().as_i64(), None);
        assert_eq!(parse_json("2.0").unwrap().as_i64(), Some(2));
    }
}
