//! The batch engine: many filter specs in, one deterministic
//! consolidated report out.
//!
//! Specs are deduplicated through the normalized-coefficient memo cache
//! ([`normalize_coeffs`]): identical normalized vectors share one
//! synthesis. Unique keys are synthesized concurrently on the
//! work-stealing pool; per-spec rows are then assembled in input order,
//! so the report is byte-identical for any `--jobs` value — scheduling
//! decides only *when* a result is computed, never *what* it contains.

use std::collections::HashMap;
use std::sync::Arc;

use mrp_resilience::{synthesize, PipelineError, SynthConfig, SynthOutcome};

use crate::cache::{normalize_coeffs, MemoCache, SynthCache};
use crate::pool::ThreadPool;
use crate::racing::synthesize_racing;
use crate::spec::BatchSpec;

/// Options of one batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads for the pool (clamped to at least 1).
    pub jobs: usize,
    /// Race the ladder rungs of each synthesis concurrently instead of
    /// walking them sequentially.
    pub racing: bool,
    /// Supervised-synthesis configuration shared by every job.
    pub synth: SynthConfig,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 1,
            racing: false,
            synth: SynthConfig::default(),
        }
    }
}

/// One per-spec row of the consolidated report.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Spec name.
    pub name: String,
    /// Tap count of the spec.
    pub taps: usize,
    /// Whether this spec reused a memo-cache entry created by an earlier
    /// spec in the same run.
    pub cache_hit: bool,
    /// The synthesis result for the spec's normalized coefficients.
    pub result: Result<BatchCell, String>,
}

/// The deterministic slice of a [`SynthOutcome`] reported per spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCell {
    /// Fallback-ladder rung that produced the accepted netlist.
    pub rung: String,
    /// Adders in the accepted multiplier block.
    pub adders: usize,
    /// Adder-depth critical path of the block.
    pub critical_path: u32,
    /// Rungs degraded past before acceptance.
    pub degradations: usize,
    /// Warning-severity lint findings on the accepted netlist.
    pub lint_warnings: usize,
}

impl BatchCell {
    fn from_outcome(out: &SynthOutcome) -> BatchCell {
        BatchCell {
            rung: out.rung.name().to_string(),
            adders: out.adders(),
            critical_path: out.graph.max_depth(),
            degradations: out.degradations.len(),
            lint_warnings: out.lint_warnings,
        }
    }
}

/// Result of a whole batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-spec rows, in input order.
    pub rows: Vec<BatchRow>,
    /// Distinct normalized coefficient vectors synthesized.
    pub unique: usize,
}

impl BatchReport {
    /// Specs that reused a memo-cache entry.
    pub fn cache_hits(&self) -> usize {
        self.rows.iter().filter(|r| r.cache_hit).count()
    }

    /// Specs whose synthesis failed outright.
    pub fn failed(&self) -> usize {
        self.rows.iter().filter(|r| r.result.is_err()).count()
    }

    /// Renders the consolidated report as deterministic JSON: no
    /// timestamps, no wall-clock durations, no worker counts — the bytes
    /// depend only on the specs and the synthesis configuration.
    pub fn render_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let head = format!(
                    "{{\"name\":\"{}\",\"taps\":{},\"cache\":\"{}\"",
                    escape(&row.name),
                    row.taps,
                    if row.cache_hit { "hit" } else { "miss" }
                );
                match &row.result {
                    Ok(cell) => format!(
                        "{head},\"rung\":\"{}\",\"adders\":{},\"critical_path\":{},\
                         \"degradations\":{},\"lint_warnings\":{}}}",
                        escape(&cell.rung),
                        cell.adders,
                        cell.critical_path,
                        cell.degradations,
                        cell.lint_warnings
                    ),
                    Err(message) => format!("{head},\"error\":\"{}\"}}", escape(message)),
                }
            })
            .collect();
        format!(
            "{{\"batch\":{{\"specs\":{},\"unique\":{},\"cache_hits\":{},\"failed\":{}}},\
             \"results\":[{}]}}\n",
            self.rows.len(),
            self.unique,
            self.cache_hits(),
            self.failed(),
            rows.join(",")
        )
    }

    /// Human-readable table mirroring [`BatchReport::render_json`].
    pub fn render_pretty(&self) -> String {
        let mut out = format!(
            "batch: {} spec(s), {} unique, {} cache hit(s), {} failed\n",
            self.rows.len(),
            self.unique,
            self.cache_hits(),
            self.failed()
        );
        out.push_str("name                 taps  cache  rung     adders  depth\n");
        for row in &self.rows {
            match &row.result {
                Ok(cell) => out.push_str(&format!(
                    "{:<20} {:>4}  {:<5}  {:<7} {:>6}  {:>5}{}\n",
                    row.name,
                    row.taps,
                    if row.cache_hit { "hit" } else { "miss" },
                    cell.rung,
                    cell.adders,
                    cell.critical_path,
                    if cell.degradations > 0 {
                        format!("  (degraded x{})", cell.degradations)
                    } else {
                        String::new()
                    }
                )),
                Err(message) => out.push_str(&format!(
                    "{:<20} {:>4}  {:<5}  FAILED: {message}\n",
                    row.name,
                    row.taps,
                    if row.cache_hit { "hit" } else { "miss" },
                )),
            }
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Synthesizes every spec, sharing work through the memo cache and the
/// pool. See the module docs for the determinism contract.
///
/// # Examples
///
/// ```
/// use mrp_batch::{run_batch, BatchOptions, BatchSpec};
///
/// let specs = vec![
///     BatchSpec { name: "a".into(), coeffs: vec![70, 66, 17, 9] },
///     BatchSpec { name: "a-doubled".into(), coeffs: vec![140, 132, 34, 18] },
/// ];
/// let report = run_batch(&specs, &BatchOptions { jobs: 2, ..BatchOptions::default() });
/// assert_eq!(report.unique, 1);
/// assert_eq!(report.cache_hits(), 1);
/// ```
pub fn run_batch(specs: &[BatchSpec], options: &BatchOptions) -> BatchReport {
    let pool = Arc::new(ThreadPool::new(options.jobs));
    run_batch_on(specs, options, &pool, &MemoCache::new())
}

/// [`run_batch`] on a caller-owned pool and cache tier.
///
/// This is the entry point for long-running callers (`mrpf serve`): the
/// pool is shared across requests instead of being rebuilt per run, and
/// the [`SynthCache`] short-circuits synthesis of normalized coefficient
/// vectors seen by *any* earlier run on the same cache — whether that
/// cache is the in-memory [`MemoCache`] or `mrp-store`'s persistent
/// tier. The report is unaffected by either sharing: its `cache` column
/// records within-run deduplication only, and a cache hit returns the
/// same deterministic [`BatchCell`] a fresh synthesis would produce — so
/// the rendered bytes stay identical to a cold offline `run_batch` of
/// the same specs under the same configuration.
pub fn run_batch_on(
    specs: &[BatchSpec],
    options: &BatchOptions,
    pool: &Arc<ThreadPool>,
    memo: &dyn SynthCache,
) -> BatchReport {
    let _span = mrp_obs::span("batch.run");

    // Within-run dedup: first spec with a given normalized vector owns
    // the synthesis; later ones are hits.
    let mut key_of_spec: Vec<usize> = Vec::with_capacity(specs.len());
    let mut first_seen: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut unique: Vec<Vec<i64>> = Vec::new();
    for spec in specs {
        let key = normalize_coeffs(&spec.coeffs);
        let next = unique.len();
        let idx = *first_seen.entry(key).or_insert(next);
        if idx == next {
            unique.push(normalize_coeffs(&spec.coeffs));
            mrp_obs::counter_add("batch.cache.miss", 1);
        } else {
            mrp_obs::counter_add("batch.cache.hit", 1);
        }
        key_of_spec.push(idx);
    }

    // Cross-run memo: cached keys skip the pool entirely.
    let mut cells: Vec<Option<Result<BatchCell, String>>> =
        unique.iter().map(|key| memo.lookup(key)).collect();

    let pending: Vec<usize> = (0..unique.len()).filter(|&i| cells[i].is_none()).collect();
    let jobs: Vec<_> = pending
        .iter()
        .map(|&i| {
            let coeffs = unique[i].clone();
            let config = options.synth.clone();
            let racing = options.racing;
            let pool = Arc::clone(pool);
            move || {
                let _span = mrp_obs::span_dyn(format!("batch.synth[{i}]"));
                if racing {
                    synthesize_racing(&coeffs, &config, &pool)
                } else {
                    synthesize(&coeffs, &config)
                }
            }
        })
        .collect();
    let outcomes = pool.run_indexed(jobs);
    for (&i, slot) in pending.iter().zip(outcomes) {
        let cell = match slot {
            Some(Ok(outcome)) => Ok(BatchCell::from_outcome(&outcome)),
            Some(Err(error)) => Err(render_error(&error)),
            None => Err("synthesis job panicked".to_string()),
        };
        memo.store(unique[i].clone(), cell.clone());
        cells[i] = Some(cell);
    }
    let cells: Vec<Result<BatchCell, String>> = cells.into_iter().map(Option::unwrap).collect();

    let rows = specs
        .iter()
        .zip(&key_of_spec)
        .enumerate()
        .map(|(spec_idx, (spec, &key))| BatchRow {
            name: spec.name.clone(),
            taps: spec.coeffs.len(),
            cache_hit: specs[..spec_idx]
                .iter()
                .zip(&key_of_spec)
                .any(|(_, &earlier)| earlier == key),
            result: cells[key].clone(),
        })
        .collect();
    BatchReport {
        rows,
        unique: unique.len(),
    }
}

/// One-line deterministic rendering of a pipeline error (the
/// `LadderExhausted` payload is summarized by kind so wall-clock text
/// never leaks into the report).
fn render_error(error: &PipelineError) -> String {
    match error {
        PipelineError::LadderExhausted(ds) => {
            let kinds: Vec<String> = ds
                .iter()
                .map(|d| format!("{}:{}", d.rung, d.error.kind()))
                .collect();
            format!("ladder exhausted ({})", kinds.join(", "))
        }
        other => format!("{}: {}", other.kind(), other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, coeffs: &[i64]) -> BatchSpec {
        BatchSpec {
            name: name.to_string(),
            coeffs: coeffs.to_vec(),
        }
    }

    fn example_specs() -> Vec<BatchSpec> {
        vec![
            spec("paper", &[70, 66, 17, 9, 27, 41, 56, 11]),
            spec("paper-doubled", &[140, 132, 34, 18, 54, 82, 112, 22]),
            spec("small", &[23, 45, 77]),
            spec("paper-negated", &[-70, -66, -17, -9, -27, -41, -56, -11]),
        ]
    }

    #[test]
    fn cache_shares_normalized_vectors() {
        let report = run_batch(&example_specs(), &BatchOptions::default());
        assert_eq!(report.unique, 2);
        assert_eq!(report.cache_hits(), 2);
        assert_eq!(report.failed(), 0);
        assert!(!report.rows[0].cache_hit);
        assert!(report.rows[1].cache_hit);
        assert!(!report.rows[2].cache_hit);
        assert!(report.rows[3].cache_hit);
        // Shared entries report identical synthesis results.
        assert_eq!(
            report.rows[0].result.as_ref().unwrap(),
            report.rows[1].result.as_ref().unwrap()
        );
    }

    #[test]
    fn report_bytes_identical_for_any_job_count() {
        let specs = example_specs();
        let base = run_batch(
            &specs,
            &BatchOptions {
                jobs: 1,
                ..BatchOptions::default()
            },
        )
        .render_json();
        for jobs in [2, 4, 8] {
            let other = run_batch(
                &specs,
                &BatchOptions {
                    jobs,
                    ..BatchOptions::default()
                },
            )
            .render_json();
            assert_eq!(base, other, "jobs={jobs} changed the report bytes");
        }
    }

    #[test]
    fn racing_report_matches_sequential_report() {
        let specs = example_specs();
        let sequential = run_batch(&specs, &BatchOptions::default()).render_json();
        let raced = run_batch(
            &specs,
            &BatchOptions {
                jobs: 4,
                racing: true,
                ..BatchOptions::default()
            },
        )
        .render_json();
        assert_eq!(sequential, raced);
    }

    #[test]
    fn shared_memo_cache_preserves_report_bytes_across_runs() {
        let specs = example_specs();
        let pool = Arc::new(ThreadPool::new(2));
        let memo = MemoCache::new();
        let options = BatchOptions::default();
        let cold = run_batch_on(&specs, &options, &pool, &memo).render_json();
        let entries = memo.len();
        assert!(entries > 0);
        let misses_after_cold = memo.misses();
        // A warm run resolves every unique key from the cache...
        let warm = run_batch_on(&specs, &options, &pool, &memo).render_json();
        assert_eq!(memo.misses(), misses_after_cold, "warm run re-synthesized");
        assert_eq!(memo.len(), entries);
        assert!(memo.hits() >= entries as u64);
        // ...and the bytes — including the within-run `cache` column —
        // are identical to the cold run and to a fresh offline run.
        assert_eq!(cold, warm);
        assert_eq!(
            cold,
            run_batch(&specs, &BatchOptions::default()).render_json()
        );
    }

    #[test]
    fn out_of_range_spec_fails_cleanly() {
        let specs = vec![spec("ok", &[7, 9]), spec("bad", &[i64::MAX])];
        let report = run_batch(&specs, &BatchOptions::default());
        assert_eq!(report.failed(), 1);
        assert!(report.rows[0].result.is_ok());
        let err = report.rows[1].result.as_ref().unwrap_err();
        assert!(err.contains("ladder exhausted"), "{err}");
        let json = report.render_json();
        assert!(json.contains("\"error\":\""), "{json}");
    }
}
