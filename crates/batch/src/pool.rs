//! An in-tree work-stealing thread pool.
//!
//! The workspace builds offline, so no rayon/crossbeam: plain
//! [`std::sync::Mutex`]-guarded deques, one per worker plus a global
//! injector. A worker serves its own deque LIFO (cache-friendly for
//! nested spawns), then drains the injector, then steals FIFO from the
//! back of sibling deques — the classic work-stealing discipline, sized
//! for the pool's actual workload (hundreds of coarse synthesis jobs,
//! not millions of microtasks).
//!
//! Two properties matter more than raw throughput here:
//!
//! * **Nested-wait safety** — a job may itself fan out subjobs and wait
//!   for them ([`ThreadPool::run_indexed`] from inside a worker). A
//!   waiting worker *helps*: it keeps executing queued jobs instead of
//!   blocking, so nested parallelism cannot deadlock the pool.
//! * **Panic isolation** — a panicking job marks its slot as failed
//!   (`None` from [`ThreadPool::run_indexed`]) and the worker survives.
//!
//! Instrumented through `mrp-obs`: each executed job opens a
//! `pool.worker[<id>]` span and the `batch.pool.queue_depth` gauge
//! tracks submitted-but-unfinished jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` of the current thread, when it is
    /// a pool worker. Lets `execute` push to the worker's own deque and
    /// lets waits turn into work-helping loops.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

struct Shared {
    /// One deque per worker: owner pops the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Submitted-but-unfinished jobs.
    pending: AtomicUsize,
    /// Wakes idle workers on submit and `join` waiters on completion.
    signal: Mutex<()>,
    cond: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Next runnable job for `worker`: own deque front, injector, then
    /// steal from siblings (back, round-robin from the right neighbor).
    fn find_job(&self, worker: usize) -> Option<Job> {
        if let Some(job) = self.queues[worker].lock().unwrap().pop_front() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    /// Any runnable job, for non-worker helpers (a caller thread stuck in
    /// a wait): injector first, then any deque back.
    fn find_any_job(&self) -> Option<Job> {
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        for queue in &self.queues {
            if let Some(job) = queue.lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, worker: Option<usize>, job: Job) {
        let _span = match worker {
            Some(id) => mrp_obs::span_dyn(format!("pool.worker[{id}]")),
            None => mrp_obs::span_dyn("pool.helper".to_string()),
        };
        // The job owns its own panic story (run_indexed wraps payloads);
        // this catch is the backstop that keeps the worker alive and the
        // pending count correct for raw `execute` jobs.
        let _ = catch_unwind(AssertUnwindSafe(job));
        let left = self.pending.fetch_sub(1, Ordering::SeqCst) - 1;
        mrp_obs::gauge_set("batch.pool.queue_depth", left as f64);
        if left == 0 {
            let _guard = self.signal.lock().unwrap();
            self.cond.notify_all();
        }
    }
}

/// A fixed-size work-stealing thread pool. See the module docs.
///
/// # Examples
///
/// ```
/// use mrp_batch::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.run_indexed((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares[3], Some(9));
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (`0` is clamped to 1).
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            signal: Mutex::new(()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, id))
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submits one fire-and-forget job. From a worker thread of this
    /// pool, the job lands on that worker's own deque (LIFO, stealable);
    /// from any other thread it goes through the global injector.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let depth = self.shared.pending.fetch_add(1, Ordering::SeqCst) + 1;
        mrp_obs::gauge_set("batch.pool.queue_depth", depth as f64);
        let job: Job = Box::new(job);
        let own = WORKER
            .with(|w| w.get())
            .filter(|&(pool, _)| pool == self.identity());
        match own {
            Some((_, id)) => self.shared.queues[id].lock().unwrap().push_front(job),
            None => self.shared.injector.lock().unwrap().push_back(job),
        }
        let _guard = self.shared.signal.lock().unwrap();
        self.shared.cond.notify_all();
    }

    /// Runs every closure and returns their results in submission order.
    /// `None` marks a job that panicked. Safe to call from inside a pool
    /// job: the calling worker helps execute queued work while it waits.
    pub fn run_indexed<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let left = Arc::new(AtomicUsize::new(n));
        for (i, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let left = Arc::clone(&left);
            self.execute(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                if let Ok(value) = out {
                    results.lock().unwrap()[i] = Some(value);
                }
                left.fetch_sub(1, Ordering::SeqCst);
            });
        }
        self.wait_helping(&left);
        // The final job decrements `left` before dropping its Arc clone,
        // so take the results under the lock instead of unwrapping the Arc.
        let mut guard = results.lock().unwrap();
        std::mem::take(&mut *guard)
    }

    /// Blocks until `left` hits zero, executing queued jobs meanwhile so
    /// a worker waiting on subjobs cannot starve the pool.
    fn wait_helping(&self, left: &AtomicUsize) {
        while left.load(Ordering::SeqCst) > 0 {
            if let Some(job) = self.shared.find_any_job() {
                self.shared.run_job(None, job);
            } else {
                let guard = self.shared.signal.lock().unwrap();
                if left.load(Ordering::SeqCst) == 0 {
                    break;
                }
                // Timed wait: a helper that lost a submit/notify race must
                // re-poll the queues rather than sleep forever.
                let _ = self
                    .shared
                    .cond
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap();
            }
        }
    }

    /// Waits until every submitted job (from any caller) has finished.
    pub fn join(&self) {
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            if let Some(job) = self.shared.find_any_job() {
                self.shared.run_job(None, job);
            } else {
                let guard = self.shared.signal.lock().unwrap();
                if self.shared.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                let _ = self
                    .shared
                    .cond
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap();
            }
        }
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }
}

/// Lets the pool drive `mrp-exact`'s sharded branch-and-bound rounds:
/// the round job is self-scheduling (it claims shards off an internal
/// cursor), so running one clone per worker through [`run_indexed`] —
/// with its work-stealing and helping — satisfies the executor contract.
/// Because the solver reads its shared bound only at round boundaries,
/// the outcome is identical to the default scoped-thread executor.
///
/// [`run_indexed`]: ThreadPool::run_indexed
impl mrp_exact::ShardExecutor for ThreadPool {
    fn run(&self, workers: usize, job: Arc<dyn Fn() + Send + Sync>) {
        if workers <= 1 {
            job();
            return;
        }
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let job = Arc::clone(&job);
                move || job()
            })
            .collect();
        self.run_indexed(jobs);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.signal.lock().unwrap();
            self.shared.cond.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, id))));
    loop {
        if let Some(job) = shared.find_job(id) {
            shared.run_job(Some(id), job);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let guard = shared.signal.lock().unwrap();
        // Re-check under the lock so a submit between the empty poll and
        // the wait cannot be missed; the timeout bounds any residual race.
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            let _ = shared
                .cond
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }
    WORKER.with(|w| w.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_jobs_and_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.run_indexed((0..100).map(|i| move || i * 2).collect::<Vec<_>>());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 2));
        }
    }

    #[test]
    fn pool_executor_matches_scoped_executor() {
        use mrp_exact::{solve_mcm_with, McmConfig, McmProblem, ScopedExecutor, ShardExecutor};

        let pool = ThreadPool::new(4);
        let problem = McmProblem::from_targets(&[70, 66, 17, 9, 27, 41, 56, 11]);
        for workers in [1usize, 2, 8] {
            let cfg = McmConfig {
                workers,
                ..McmConfig::default()
            };
            let scoped = solve_mcm_with(&problem, &cfg, &ScopedExecutor);
            let pooled = solve_mcm_with(&problem, &cfg, &pool as &dyn ShardExecutor);
            assert_eq!(scoped, pooled, "x{workers}");
        }
    }

    #[test]
    fn zero_workers_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        let out = pool.run_indexed(vec![|| 7]);
        assert_eq!(out, vec![Some(7)]);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = ThreadPool::new(2);
        let out = pool.run_indexed(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("boom")),
            Box::new(|| 3usize),
        ]);
        assert_eq!(out, vec![Some(1), None, Some(3)]);
        // The pool still works afterwards.
        let out = pool.run_indexed(vec![|| 42]);
        assert_eq!(out, vec![Some(42)]);
    }

    /// Seeded stress: hammer the pool with a deterministic but irregular
    /// mix of job shapes (quick, compute-heavy, panicking, nested
    /// fan-out) across several pool sizes, and check every surviving
    /// result. A scheduling bug (lost wakeup, double execution, steal
    /// corruption) shows up as a wrong value, a missing value, or a hang.
    #[test]
    fn seeded_stress_under_contention() {
        // xorshift64*: cheap, deterministic, good enough to scramble the
        // job mix — the point is irregularity, not statistical quality.
        fn rng(state: &mut u64) -> u64 {
            *state ^= *state >> 12;
            *state ^= *state << 25;
            *state ^= *state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        for (seed, workers) in [(1u64, 1usize), (7, 2), (42, 4), (1234, 8)] {
            let pool = Arc::new(ThreadPool::new(workers));
            let mut state = seed;
            let mut kinds = Vec::new();
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..200)
                .map(|i| {
                    let kind = rng(&mut state) % 4;
                    kinds.push(kind);
                    let inner = Arc::clone(&pool);
                    let job: Box<dyn FnOnce() -> u64 + Send> = match kind {
                        0 => Box::new(move || i as u64),
                        1 => Box::new(move || {
                            // Busy work so thieves have something to steal.
                            (0..500u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
                        }),
                        2 => Box::new(|| panic!("stress panic")),
                        _ => Box::new(move || {
                            let sub = inner.run_indexed(
                                (0..5u64).map(|j| move || j + i as u64).collect::<Vec<_>>(),
                            );
                            sub.into_iter().map(Option::unwrap).sum()
                        }),
                    };
                    job
                })
                .collect();

            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let out = pool.run_indexed(jobs);
            std::panic::set_hook(hook);

            assert_eq!(out.len(), 200);
            for (i, (slot, kind)) in out.iter().zip(&kinds).enumerate() {
                let expected = match kind {
                    0 => Some(i as u64),
                    1 => {
                        Some((0..500u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b)))
                    }
                    2 => None,
                    _ => Some((0..5u64).map(|j| j + i as u64).sum()),
                };
                assert_eq!(*slot, expected, "seed {seed} workers {workers} job {i}");
            }
            // Everything drained: the pool is reusable afterwards.
            assert_eq!(pool.run_indexed(vec![|| 9u64]), vec![Some(9)]);
        }
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        let inner = Arc::clone(&pool);
        let out = pool.run_indexed(
            (0..4)
                .map(|i| {
                    let inner = Arc::clone(&inner);
                    move || {
                        let sub = inner
                            .run_indexed((0..4).map(|j| move || i * 10 + j).collect::<Vec<_>>());
                        sub.into_iter().map(Option::unwrap).sum::<usize>()
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 40 + 6));
        }
    }
}
