//! Concurrent rung attempts: run the fallback ladder's independent
//! rungs in parallel and keep the best that succeeds.
//!
//! The sequential driver ([`mrp_resilience::synthesize`]) walks the
//! ladder top-down, paying for each failed rung before trying the next.
//! The rungs are independent computations, so under a wall-clock
//! deadline it is strictly better to attempt them concurrently: the
//! highest-quality rung that passes its gates wins, lower speculative
//! results are discarded, and failures of higher rungs are reported as
//! degradations exactly as the sequential driver would. Budgets are the
//! existing per-stage ones — every attempt shares one [`Deadline`] and
//! the configured exact-cover node cap.

use std::time::Instant;

use mrp_resilience::{
    try_rung, Deadline, Degradation, PipelineError, Rung, RungAttempt, RungOutcome, SynthConfig,
    SynthOutcome,
};

use crate::pool::ThreadPool;

/// Synthesizes `coeffs` by racing every admissible rung of the fallback
/// ladder on `pool` and keeping the highest-quality success.
///
/// Modulo the wall-clock fields (`elapsed_ms` of the outcome and of each
/// attempt), the result is deterministic and agrees with the sequential
/// driver whenever no real deadline expires: each rung attempt is the
/// same budgeted, panic-isolated, lint- and equivalence-gated
/// computation [`mrp_resilience::synthesize`] runs.
///
/// # Errors
///
/// * [`PipelineError::BadConfig`] when `start_rung < min_rung`;
/// * [`PipelineError::LadderExhausted`] when every admissible rung
///   failed, with one [`Degradation`] per rung in ladder order.
///
/// # Examples
///
/// ```
/// use mrp_batch::{synthesize_racing, ThreadPool};
/// use mrp_resilience::{Rung, SynthConfig};
///
/// let pool = ThreadPool::new(4);
/// let out = synthesize_racing(&[70, 66, 17, 9, 27, 41, 56, 11], &SynthConfig::default(), &pool)?;
/// assert_eq!(out.rung, Rung::MrpCse);
/// assert!(!out.degraded());
/// # Ok::<(), mrp_resilience::PipelineError>(())
/// ```
pub fn synthesize_racing(
    coeffs: &[i64],
    config: &SynthConfig,
    pool: &ThreadPool,
) -> Result<SynthOutcome, PipelineError> {
    if config.start_rung < config.min_rung {
        return Err(PipelineError::BadConfig(format!(
            "start rung `{}` is below the quality floor `{}`",
            config.start_rung, config.min_rung
        )));
    }
    let _span = mrp_obs::span("batch.race");
    let deadline = Deadline::start(config.budget.deadline_ms);
    let rungs: Vec<Rung> = Rung::LADDER
        .into_iter()
        .filter(|&r| r <= config.start_rung && r >= config.min_rung)
        .collect();
    let jobs: Vec<_> = rungs
        .iter()
        .map(|&rung| {
            let coeffs = coeffs.to_vec();
            let config = config.clone();
            move || {
                let _span = mrp_obs::span_dyn(format!("race[{rung}]"));
                let start = Instant::now();
                let result = try_rung(&coeffs, rung, &config, &deadline);
                (start.elapsed().as_millis() as u64, result)
            }
        })
        .collect();
    let results = pool.run_indexed(jobs);

    // Reduce in ladder order (the submission order): the first success is
    // the highest-quality rung; failures above it degrade, results below
    // it were speculative and are dropped.
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut attempts: Vec<RungAttempt> = Vec::new();
    for (&rung, slot) in rungs.iter().zip(results) {
        let (elapsed_ms, result) = slot.unwrap_or_else(|| {
            (
                0,
                Err(PipelineError::Panic {
                    stage: format!("race[{rung}]"),
                    message: "rung attempt lost by the pool".to_string(),
                }),
            )
        });
        match result {
            Ok(RungOutcome {
                graph,
                lint_warnings,
                pipeline,
                exact,
            }) => {
                attempts.push(RungAttempt {
                    rung,
                    elapsed_ms,
                    accepted: true,
                    exact,
                });
                return Ok(SynthOutcome {
                    graph,
                    rung,
                    degradations,
                    attempts,
                    lint_warnings,
                    pipeline,
                    elapsed_ms: deadline.elapsed_ms(),
                });
            }
            Err(error) => {
                attempts.push(RungAttempt {
                    rung,
                    elapsed_ms,
                    accepted: false,
                    exact: None,
                });
                mrp_obs::instant_dyn(format!("degrade[{rung}]: {}", error.kind()));
                degradations.push(Degradation { rung, error });
            }
        }
    }
    Err(PipelineError::LadderExhausted(degradations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_resilience::FaultPlan;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        // try_rung isolates injected panics with catch_unwind; keep their
        // backtraces out of the test output.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn healthy_race_matches_sequential_rung() {
        let pool = ThreadPool::new(4);
        let cfg = SynthConfig::default();
        let raced = synthesize_racing(&PAPER, &cfg, &pool).unwrap();
        let sequential = mrp_resilience::synthesize(&PAPER, &cfg).unwrap();
        assert_eq!(raced.rung, sequential.rung);
        assert_eq!(raced.adders(), sequential.adders());
        assert!(!raced.degraded());
        assert_eq!(raced.attempts.len(), 1);
        assert!(raced.attempts[0].accepted);
    }

    #[test]
    fn injected_fault_degrades_identically() {
        let pool = ThreadPool::new(4);
        let cfg = SynthConfig {
            faults: FaultPlan::parse("panic@mrp+cse,panic@mrp").unwrap(),
            ..SynthConfig::default()
        };
        let raced = quiet(|| synthesize_racing(&PAPER, &cfg, &pool)).unwrap();
        assert_eq!(raced.rung, Rung::CseOnly);
        assert_eq!(raced.degradations.len(), 2);
        let rungs: Vec<Rung> = raced.attempts.iter().map(|a| a.rung).collect();
        assert_eq!(rungs, vec![Rung::MrpCse, Rung::Mrp, Rung::CseOnly]);
    }

    #[test]
    fn floor_and_bad_config_behave_like_sequential() {
        let pool = ThreadPool::new(2);
        let bad = SynthConfig {
            start_rung: Rung::CseOnly,
            min_rung: Rung::MrpCse,
            ..SynthConfig::default()
        };
        assert!(matches!(
            synthesize_racing(&PAPER, &bad, &pool),
            Err(PipelineError::BadConfig(_))
        ));
        let floored = SynthConfig {
            faults: FaultPlan::parse("panic@*").unwrap(),
            min_rung: Rung::Mrp,
            ..SynthConfig::default()
        };
        match quiet(|| synthesize_racing(&PAPER, &floored, &pool)) {
            Err(PipelineError::LadderExhausted(ds)) => {
                assert_eq!(ds.len(), 2, "mrp+cse and mrp, nothing lower admissible");
            }
            other => panic!("expected LadderExhausted, got {other:?}"),
        }
    }
}
