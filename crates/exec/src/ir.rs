//! The linear IR: a flat, topologically ordered instruction list over
//! dense virtual registers.
//!
//! A [`Program`] is one fused basic block. Register `0` always holds the
//! current input sample `x(n)`; every instruction defines exactly one new
//! register, so instruction `i` defines register `i + 1` and the program
//! is in SSA form by construction. Shifts and negations ride on operands
//! ([`Operand`]) rather than on instructions, mirroring the adder-graph
//! convention that wiring is free ([`mrp_arch::Term`]).
//!
//! Arithmetic is wrapping on `i64`, matching
//! [`mrp_analysis::PipelinedNetlist::step`]; callers that need overflow
//! detection compare against an exact tree-walk oracle, so a wrap reads
//! as a mismatch rather than a false pass.

use std::fmt;

/// A virtual register index. Register `0` is the input lane.
pub type VReg = u32;

/// A register reference with a free left shift and optional negation
/// applied on read — the IR image of [`mrp_arch::Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand {
    /// Source register.
    pub reg: VReg,
    /// Left shift applied to the register value (must be `< 64`).
    pub shift: u32,
    /// Whether the shifted value is negated.
    pub negate: bool,
}

impl Operand {
    /// Plain (unshifted, unnegated) reference to a register.
    pub fn reg(reg: VReg) -> Self {
        Operand {
            reg,
            shift: 0,
            negate: false,
        }
    }

    /// Applies the shift and negation to a register value, wrapping on
    /// `i64` exactly like truncating an `i128` intermediate.
    #[inline]
    pub fn apply(&self, v: i64) -> i64 {
        let shifted = v.wrapping_shl(self.shift);
        if self.negate {
            shifted.wrapping_neg()
        } else {
            shifted
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "-")?;
        }
        write!(f, "r{}", self.reg)?;
        if self.shift > 0 {
            write!(f, "<<{}", self.shift)?;
        }
        Ok(())
    }
}

/// One instruction of the linear IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = lhs + rhs` (each operand shifted/negated on read, wrapping
    /// add). Subtraction is an `Add` whose right operand is negated.
    Add {
        /// Defined register (always the instruction index + 1).
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst(n) = src(n − 1)` — a unit delay (`z⁻¹`): a pipeline register
    /// or a TDF tap register. `carry` indexes the persistent state slot
    /// holding the value crossing a batch boundary; state starts at 0.
    Delay {
        /// Defined register (always the instruction index + 1).
        dst: VReg,
        /// Delayed operand (shift/negation applied before the delay).
        src: Operand,
        /// Persistent state slot index (dense, in instruction order).
        carry: u32,
    },
}

impl Inst {
    /// The register this instruction defines.
    pub fn dst(&self) -> VReg {
        match *self {
            Inst::Add { dst, .. } | Inst::Delay { dst, .. } => dst,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Add { dst, lhs, rhs } => write!(f, "r{dst} = {lhs} + {rhs}"),
            Inst::Delay { dst, src, carry } => {
                write!(f, "r{dst} = delay {src} (carry {carry})")
            }
        }
    }
}

/// A labeled program output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramOutput {
    /// Label carried over from the netlist output (e.g. `c3`) or `y` for
    /// a full-filter program.
    pub label: String,
    /// The operand read for this output, or `None` for a constant-zero
    /// output (an `expected = 0` placeholder tap, or an all-zero filter).
    pub term: Option<Operand>,
    /// For block/pipelined programs, the constant the output multiplies
    /// `x` by; meaningless (0) for full-filter programs, whose single
    /// output is the convolution `y(n)`.
    pub expected: i64,
}

/// A compiled program: one fused basic block plus its delay state layout,
/// output map, and pipeline latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions in execution (topological) order.
    pub insts: Vec<Inst>,
    /// Total virtual registers, including the input register `0`.
    pub regs: u32,
    /// Number of persistent delay-state slots.
    pub carries: u32,
    /// Output map, in netlist output order.
    pub outputs: Vec<ProgramOutput>,
    /// Cycles before the first meaningful output (0 for combinational
    /// programs; the pipeline depth for lowered [`mrp_analysis::PipelinedNetlist`]s).
    pub latency: u32,
}

impl Program {
    /// Structural invariants the interpreter relies on: instruction `i`
    /// defines register `i + 1`, every operand reads an already-defined
    /// register, shifts stay below 64, and carry slots are dense in
    /// instruction order. Returns the first violation, rendered.
    ///
    /// Lowering produces valid programs by construction; this exists so
    /// tests (and hand-built programs) can assert it.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.regs != self.insts.len() as u32 + 1 {
            return Err(format!(
                "regs = {} but {} instructions (+1 input) define {}",
                self.regs,
                self.insts.len(),
                self.insts.len() + 1
            ));
        }
        let check = |op: &Operand, dst: VReg| -> Result<(), String> {
            if op.reg >= dst {
                return Err(format!("operand {op} read before definition (at r{dst})"));
            }
            if op.shift >= 64 {
                return Err(format!("operand {op} shift {} out of range", op.shift));
            }
            Ok(())
        };
        let mut next_carry = 0u32;
        for (i, inst) in self.insts.iter().enumerate() {
            let want = i as u32 + 1;
            if inst.dst() != want {
                return Err(format!(
                    "instruction {i} defines r{}, want r{want}",
                    inst.dst()
                ));
            }
            match inst {
                Inst::Add { dst, lhs, rhs } => {
                    check(lhs, *dst)?;
                    check(rhs, *dst)?;
                }
                Inst::Delay { dst, src, carry } => {
                    check(src, *dst)?;
                    if *carry != next_carry {
                        return Err(format!(
                            "instruction {i} uses carry {carry}, want {next_carry}"
                        ));
                    }
                    next_carry += 1;
                }
            }
        }
        if next_carry != self.carries {
            return Err(format!(
                "carries = {} but {next_carry} delay slots allocated",
                self.carries
            ));
        }
        for o in &self.outputs {
            if let Some(t) = &o.term {
                if t.reg >= self.regs {
                    return Err(format!("output `{}` reads undefined {t}", o.label));
                }
                if t.shift >= 64 {
                    return Err(format!(
                        "output `{}` shift {} out of range",
                        o.label, t.shift
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of `Add` instructions (the arithmetic work per sample).
    pub fn adds(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| matches!(i, Inst::Add { .. }))
            .count()
    }

    /// Number of `Delay` instructions (registers in the modeled datapath).
    pub fn delays(&self) -> usize {
        self.insts.len() - self.adds()
    }
}

impl fmt::Display for Program {
    /// Renders the listing, one instruction per line, then the outputs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; {} regs, {} carries, latency {}",
            self.regs, self.carries, self.latency
        )?;
        for inst in &self.insts {
            writeln!(f, "{inst}")?;
        }
        for o in &self.outputs {
            match &o.term {
                Some(t) => writeln!(f, "out {} = {t} ; expected {}", o.label, o.expected)?,
                None => writeln!(f, "out {} = 0 ; expected {}", o.label, o.expected)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            insts: vec![
                Inst::Add {
                    dst: 1,
                    lhs: Operand {
                        reg: 0,
                        shift: 1,
                        negate: false,
                    },
                    rhs: Operand::reg(0),
                },
                Inst::Delay {
                    dst: 2,
                    src: Operand::reg(1),
                    carry: 0,
                },
            ],
            regs: 3,
            carries: 1,
            outputs: vec![ProgramOutput {
                label: "y".to_string(),
                term: Some(Operand::reg(2)),
                expected: 3,
            }],
            latency: 0,
        }
    }

    #[test]
    fn valid_program_passes() {
        tiny().validate().unwrap();
    }

    #[test]
    fn dst_must_be_dense() {
        let mut p = tiny();
        if let Inst::Add { dst, .. } = &mut p.insts[0] {
            *dst = 2;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn operands_must_be_defined_first() {
        let mut p = tiny();
        if let Inst::Add { lhs, .. } = &mut p.insts[0] {
            lhs.reg = 5;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn carries_must_be_dense() {
        let mut p = tiny();
        if let Inst::Delay { carry, .. } = &mut p.insts[1] {
            *carry = 3;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn oversized_shift_rejected() {
        let mut p = tiny();
        if let Inst::Add { lhs, .. } = &mut p.insts[0] {
            lhs.shift = 64;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn listing_renders() {
        let text = tiny().to_string();
        assert!(text.contains("r1 = r0<<1 + r0"), "{text}");
        assert!(text.contains("r2 = delay r1 (carry 0)"), "{text}");
        assert!(text.contains("out y = r2 ; expected 3"), "{text}");
    }

    #[test]
    fn operand_apply_wraps() {
        let op = Operand {
            reg: 0,
            shift: 1,
            negate: true,
        };
        assert_eq!(op.apply(3), -6);
        // i64::MIN << 0 negated wraps back to i64::MIN.
        let neg = Operand {
            reg: 0,
            shift: 0,
            negate: true,
        };
        assert_eq!(neg.apply(i64::MIN), i64::MIN);
    }
}
