//! Lowering from `mrp-arch` netlists to the linear IR.
//!
//! Three entry points, one per simulation shape:
//!
//! * [`compile_block`] — a multiplier block alone: one output per tap
//!   product, combinational (latency 0).
//! * [`compile_fir`] — the full transposed-direct-form filter: the block
//!   plus the tap-summation delay/adder chain, one `y` output.
//! * [`compile_pipelined`] — a [`PipelinedNetlist`] with its register
//!   placement: every register becomes a [`Inst::Delay`], every missing
//!   register a wire-through alias, reproducing
//!   [`PipelinedNetlist::step`] bit for bit (including its wrapping
//!   arithmetic and its timing skew for dropped registers).
//!
//! Wire-throughs, shifts, and negations never cost an instruction: the
//! lowering tracks every netlist value as a symbolic slot (zero, or a
//! register with a pending shift/negate) and only materializes real
//! adders and real registers.

use crate::ir::{Inst, Operand, Program, ProgramOutput, VReg};
use mrp_analysis::PipelinedNetlist;
use mrp_arch::{AdderGraph, FirFilter, Node, Term};

/// A symbolic value during lowering: the constant zero (placeholder taps,
/// unwritten pipeline positions) or a register with free shift/negate.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Zero,
    Ref(Operand),
}

impl Slot {
    /// Applies a netlist edge (shift + negate) to the slot.
    fn via(self, shift: u32, negate: bool) -> Slot {
        match self {
            Slot::Zero => Slot::Zero,
            Slot::Ref(op) => Slot::Ref(Operand {
                reg: op.reg,
                shift: op.shift + shift,
                negate: op.negate ^ negate,
            }),
        }
    }

    fn via_term(self, t: &Term) -> Slot {
        self.via(t.shift, t.negate)
    }

    fn operand(self) -> Option<Operand> {
        match self {
            Slot::Zero => None,
            Slot::Ref(op) => Some(op),
        }
    }
}

/// Emits instructions, allocating dense registers and carry slots.
struct Builder {
    insts: Vec<Inst>,
    next_reg: VReg,
    next_carry: u32,
}

impl Builder {
    fn new() -> Self {
        Builder {
            insts: Vec::new(),
            next_reg: 1, // register 0 is the input lane
            next_carry: 0,
        }
    }

    /// `lhs + rhs`, folding away zero operands (an add with a zero side
    /// is just wiring).
    fn add(&mut self, lhs: Slot, rhs: Slot) -> Slot {
        match (lhs.operand(), rhs.operand()) {
            (None, None) => Slot::Zero,
            (Some(_), None) => lhs,
            (None, Some(_)) => rhs,
            (Some(l), Some(r)) => {
                let dst = self.next_reg;
                self.next_reg += 1;
                self.insts.push(Inst::Add {
                    dst,
                    lhs: l,
                    rhs: r,
                });
                Slot::Ref(Operand::reg(dst))
            }
        }
    }

    /// A unit delay of `src` (a delayed zero stays zero).
    fn delay(&mut self, src: Slot) -> Slot {
        match src.operand() {
            None => Slot::Zero,
            Some(op) => {
                let dst = self.next_reg;
                self.next_reg += 1;
                let carry = self.next_carry;
                self.next_carry += 1;
                self.insts.push(Inst::Delay {
                    dst,
                    src: op,
                    carry,
                });
                Slot::Ref(Operand::reg(dst))
            }
        }
    }

    fn finish(self, outputs: Vec<ProgramOutput>, latency: u32) -> Program {
        let program = Program {
            regs: self.next_reg,
            carries: self.next_carry,
            insts: self.insts,
            outputs,
            latency,
        };
        debug_assert_eq!(program.validate(), Ok(()));
        mrp_obs::counter_add("exec.lower.insts", program.insts.len() as u64);
        program
    }
}

/// Lowers the combinational adder graph itself: one slot per node, adders
/// in node (topological) order.
fn lower_nodes(b: &mut Builder, graph: &AdderGraph) -> Vec<Slot> {
    let mut slots: Vec<Slot> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let slot = match node {
            Node::Input => Slot::Ref(Operand::reg(0)),
            Node::Add { lhs, rhs } => {
                let l = slots[lhs.node.index()].via_term(lhs);
                let r = slots[rhs.node.index()].via_term(rhs);
                b.add(l, r)
            }
        };
        slots.push(slot);
    }
    slots
}

/// Maps netlist outputs onto slots; `expected = 0` placeholders become
/// constant-zero outputs, matching every tree-walk evaluator.
fn lower_outputs(graph: &AdderGraph, value_of: impl Fn(&Term) -> Slot) -> Vec<ProgramOutput> {
    graph
        .outputs()
        .iter()
        .map(|o| ProgramOutput {
            label: o.label.clone(),
            term: if o.expected == 0 {
                None
            } else {
                value_of(&o.term).operand()
            },
            expected: o.expected,
        })
        .collect()
}

/// Compiles a multiplier block to a combinational program with one output
/// per registered netlist output (tap products `c_i · x`).
///
/// # Examples
///
/// ```
/// use mrp_arch::{AdderGraph, Term};
/// use mrp_exec::{compile_block, Machine};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let three = g.add(Term::shifted(x, 1), Term::of(x))?; // 2x + x
/// g.push_output("c0", Term::shifted(three, 2), 12);     // 3x << 2
/// let mut m = Machine::new(compile_block(&g));
/// assert_eq!(m.run(&[1, -5, 7])[0], vec![12, -60, 84]);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn compile_block(graph: &AdderGraph) -> Program {
    let _span = mrp_obs::span("exec.lower");
    let mut b = Builder::new();
    let slots = lower_nodes(&mut b, graph);
    let outputs = lower_outputs(graph, |t| slots[t.node.index()].via_term(t));
    b.finish(outputs, 0)
}

/// Compiles the full transposed-direct-form filter: the multiplier block
/// feeding the tap-summation register/adder chain
/// `s_k(n) = c_k·x(n) + s_{k+1}(n − 1)`, with the single output
/// `y(n) = s_0(n)`. The compiled program matches
/// [`mrp_arch::FirFilter::filter`] sample for sample (zero initial state).
///
/// # Examples
///
/// ```
/// use mrp_arch::{direct_fir, simple_multiplier_block, FirFilter};
/// use mrp_exec::{compile_fir, Machine};
/// use mrp_numrep::Repr;
///
/// let coeffs = [3i64, -1, 4];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// let mut m = Machine::new(compile_fir(&FirFilter::new(g)));
/// let x = [1i64, 0, 0, 2, -9];
/// assert_eq!(m.run_single(&x), direct_fir(&coeffs, &x));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn compile_fir(filter: &FirFilter) -> Program {
    let _span = mrp_obs::span("exec.lower");
    let graph = filter.block();
    let mut b = Builder::new();
    let slots = lower_nodes(&mut b, graph);
    let products: Vec<Slot> = graph
        .outputs()
        .iter()
        .map(|o| {
            if o.expected == 0 {
                Slot::Zero
            } else {
                slots[o.term.node.index()].via_term(&o.term)
            }
        })
        .collect();
    // s_{taps−1} = p_{taps−1}; s_k = p_k + z⁻¹ s_{k+1}; y = s_0.
    let taps = products.len();
    let mut s = products[taps - 1];
    for k in (0..taps - 1).rev() {
        let delayed = b.delay(s);
        s = b.add(products[k], delayed);
    }
    let outputs = vec![ProgramOutput {
        label: "y".to_string(),
        term: s.operand(),
        expected: 0,
    }];
    b.finish(outputs, 0)
}

/// Compiles a pipelined netlist, reproducing its register placement: per
/// node, one slot per pipeline position `stage..=latency`; a registered
/// boundary becomes a [`Inst::Delay`], an unregistered one a free alias
/// (the same wire-through timing skew [`PipelinedNetlist::step`] models).
/// Outputs sample position `latency` and the program's
/// [`Program::latency`] records the pipeline depth.
///
/// The lowering is bit-exact against `step` — including its wrapping
/// `i64` arithmetic and its "operands read the producer at the
/// *consumer's* stage position" rule — so a compiled run over a stream
/// equals repeated `step` calls from reset state.
pub fn compile_pipelined(net: &PipelinedNetlist) -> Program {
    let _span = mrp_obs::span("exec.lower");
    let graph = &net.graph;
    let w = net.latency as usize + 1;
    let mut b = Builder::new();
    // positions[i][p] = node i's value at pipeline position p (Zero for
    // positions before the node's stage, which `step` never writes).
    let mut positions: Vec<Vec<Slot>> = Vec::with_capacity(graph.len());
    for (i, node) in graph.nodes().iter().enumerate() {
        let s = net.stages[i] as usize;
        let mut pos = vec![Slot::Zero; w];
        pos[s] = match node {
            Node::Input => Slot::Ref(Operand::reg(0)),
            Node::Add { lhs, rhs } => {
                let at = |t: &Term| {
                    let j = t.node.index();
                    debug_assert!(j < i, "netlist must be topological");
                    positions[j][s].via_term(t)
                };
                let (l, r) = (at(lhs), at(rhs));
                b.add(l, r)
            }
        };
        for p in (s + 1)..w {
            pos[p] = if net.registered[i].contains(&(p as u32)) {
                b.delay(pos[p - 1])
            } else {
                pos[p - 1]
            };
        }
        positions.push(pos);
    }
    let outputs = lower_outputs(graph, |t| positions[t.node.index()][w - 1].via_term(t));
    b.finish(outputs, net.latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    /// x -> 7x -> 29x -> 117x, outputs on 7x and 117x (the pipeline.rs
    /// worked example).
    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        let c = g.add(Term::shifted(b, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(a), 7);
        g.push_output("c1", Term::of(c), 117);
        g
    }

    #[test]
    fn block_matches_structural_evaluation() {
        let g = chain();
        let mut m = Machine::new(compile_block(&g));
        let input = [-3i64, -1, 0, 1, 2, 7, 100];
        let outs = m.run(&input);
        for (k, &x) in input.iter().enumerate() {
            assert_eq!(outs[0][k], 7 * x);
            assert_eq!(outs[1][k], 117 * x);
        }
    }

    #[test]
    fn block_has_no_carries() {
        let p = compile_block(&chain());
        assert_eq!(p.carries, 0);
        assert_eq!(p.latency, 0);
        assert_eq!(p.adds(), 3);
    }

    #[test]
    fn zero_expected_outputs_are_constant_zero() {
        let mut g = chain();
        let a = mrp_arch::NodeId::from_index(1);
        g.push_output("z", Term::of(a), 0);
        let p = compile_block(&g);
        assert!(p.outputs[2].term.is_none());
        let mut m = Machine::new(p);
        assert_eq!(m.run(&[5, 9])[2], vec![0, 0]);
    }

    #[test]
    fn shift_only_chain_lowered_without_instructions() {
        // A "multiplier" by a power of two is pure wiring: no adders, so
        // the program body must be empty and the output a shifted alias
        // of the input register.
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("c0", Term::shifted(x, 4), 16);
        let p = compile_block(&g);
        assert!(p.insts.is_empty());
        assert_eq!(
            p.outputs[0].term,
            Some(Operand {
                reg: 0,
                shift: 4,
                negate: false
            })
        );
        let mut m = Machine::new(p);
        assert_eq!(m.run(&[3, -2])[0], vec![48, -32]);
    }

    #[test]
    fn negated_shift_output_folds_onto_operand() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("c0", Term::negated_shifted(x, 2), -4);
        let mut m = Machine::new(compile_block(&g));
        assert_eq!(m.run(&[3])[0], vec![-12]);
    }

    #[test]
    fn fir_single_tap_has_no_delays() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let five = g.add(Term::shifted(x, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(five), 5);
        let p = compile_fir(&FirFilter::new(g));
        assert_eq!(p.delays(), 0);
        let mut m = Machine::new(p);
        assert_eq!(m.run_single(&[1, 2, 3]), vec![5, 10, 15]);
    }

    #[test]
    fn fir_all_zero_coefficients_is_constant_zero() {
        let mut g = AdderGraph::new();
        let x = g.input();
        for k in 0..3 {
            g.push_output(format!("c{k}"), Term::of(x), 0);
        }
        let p = compile_fir(&FirFilter::new(g));
        assert!(p.insts.is_empty());
        assert!(p.outputs[0].term.is_none());
        let mut m = Machine::new(p);
        assert_eq!(m.run_single(&[9, -4, 17, 1]), vec![0; 4]);
    }

    #[test]
    fn fir_zero_taps_skip_their_structural_adder() {
        // taps [0, 3, 0]: only one real product, so the TDF chain needs
        // delays but no adds beyond the multiplier block.
        let mut g = AdderGraph::new();
        let x = g.input();
        let three = g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(x), 0);
        g.push_output("c1", Term::of(three), 3);
        g.push_output("c2", Term::of(x), 0);
        let f = FirFilter::new(g);
        let p = compile_fir(&f);
        assert_eq!(p.adds(), 1, "only the 3x adder:\n{p}");
        assert_eq!(p.delays(), 1, "one tap register survives:\n{p}");
        let mut m = Machine::new(p);
        let input = [1i64, 1, 1, 1, 1];
        assert_eq!(m.run_single(&input), f.filter(&input));
    }

    #[test]
    fn pipelined_chain_matches_step() {
        let g = chain();
        let az = mrp_analysis::Analyzer::new(&g, mrp_analysis::AnalysisContext::default());
        let (net, _) = mrp_analysis::pipeline_and_retime(&az, 1);
        let p = compile_pipelined(&net);
        assert_eq!(p.latency, net.latency);
        let mut m = Machine::new(p);
        let input = [-3i64, -1, 0, 1, 2, 7, 100, 0, 0, 0, 0];
        let outs = m.run(&input);
        let mut state = net.new_state();
        for (t, &x) in input.iter().enumerate() {
            let want = net.step(&mut state, x);
            for (o, w) in want.iter().enumerate() {
                assert_eq!(outs[o][t], *w, "output {o} at cycle {t}");
            }
        }
    }

    #[test]
    fn listing_is_stable_for_the_worked_chain() {
        let p = compile_block(&chain());
        let text = p.to_string();
        assert!(text.contains("r1 = r0<<3 + -r0"), "{text}");
        assert!(text.contains("out c1 = r3 ; expected 117"), "{text}");
    }
}
