//! Compiled-path equivalence checks — the drop-in counterparts of the
//! tree-walk gates [`mrp_arch::AdderGraph::verify_outputs`] and
//! [`mrp_analysis::PipelinedNetlist::verify_outputs_latency_adjusted`].
//!
//! These run the *compiled* program and compare against the exact
//! constant-multiple reference in `i128`, so a wrap in the interpreter
//! (or a lowering bug) reads as a mismatch. Accept gates run both the
//! tree-walk and the compiled check: the tree-walk evaluator stays the
//! differential oracle, and the compiled path is what production
//! re-simulation uses at scale.

use crate::{compile_block, compile_pipelined, Machine};
use mrp_analysis::PipelinedNetlist;
use mrp_arch::AdderGraph;

/// Checks every nonzero output of the compiled multiplier block equals
/// `expected · x` for each sample. Returns the first failing
/// `(label, x)`, or `None` when every output matches.
///
/// # Examples
///
/// ```
/// use mrp_arch::{AdderGraph, Term};
/// use mrp_exec::verify_block_compiled;
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let three = g.add(Term::shifted(x, 1), Term::of(x))?;
/// g.push_output("c0", Term::of(three), 3);
/// assert_eq!(verify_block_compiled(&g, &[-3, 0, 7, 100]), None);
///
/// g.push_output("bad", Term::of(three), 5); // claims 5x, computes 3x
/// assert_eq!(
///     verify_block_compiled(&g, &[-3, 0, 7, 100]),
///     Some(("bad".to_string(), -3)),
/// );
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn verify_block_compiled(graph: &AdderGraph, samples: &[i64]) -> Option<(String, i64)> {
    let mut machine = Machine::new(compile_block(graph));
    let outs = machine.run(samples);
    for (o, got) in graph.outputs().iter().zip(&outs) {
        if o.expected == 0 {
            continue;
        }
        for (&x, &y) in samples.iter().zip(got) {
            if y as i128 != o.expected as i128 * x as i128 {
                return Some((o.label.clone(), x));
            }
        }
    }
    None
}

/// Latency-adjusted compiled check for a pipelined netlist: streams
/// `samples` (plus `latency` zeros to drain the pipe) through the
/// compiled program and requires every nonzero output at cycle `t` to
/// equal `expected · x(t − latency)` (zero while the pipe fills).
/// Returns the first failing `(label, x)`, or `None`.
pub fn verify_pipelined_compiled(net: &PipelinedNetlist, samples: &[i64]) -> Option<(String, i64)> {
    let l = net.latency as usize;
    let mut machine = Machine::new(compile_pipelined(net));
    let mut input = samples.to_vec();
    input.resize(samples.len() + l, 0);
    let outs = machine.run(&input);
    let feed = |t: usize| samples.get(t).copied().unwrap_or(0);
    for (o, got) in net.graph.outputs().iter().zip(&outs) {
        if o.expected == 0 {
            continue;
        }
        for (t, &y) in got.iter().enumerate() {
            let x_ref = if t >= l { feed(t - l) } else { 0 };
            if y as i128 != o.expected as i128 * x_ref as i128 {
                return Some((o.label.clone(), x_ref));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_arch::Term;

    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap();
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap();
        g.push_output("c0", Term::of(a), 7);
        g.push_output("c1", Term::of(b), 29);
        g
    }

    #[test]
    fn clean_block_passes_both_paths() {
        let g = chain();
        let samples = [-3i64, -1, 0, 1, 2, 7, 100];
        assert_eq!(g.verify_outputs(&samples), None);
        assert_eq!(verify_block_compiled(&g, &samples), None);
    }

    fn pipeline(g: &AdderGraph) -> PipelinedNetlist {
        let az = mrp_analysis::Analyzer::new(g, mrp_analysis::AnalysisContext::default());
        mrp_analysis::pipeline_and_retime(&az, 1).0
    }

    #[test]
    fn pipelined_check_agrees_with_tree_walk() {
        let g = chain();
        let net = pipeline(&g);
        let samples = [-3i64, -1, 0, 1, 2, 7, 100];
        assert_eq!(net.verify_outputs_latency_adjusted(&samples), None);
        assert_eq!(verify_pipelined_compiled(&net, &samples), None);
    }

    #[test]
    fn broken_register_placement_is_caught() {
        let g = chain();
        let mut net = pipeline(&g);
        // Drop one real register: the wire-through skews the timing and
        // both the tree-walk and the compiled check must notice.
        let dropped =
            (0..net.graph.len()).any(|n| (1..=net.latency).any(|b| net.drop_register(n, b)));
        assert!(dropped, "expected at least one register to drop");
        let samples = [-3i64, -1, 0, 1, 2, 7, 100];
        let tree = net.verify_outputs_latency_adjusted(&samples);
        let compiled = verify_pipelined_compiled(&net, &samples);
        assert_eq!(tree.is_some(), compiled.is_some());
        assert!(compiled.is_some(), "dropped register must not verify");
    }

    #[test]
    fn empty_samples_trivially_pass() {
        let g = chain();
        assert_eq!(verify_block_compiled(&g, &[]), None);
    }
}
