//! # mrp-exec — compile netlists, execute them in lanes
//!
//! Every equivalence gate and property test used to re-walk the
//! `mrp-arch` adder graph node by node, per sample. This crate lowers a
//! netlist once into a flat, topologically ordered linear IR
//! ([`Program`]) of add/sub/shift/negate/delay instructions over dense
//! virtual registers, then executes the whole basic block over *lanes*
//! of 8–64 samples per pass ([`Machine`]). The execution loops are plain
//! chunked `i64` slice arithmetic — no intrinsics, std only — shaped so
//! LLVM auto-vectorizes them; the payoff is an order of magnitude over
//! the tree walk on the paper's 12-filter suite (see `BENCH_sim.json`).
//!
//! Three lowerings cover the simulation shapes the workspace verifies:
//!
//! * [`compile_block`] — the multiplier block alone (tap products).
//! * [`compile_fir`] — the full transposed-direct-form filter
//!   (matches [`mrp_arch::FirFilter::filter`]).
//! * [`compile_pipelined`] — a [`mrp_analysis::PipelinedNetlist`] with
//!   its exact register placement (matches
//!   [`mrp_analysis::PipelinedNetlist::step`], wrapping arithmetic,
//!   wire-through timing skew and all).
//!
//! The tree-walk evaluators stay in service as the *differential
//! oracle*: [`verify_block_compiled`] / [`verify_pipelined_compiled`]
//! are run alongside them in accept gates, and the CI `sim-differential`
//! job fuzzes random filters through both paths plus the Verilog
//! simulator. See `docs/sim.md` for the IR format and batching policy.
//!
//! # Examples
//!
//! Compile the paper's 8-tap worked example and stream an impulse:
//!
//! ```
//! use mrp_arch::{simple_multiplier_block, FirFilter};
//! use mrp_exec::{compile_fir, Machine};
//! use mrp_numrep::Repr;
//!
//! let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
//! let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
//! for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
//!     g.push_output(format!("c{i}"), t, c);
//! }
//! let mut machine = Machine::new(compile_fir(&FirFilter::new(g)));
//! let mut impulse = vec![0i64; 8];
//! impulse[0] = 1;
//! assert_eq!(machine.run_single(&impulse), coeffs);
//! # Ok::<(), mrp_arch::ArchError>(())
//! ```

#![warn(missing_docs)]

pub mod ir;
pub mod lower;
pub mod machine;
pub mod verify;

pub use ir::{Inst, Operand, Program, ProgramOutput, VReg};
pub use lower::{compile_block, compile_fir, compile_pipelined};
pub use machine::{Machine, DEFAULT_LANES, MAX_LANES, MIN_LANES};
pub use verify::{verify_block_compiled, verify_pipelined_compiled};
